//! Cross-crate integration tests: the full pipeline (race detection →
//! systematic / randomised exploration) on selected SCTBench benchmarks, and
//! the headline comparative results of the paper on the subset that is cheap
//! enough to run in a unit-test budget.

use sct::bench::{all_benchmarks, benchmark_by_name, Suite};
use sct::harness::{fig2a, fig2b, run_study, table2, HarnessConfig};
use sct::prelude::*;
use sct::race::{race_detection_phase, RacePhaseConfig};

fn limits(n: u64) -> ExploreLimits {
    ExploreLimits::with_schedule_limit(n)
}

/// The worker counts every parallel-vs-serial differential test runs at:
/// serial, a small count, an oversubscribed count, plus any extra count CI
/// injects through `SCT_TEST_WORKERS`.
fn differential_worker_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 8];
    if let Some(extra) = std::env::var("SCT_TEST_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        counts.push(extra.max(1));
    }
    counts
}

#[test]
fn every_benchmark_has_a_bug_reachable_by_some_technique_or_is_documented_as_hard() {
    // The two benchmarks whose bugs are documented as needing very deep
    // interleavings (safestack: ≥5 preemptions; twostage_100 and reorder_20
    // need the full 10,000-schedule budget) are excluded from this smoke test.
    let hard = [
        "misc.safestack",
        "CS.twostage_100_bad",
        "CS.reorder_5_bad",
        "CS.reorder_10_bad",
        "CS.reorder_20_bad",
        "radbench.bug2",
        "chess.SWSQ",
        "chess.IWSQWS",
        "parsec.ferret",
        "radbench.bug5",
    ];
    for spec in all_benchmarks() {
        if hard.contains(&spec.name) {
            continue;
        }
        let program = spec.program();
        let config = ExecConfig::all_visible();
        let idb = iterative_bounding(&program, &config, BoundKind::Delay, &limits(2_000));
        let rand = explore::run_technique(
            &program,
            &config,
            Technique::Random { seed: 11 },
            &limits(2_000),
        );
        assert!(
            idb.found_bug() || rand.found_bug(),
            "{}: neither IDB nor Rand found the bug within 2,000 schedules",
            spec.name
        );
    }
}

#[test]
fn delay_bounding_dominates_preemption_bounding_on_the_cs_suite_subset() {
    // Figure 2a's key relationship: every bug IPB finds, IDB finds too.
    let subset: Vec<_> = all_benchmarks()
        .into_iter()
        .filter(|b| b.suite == Suite::Cs)
        .filter(|b| b.paper.threads <= 6)
        .collect();
    assert!(subset.len() >= 10);
    for spec in subset {
        let program = spec.program();
        let config = ExecConfig::all_visible();
        let lim = limits(1_000);
        let ipb = iterative_bounding(&program, &config, BoundKind::Preemption, &lim);
        let idb = iterative_bounding(&program, &config, BoundKind::Delay, &lim);
        if ipb.found_bug() {
            assert!(
                idb.found_bug(),
                "{}: IPB found the bug but IDB did not",
                spec.name
            );
        }
    }
}

#[test]
fn race_detection_phase_feeds_systematic_exploration() {
    // stack_bad's bug is only schedulable when the racy accesses are visible
    // operations: with SyncOnly visibility the popper's unsynchronised loads
    // are invisible and the assertion can still fail, but the *schedule
    // granularity* differs. This test checks the full §5 pipeline: race
    // detection finds the racy loads, promoting them yields a bug.
    let spec = benchmark_by_name("CS.stack_bad").unwrap();
    let program = spec.program();
    let report = race_detection_phase(&program, &RacePhaseConfig::default());
    assert!(!report.is_race_free(), "stack_bad must exhibit data races");
    let config = ExecConfig::with_racy_locations(report.racy_locations());
    let stats = iterative_bounding(&program, &config, BoundKind::Delay, &limits(2_000));
    assert!(stats.found_bug());
}

#[test]
fn figure1_schedule_counts_follow_example_2() {
    // Example 2 of the paper: at bound 1, delay bounding explores strictly
    // fewer terminal schedules than preemption bounding, and both find the
    // Figure 1 bug; at bound 0 neither finds it.
    let mut p = ProgramBuilder::new("figure1");
    let x = p.global("x", 0);
    let y = p.global("y", 0);
    let z = p.global("z", 0);
    let t1 = p.thread("t1", |b| {
        b.store(x, 1);
        b.store(y, 1);
    });
    let t2 = p.thread("t2", |b| {
        b.store(z, 1);
    });
    let t3 = p.thread("t3", |b| {
        let rx = b.local("rx");
        let ry = b.local("ry");
        b.load(x, rx);
        b.load(y, ry);
        b.assert_cond(eq(rx, ry), "x == y");
    });
    p.main(|b| {
        b.spawn(t1);
        b.spawn(t2);
        b.spawn(t3);
    });
    let program = p.build().unwrap();
    let config = ExecConfig::all_visible();

    let pb0 = explore::bounded_dfs(&program, &config, BoundKind::Preemption, 0, &limits(10_000));
    let db0 = explore::bounded_dfs(&program, &config, BoundKind::Delay, 0, &limits(10_000));
    assert!(!pb0.found_bug() && !db0.found_bug());
    assert_eq!(db0.schedules, 1, "delay bound 0 is a single schedule");

    let pb1 = explore::bounded_dfs(&program, &config, BoundKind::Preemption, 1, &limits(10_000));
    let db1 = explore::bounded_dfs(&program, &config, BoundKind::Delay, 1, &limits(10_000));
    assert!(pb1.found_bug() && db1.found_bug());
    assert!(
        db1.schedules < pb1.schedules,
        "DB(1) = {} should explore fewer schedules than PB(1) = {}",
        db1.schedules,
        pb1.schedules
    );
}

#[test]
fn study_pipeline_reproduces_the_headline_shape_on_a_cheap_subset() {
    // A miniature version of the whole study over three suites. The shape we
    // check: (1) IDB finds at least as many bugs as IPB and DFS; (2) Rand
    // finds at least as many as IDB minus one (the paper: they are within one
    // benchmark of each other); (3) Table 2 counts are internally consistent.
    let config = HarnessConfig {
        schedule_limit: 400,
        race_runs: 5,
        seed: 5,
        use_race_phase: true,
        static_phase: false,
        include_pct: false,
        workers: 2,
        por: false,
        cache: false,
        steal_workers: 1,
        corpus_dir: None,
        resume: false,
        ..Default::default()
    };
    let mut results = run_study(&config, Some("splash2")).unwrap();
    let more = run_study(&config, Some("CS.din_phil")).unwrap();
    let cs = run_study(&config, Some("CS.reorder_3")).unwrap();
    results.benchmarks.extend(more.benchmarks);
    results.benchmarks.extend(cs.benchmarks);
    assert_eq!(results.benchmarks.len(), 3 + 6 + 1);

    let a = fig2a(&results);
    assert!(a.total_b() >= a.total_a(), "IDB must dominate IPB");
    assert!(a.total_b() >= a.total_c(), "IDB must dominate DFS");
    let b = fig2b(&results);
    assert!(b.total_b() + 1 >= b.total_a(), "Rand within one of IDB");

    let t2 = table2(&results);
    assert!(t2.contains("Bug found with DB = 0"));
}

#[test]
fn loom_style_frontend_agrees_with_the_ir_frontend_on_a_lost_update() {
    // The same lost-update bug expressed twice: once as an IR program, once
    // as closures against the mock sync types. Both frontends must find it.
    let mut p = ProgramBuilder::new("lost-update");
    let counter = p.global("counter", 0);
    let t = p.thread("incr", |b| {
        let r = b.local("r");
        b.load(counter, r);
        b.store(counter, add(r, 1));
    });
    p.main(|b| {
        let h1 = b.local("h1");
        let h2 = b.local("h2");
        b.spawn_into(t, h1);
        b.spawn_into(t, h2);
        b.join(h1);
        b.join(h2);
        let r = b.local("r");
        b.load(counter, r);
        b.assert_cond(eq(r, 2), "no update lost");
    });
    let program = p.build().unwrap();
    let ir_stats = iterative_bounding(
        &program,
        &ExecConfig::all_visible(),
        BoundKind::Delay,
        &limits(1_000),
    );
    assert!(ir_stats.found_bug());

    let report = sct::threads::explore(
        |model| {
            let cell = std::sync::Arc::new(sct::threads::SharedCell::new(&model, 0));
            let c1 = cell.clone();
            let m1 = model.clone();
            let h1 = model.spawn(move || {
                let v = c1.load(&m1);
                c1.store(&m1, v + 1);
            });
            let c2 = cell.clone();
            let m2 = model.clone();
            let h2 = model.spawn(move || {
                let v = c2.load(&m2);
                c2.store(&m2, v + 1);
            });
            h1.join(&model);
            h2.join(&model);
            let total = cell.load(&model);
            model.check(total == 2, "no update lost");
        },
        Box::new(sct::core::RandomScheduler::new(400, 17)),
    );
    assert!(report.bug_found);
}

// ---------------------------------------------------------------------------
// Sleep-set partial-order reduction: the differential-testing harness.
// ---------------------------------------------------------------------------

/// Unbounded DFS over `program`, optionally with sleep sets, within a cap on
/// started executions. Returns `None` when the space is intractable (cap hit
/// or divergence); otherwise the set of distinct bugs (Debug-formatted), the
/// set of terminal-state fingerprints of *non-buggy* executions, and the
/// number of explored (counted) schedules.
///
/// Buggy executions stop mid-trace at the failing operation, so two
/// equivalent interleavings can halt at different intermediate states; their
/// fingerprints are therefore not comparable across the reduction, while the
/// bugs themselves and all non-buggy terminal states must match exactly.
fn dfs_exploration_sets(
    program: &sct::ir::Program,
    por: bool,
    cap: u64,
) -> Option<(
    std::collections::BTreeSet<String>,
    std::collections::BTreeSet<u64>,
    u64,
)> {
    use sct::runtime::{Execution, NoopObserver};
    let config = ExecConfig::all_visible();
    let mut sched = BoundedDfs::unbounded().with_sleep_sets(por);
    let mut exec = Execution::new_shared(program, &config);
    let mut bugs = std::collections::BTreeSet::new();
    let mut fingerprints = std::collections::BTreeSet::new();
    let mut counted = 0u64;
    let mut started = 0u64;
    while sched.begin_execution() {
        started += 1;
        if started > cap {
            return None;
        }
        exec.reset();
        let outcome = exec.run(&mut |p| sched.choose(p), &mut NoopObserver);
        sched.end_execution(&outcome);
        if outcome.diverged {
            return None;
        }
        if sched.current_execution_redundant() {
            continue;
        }
        counted += 1;
        match &outcome.bug {
            Some(bug) => {
                bugs.insert(format!("{bug:?}"));
            }
            None => {
                fingerprints.insert(outcome.fingerprint);
            }
        }
    }
    assert!(sched.is_complete());
    Some((bugs, fingerprints, counted))
}

/// The SCTBench benchmarks whose full (unbounded, all-accesses-visible) DFS
/// space is small enough to exhaust in a unit-test budget. Kept explicit so
/// the differential suite stays fast; benchmarks that outgrow the cap are
/// skipped with the tractability counters below keeping the suite honest.
const TRACTABLE_DFS_BENCHMARKS: &[&str] = &[
    "CB.stringbuffer-jdk1.4",
    "CS.account_bad",
    "CS.arithmetic_prog_bad",
    "CS.bluetooth_driver_bad",
    "CS.carter01_bad",
    "CS.deadlock01_bad",
    "CS.din_phil2_sat",
    "CS.din_phil3_sat",
    "CS.din_phil4_sat",
    "CS.lazy01_bad",
    "CS.phase01_bad",
    "CS.reorder_3_bad",
    "CS.reorder_4_bad",
    "CS.sync01_bad",
    "CS.sync02_bad",
    "CS.twostage_bad",
    "inspect.qsort_mt",
    "misc.ctrace-test",
    "parsec.streamcluster3",
    "radbench.bug2",
    "radbench.bug3",
    "radbench.bug4",
    "radbench.bug6",
    "splash2.barnes",
    "splash2.lu",
];

#[test]
fn differential_sleep_set_dfs_matches_plain_dfs_on_every_tractable_benchmark() {
    // The oracle that proves the reduction safe: on every benchmark whose
    // schedule space plain DFS can exhaust, DFS with sleep sets must find
    // exactly the same set of bugs and exactly the same set of non-buggy
    // terminal states, while exploring no more — and on several benchmarks
    // strictly fewer — schedules.
    let cap = 16_000u64;
    let mut tractable = 0usize;
    let mut strictly_reduced = Vec::new();
    for name in TRACTABLE_DFS_BENCHMARKS {
        let spec = benchmark_by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let program = spec.program();
        let Some((plain_bugs, plain_fps, plain_n)) = dfs_exploration_sets(&program, false, cap)
        else {
            continue; // outgrew the cap; tractability floor below catches rot
        };
        let (por_bugs, por_fps, por_n) = dfs_exploration_sets(&program, true, cap)
            .expect("reduced search larger than the plain one");
        tractable += 1;
        assert_eq!(plain_bugs, por_bugs, "{name}: bug sets differ");
        assert_eq!(
            plain_fps, por_fps,
            "{name}: non-buggy terminal-state fingerprints differ"
        );
        assert!(
            por_n <= plain_n,
            "{name}: reduction explored more schedules ({por_n} vs {plain_n})"
        );
        if por_n < plain_n {
            strictly_reduced.push(*name);
        }
    }
    assert!(
        tractable >= 15,
        "only {tractable} benchmarks stayed tractable; the suite lost coverage"
    );
    assert!(
        strictly_reduced.len() >= 3,
        "sleep sets reduced only {strictly_reduced:?}; expected at least 3 benchmarks"
    );
}

#[test]
fn por_parallel_iterative_bounding_is_bit_identical_to_the_serial_driver() {
    // With pruning enabled, `parallel_iterative_bounding` must still produce
    // the exact serial statistics — digests, sleep counters, bounds and
    // budget flags — at 1, 2 and 8 workers (plus any worker count injected
    // by CI through SCT_TEST_WORKERS).
    let worker_counts = differential_worker_counts();
    for name in ["CS.din_phil2_sat", "CS.reorder_3_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        let config = ExecConfig::all_visible();
        for schedule_limit in [7u64, 2_000] {
            let limits = ExploreLimits::with_schedule_limit(schedule_limit).with_por(true);
            for kind in [BoundKind::Preemption, BoundKind::Delay] {
                let serial = iterative_bounding(&program, &config, kind, &limits);
                for &workers in &worker_counts {
                    let parallel = sct::core::parallel_iterative_bounding(
                        &program, &config, kind, &limits, workers,
                    );
                    assert_eq!(
                        serial, parallel,
                        "{name}: {kind:?} with {workers} workers at limit {schedule_limit}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Schedule caching: the differential-testing harness.
// ---------------------------------------------------------------------------

/// The SCTBench benchmarks over which the cached-vs-uncached differential
/// suite runs iterative bounding. A mix of single-level rows (bug at bound
/// 0, where the cache has nothing to serve) and rows that climb several
/// bound levels (where the covered interior dominates); all fast enough for
/// a unit-test budget at a 1,000-schedule limit.
const CACHE_DIFFERENTIAL_BENCHMARKS: &[&str] = &[
    "CS.account_bad",
    "CS.arithmetic_prog_bad",
    "CS.bluetooth_driver_bad",
    "CS.carter01_bad",
    "CS.din_phil2_sat",
    "CS.din_phil3_sat",
    "CS.lazy01_bad",
    "CS.reorder_3_bad",
    "CS.reorder_4_bad",
    "CS.sync01_bad",
    "CS.sync02_bad",
    "CS.twostage_bad",
    "misc.ctrace-test",
    "splash2.lu",
];

/// The exploration statistics with the execution/cache counters cleared —
/// the only fields schedule caching is supposed to change.
fn sans_cache_counters(mut stats: sct::core::ExplorationStats) -> sct::core::ExplorationStats {
    stats.executions = 0;
    stats.cache_hits = 0;
    stats.cache_bytes = 0;
    stats
}

#[test]
fn differential_cached_iterative_bounding_matches_uncached_on_sctbench() {
    // The oracle for the tentpole: on every suite benchmark, cached IPB/IDB
    // must report the exact statistics of the uncached driver — bug, bound
    // of first bug, schedule counts, budget/completeness flags — while
    // performing fewer real executions wherever the search climbs past one
    // bound level, and strictly fewer on at least three benchmarks per kind.
    let lim = limits(1_000);
    let cached_lim = lim.clone().with_cache(true);
    for kind in [BoundKind::Preemption, BoundKind::Delay] {
        let mut strictly_reduced = Vec::new();
        for name in CACHE_DIFFERENTIAL_BENCHMARKS {
            let spec = benchmark_by_name(name).unwrap_or_else(|| panic!("unknown {name}"));
            let program = spec.program();
            let config = ExecConfig::all_visible();
            let uncached = iterative_bounding(&program, &config, kind, &lim);
            let cached = iterative_bounding(&program, &config, kind, &cached_lim);
            assert_eq!(
                sans_cache_counters(uncached.clone()),
                sans_cache_counters(cached.clone()),
                "{name}: {kind:?} statistics changed under caching"
            );
            assert_eq!(
                cached.executions + cached.cache_hits,
                uncached.executions,
                "{name}: {kind:?} skipped executions must equal cache hits"
            );
            if cached.executions < uncached.executions {
                strictly_reduced.push(*name);
            }
        }
        assert!(
            strictly_reduced.len() >= 3,
            "{kind:?}: caching reduced executions only on {strictly_reduced:?}; expected ≥ 3"
        );
    }
}

/// Iterative bounding driven directly through the cache API, collecting the
/// set of distinct bugs, the set of non-buggy terminal fingerprints of
/// *counted* schedules, the number of real program executions and the bound
/// of the first bug. Returns `None` when the run outgrows `cap` executions
/// or diverges (intractable for a unit-test budget).
#[allow(clippy::type_complexity)]
fn bounding_exploration_sets(
    program: &sct::ir::Program,
    kind: BoundKind,
    cached: bool,
    max_bound: u32,
    cap: u64,
) -> Option<(
    std::collections::BTreeSet<String>,
    std::collections::BTreeSet<u64>,
    u64,
    Option<u32>,
)> {
    use sct::core::cache::{run_begun_schedule, CacheHandle, ScheduleCache, ScheduleRun};
    use sct::runtime::Execution;
    let config = ExecConfig::all_visible();
    let mut exec = Execution::new_shared(program, &config);
    let mut cache = cached.then(ScheduleCache::default);
    let mut bugs = std::collections::BTreeSet::new();
    let mut fingerprints = std::collections::BTreeSet::new();
    let mut executions = 0u64;
    let mut bound_of_first_bug = None;
    for bound in 0..=max_bound {
        let mut scheduler = BoundedDfs::new(kind.policy(), bound);
        while scheduler.begin_execution() {
            let handle = match cache.as_mut() {
                Some(c) => CacheHandle::Local(c),
                None => CacheHandle::Off,
            };
            let (run, _) = run_begun_schedule(&mut exec, &mut scheduler, handle, false);
            if matches!(run, ScheduleRun::Executed(_)) {
                executions += 1;
                if executions > cap {
                    return None;
                }
            }
            if scheduler.current_execution_redundant() {
                continue;
            }
            if run.cost(kind) != bound && bound != 0 {
                continue;
            }
            let digest = run.digest();
            if digest.diverged {
                return None;
            }
            match &digest.bug {
                Some(b) => {
                    bugs.insert(format!("{b:?}"));
                }
                None => {
                    fingerprints.insert(digest.fingerprint);
                }
            }
        }
        if !bugs.is_empty() {
            // Same rule as the driver: complete the bound of the first bug,
            // then stop.
            if bound_of_first_bug.is_none() {
                bound_of_first_bug = Some(bound);
            }
            break;
        }
        if scheduler.is_complete() && !scheduler.was_pruned() {
            break;
        }
    }
    Some((bugs, fingerprints, executions, bound_of_first_bug))
}

#[test]
fn differential_cached_bounding_preserves_bugs_and_terminal_fingerprints() {
    // Below the statistics: the cached search must see the *same worlds* —
    // identical bug sets and identical non-buggy terminal-state fingerprints
    // at every counted schedule — whether a schedule was executed or served
    // from the memo.
    let cap = 60_000u64;
    let mut compared = 0usize;
    let mut strictly_reduced = Vec::new();
    for name in [
        "CS.din_phil2_sat",
        "CS.lazy01_bad",
        "CS.reorder_3_bad",
        "CS.sync01_bad",
        "CS.twostage_bad",
        "misc.ctrace-test",
    ] {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        for kind in [BoundKind::Preemption, BoundKind::Delay] {
            let Some((bugs, fps, execs, first)) =
                bounding_exploration_sets(&program, kind, false, 8, cap)
            else {
                continue;
            };
            let (cbugs, cfps, cexecs, cfirst) =
                bounding_exploration_sets(&program, kind, true, 8, cap)
                    .expect("cached run larger than uncached");
            compared += 1;
            assert_eq!(bugs, cbugs, "{name}: {kind:?} bug sets differ");
            assert_eq!(fps, cfps, "{name}: {kind:?} fingerprints differ");
            assert_eq!(first, cfirst, "{name}: {kind:?} bound of first bug differs");
            assert!(cexecs <= execs, "{name}: {kind:?} cache added executions");
            if cexecs < execs {
                strictly_reduced.push((name, kind));
            }
        }
    }
    assert!(compared >= 6, "only {compared} runs stayed tractable");
    assert!(
        strictly_reduced.len() >= 3,
        "cache reduced only {strictly_reduced:?}"
    );
}

#[test]
fn cached_parallel_iterative_bounding_is_bit_identical_to_the_serial_driver() {
    // With caching on, `parallel_iterative_bounding` must reproduce the
    // serial statistics exactly — including the executions / cache_hits /
    // cache_bytes counters recomputed by the fold's deterministic cache
    // replay — at 1, 2 and 8 workers (plus any count injected by CI through
    // SCT_TEST_WORKERS), with and without POR and budget truncation.
    let worker_counts = differential_worker_counts();
    for name in ["CS.din_phil2_sat", "CS.reorder_3_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        let config = ExecConfig::all_visible();
        for (schedule_limit, por) in [(7u64, false), (2_000, false), (2_000, true)] {
            let limits = ExploreLimits::with_schedule_limit(schedule_limit)
                .with_por(por)
                .with_cache(true);
            for kind in [BoundKind::Preemption, BoundKind::Delay] {
                let serial = iterative_bounding(&program, &config, kind, &limits);
                for &workers in &worker_counts {
                    let parallel = sct::core::parallel_iterative_bounding(
                        &program, &config, kind, &limits, workers,
                    );
                    assert_eq!(
                        serial, parallel,
                        "{name}: {kind:?} with {workers} workers at limit {schedule_limit}, por={por}"
                    );
                }
            }
        }
    }
}

#[test]
fn cache_harness_pipeline_reports_identical_rows_with_fewer_executions() {
    // End-to-end through the harness: `--schedule-cache` must change no
    // verdict and no study row — only the execution/cache counters.
    let base = HarnessConfig {
        schedule_limit: 1_000,
        race_runs: 5,
        seed: 7,
        use_race_phase: false,
        static_phase: false,
        include_pct: false,
        workers: 2,
        por: false,
        cache: false,
        steal_workers: 1,
        corpus_dir: None,
        resume: false,
        ..Default::default()
    };
    let cache_cfg = HarnessConfig {
        cache: true,
        ..base.clone()
    };
    for name in ["CS.reorder_4_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let plain = sct::harness::pipeline::run_benchmark(&spec, &base).unwrap();
        let cached = sct::harness::pipeline::run_benchmark(&spec, &cache_cfg).unwrap();
        for label in ["IPB", "IDB", "DFS", "Rand", "MapleAlg"] {
            let p = plain.technique(label).unwrap();
            let c = cached.technique(label).unwrap();
            assert_eq!(
                sans_cache_counters(p.clone()),
                sans_cache_counters(c.clone()),
                "{name}: {label} row changed under --schedule-cache"
            );
        }
        for label in ["IPB", "IDB"] {
            let p = plain.technique(label).unwrap();
            let c = cached.technique(label).unwrap();
            assert!(
                c.cache_hits > 0 && c.executions < p.executions,
                "{name}: {label} cache saved nothing ({} vs {} executions)",
                c.executions,
                p.executions
            );
        }
        // Techniques without a covered interior are untouched.
        assert_eq!(plain.technique("Rand"), cached.technique("Rand"), "{name}");
        assert_eq!(plain.technique("DFS"), cached.technique("DFS"), "{name}");
    }
}

#[test]
fn por_harness_pipeline_finds_the_same_bugs_with_fewer_systematic_schedules() {
    // End-to-end through the harness: `--por` must not change which
    // techniques find the bug, and the systematic techniques must explore no
    // more schedules than without the reduction.
    let base = HarnessConfig {
        schedule_limit: 2_000,
        race_runs: 5,
        seed: 7,
        use_race_phase: false,
        static_phase: false,
        include_pct: false,
        workers: 2,
        por: false,
        cache: false,
        steal_workers: 1,
        corpus_dir: None,
        resume: false,
        ..Default::default()
    };
    let por_cfg = HarnessConfig {
        por: true,
        ..base.clone()
    };
    for name in ["CS.reorder_3_bad", "misc.ctrace-test"] {
        let spec = benchmark_by_name(name).unwrap();
        let plain = sct::harness::pipeline::run_benchmark(&spec, &base).unwrap();
        let por = sct::harness::pipeline::run_benchmark(&spec, &por_cfg).unwrap();
        for label in ["IPB", "IDB", "DFS", "Rand", "MapleAlg"] {
            assert_eq!(
                plain.found_by(label),
                por.found_by(label),
                "{name}: {label} changed its verdict under POR"
            );
        }
        let plain_dfs = plain.technique("DFS").unwrap();
        let por_dfs = por.technique("DFS").unwrap();
        assert!(
            por_dfs.schedules <= plain_dfs.schedules,
            "{name}: POR DFS explored more ({} vs {})",
            por_dfs.schedules,
            plain_dfs.schedules
        );
        assert!(
            por_dfs.slept > 0,
            "{name}: the reduction never put a thread to sleep"
        );
        // Randomised techniques are untouched by the toggle.
        assert_eq!(plain.technique("Rand"), por.technique("Rand"), "{name}");
    }
}

// ---------------------------------------------------------------------------
// Work-stealing frontier: the differential-testing harness.
// ---------------------------------------------------------------------------

#[test]
fn stolen_frontier_techniques_are_bit_identical_to_the_serial_driver() {
    // The oracle for the work-stealing frontier: splitting a systematic
    // technique's own search across stealing threads must change *nothing*
    // observable — the full `ExplorationStats` (schedules, executions, sleep
    // counters, cache counters, bounds, first-bug bookkeeping, budget flags)
    // stays bit-identical to the serial run at every worker count, under
    // every flag combination. Where the combination is unsound to steal
    // (POR with a pruning bound), the driver must fall back to serial, so
    // equality still holds by construction.
    let worker_counts = differential_worker_counts();
    let techniques = [
        Technique::Dfs,
        Technique::IterativePreemptionBounding,
        Technique::IterativeDelayBounding,
    ];
    for name in ["CS.din_phil2_sat", "CS.reorder_3_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        let config = ExecConfig::all_visible();
        for (schedule_limit, por, cache) in [
            (7u64, false, false),
            (2_000, false, false),
            (2_000, true, false),
            (2_000, false, true),
            (2_000, true, true),
        ] {
            for technique in techniques {
                let base = ExploreLimits::with_schedule_limit(schedule_limit)
                    .with_por(por)
                    .with_cache(cache);
                let serial = explore::run_technique(&program, &config, technique, &base);
                for &workers in &worker_counts {
                    let stolen = explore::run_technique(
                        &program,
                        &config,
                        technique,
                        &base.clone().with_steal_workers(workers),
                    );
                    assert_eq!(
                        serial,
                        stolen,
                        "{name}: {} with {workers} steal workers at limit \
                         {schedule_limit}, por={por}, cache={cache}",
                        technique.label()
                    );
                }
            }
        }
    }
}

#[test]
fn stolen_frontier_preserves_bug_sets_and_terminal_fingerprints() {
    // Below the statistics: the stolen search folds per-subtree results back
    // in exact serial DFS order, so the *stream* of terminal digests — every
    // counted schedule's bug or terminal-state fingerprint, in visit order —
    // must be identical to the serial stream, not merely equal as a set.
    let worker_counts = differential_worker_counts();
    let mut buggy_streams = 0usize;
    for name in ["CS.din_phil2_sat", "CS.reorder_3_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        let config = ExecConfig::all_visible();
        for (kind, bound) in [
            (BoundKind::None, u32::MAX),
            (BoundKind::Preemption, 1),
            (BoundKind::Preemption, 2),
            (BoundKind::Delay, 1),
        ] {
            for por in [false, true] {
                let base = limits(2_000).with_por(por);
                let (serial_stats, serial_digests) = explore_bounded_stealing_digests(
                    &program,
                    &config,
                    kind,
                    bound,
                    &base.clone().with_steal_workers(1),
                );
                for &workers in &worker_counts {
                    let (stolen_stats, stolen_digests) = explore_bounded_stealing_digests(
                        &program,
                        &config,
                        kind,
                        bound,
                        &base.clone().with_steal_workers(workers),
                    );
                    assert_eq!(
                        serial_stats, stolen_stats,
                        "{name}: {kind:?}({bound}) por={por}, {workers} workers: stats"
                    );
                    assert_eq!(
                        serial_digests, stolen_digests,
                        "{name}: {kind:?}({bound}) por={por}, {workers} workers: digest stream"
                    );
                }
                // The derived observables the study reports — the set of
                // distinct bugs and of non-buggy terminal states — follow
                // from stream equality; track that the suite actually
                // exercises buggy streams rather than vacuous empty ones.
                if serial_digests.iter().any(|d| d.bug.is_some()) {
                    buggy_streams += 1;
                }
                assert_eq!(serial_stats.schedules, serial_digests.len() as u64);
            }
        }
    }
    assert!(
        buggy_streams >= 4,
        "only {buggy_streams} configurations produced a bug; the suite went vacuous"
    );
}

// ---------------------------------------------------------------------------
// Persistent schedule corpus ("campaign mode"): the resume differential.
// ---------------------------------------------------------------------------

/// A scratch corpus directory unique to this test process and test name.
fn scratch_corpus_dir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sct-corpus-it-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One campaign-mode run of `technique`: seed the shared trie from `seed`
/// (serialized corpus bytes, or `None` for a cold start), explore, and hand
/// back the statistics together with the trie serialized exactly as
/// `Corpus::save_cache` would write it.
fn campaign_run(
    program: &sct::ir::Program,
    config: &ExecConfig,
    technique: Technique,
    base: &ExploreLimits,
    key: u64,
    seed: Option<&[u8]>,
) -> (sct::core::ExplorationStats, Vec<u8>) {
    let cache = match seed {
        Some(bytes) => corpus::cache_from_bytes(bytes, key, std::path::Path::new("<mem>"))
            .expect("a trie saved by campaign_run must load back"),
        None => ScheduleCache::default(),
    };
    let shared = std::sync::Arc::new(SharedCache::of(cache));
    let lim = base.clone().with_shared_cache(Some(shared.clone()));
    let stats = explore::run_technique(program, config, technique, &lim);
    let saved = shared.with_live(|cache| corpus::cache_to_bytes(cache, key));
    (stats, saved)
}

#[test]
fn corpus_resume_is_bit_identical_to_the_cold_run_with_strictly_fewer_executions() {
    // The tentpole oracle: a run resumed from a saved trie must report the
    // exact statistics of the cold campaign run — which itself must match
    // the corpus-less driver — while every execution the resume skips
    // reappears as a cache hit. Because these spaces are fully covered by
    // the cold run, the resume must execute *nothing*; and since it learns
    // nothing new, re-saving the trie must reproduce the artifact
    // byte-for-byte. Holds for DFS/IPB/IDB × por × budget truncation at
    // every steal-worker count.
    let worker_counts = differential_worker_counts();
    let techniques = [
        Technique::Dfs,
        Technique::IterativePreemptionBounding,
        Technique::IterativeDelayBounding,
    ];
    for name in ["CS.din_phil2_sat", "CS.reorder_3_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        let config = ExecConfig::all_visible();
        let key = corpus::corpus_key(name, &config);
        for technique in techniques {
            for (schedule_limit, por) in [(7u64, false), (2_000, false), (2_000, true)] {
                let base = limits(schedule_limit).with_por(por);
                let plain = explore::run_technique(&program, &config, technique, &base);
                for &workers in &worker_counts {
                    let lim = base.clone().with_steal_workers(workers);
                    let (cold, saved) = campaign_run(&program, &config, technique, &lim, key, None);
                    let ctx = format!(
                        "{name}: {} at limit {schedule_limit}, por={por}, {workers} steal workers",
                        technique.label()
                    );
                    assert_eq!(
                        sans_cache_counters(plain.clone()),
                        sans_cache_counters(cold.clone()),
                        "{ctx}: campaign mode changed the cold run"
                    );
                    let (resumed, resaved) =
                        campaign_run(&program, &config, technique, &lim, key, Some(&saved));
                    assert_eq!(
                        sans_cache_counters(cold.clone()),
                        sans_cache_counters(resumed.clone()),
                        "{ctx}: resuming changed the statistics"
                    );
                    assert_eq!(
                        resumed.executions + resumed.cache_hits,
                        cold.executions + cold.cache_hits,
                        "{ctx}: skipped executions must reappear as cache hits"
                    );
                    assert!(cold.executions > 0, "{ctx}: the cold run executed nothing");
                    assert_eq!(
                        resumed.executions, 0,
                        "{ctx}: the saved trie covers this run, yet the resume re-executed"
                    );
                    // The artifact is a fixed point of resume wherever its
                    // content is deterministic: always in the serial driver,
                    // and for stolen runs whenever the space was covered. (A
                    // *truncated* stolen run also stores whatever its workers
                    // speculatively completed beyond the budget — a timing-
                    // dependent superset that the statistics, which fold only
                    // the counted prefix, are insulated from.)
                    if workers == 1 || cold.complete {
                        assert_eq!(
                            saved, resaved,
                            "{ctx}: re-saving after a covered resume changed the artifact"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn corpus_answers_the_exhausted_at_limit_probe_without_executing() {
    // Satellite bugfix pin: when the budget runs out exactly as the space
    // does, a one-shot probe decides between `complete` and
    // `hit_schedule_limit`. On a resumed run the loaded trie can answer
    // every schedule — including the POR drain the probe may trigger — so
    // the resume must reach the same verdict as the cold run with zero
    // executions, both at the exact budget and one schedule under it.
    for name in ["CS.din_phil2_sat", "CS.reorder_3_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        let config = ExecConfig::all_visible();
        let key = corpus::corpus_key(name, &config);
        for por in [false, true] {
            let exhaustive = explore::run_technique(
                &program,
                &config,
                Technique::Dfs,
                &limits(500_000).with_por(por),
            );
            assert!(exhaustive.complete, "{name}: pick a tractable benchmark");
            let n = exhaustive.schedules;
            for budget in [n, n - 1] {
                let base = limits(budget).with_por(por);
                let (cold, saved) =
                    campaign_run(&program, &config, Technique::Dfs, &base, key, None);
                let (resumed, _) =
                    campaign_run(&program, &config, Technique::Dfs, &base, key, Some(&saved));
                let ctx = format!("{name}: por={por}, budget {budget} of {n}");
                assert_eq!(
                    cold.complete,
                    budget == n,
                    "{ctx}: the exact budget must be complete, one under it truncated"
                );
                assert_eq!(cold.hit_schedule_limit, budget != n, "{ctx}");
                assert_eq!(
                    sans_cache_counters(cold.clone()),
                    sans_cache_counters(resumed.clone()),
                    "{ctx}: the resumed probe changed the verdict"
                );
                assert_eq!(
                    resumed.executions, 0,
                    "{ctx}: the probe/drain re-executed despite a covering corpus"
                );
            }
        }
    }
}

#[test]
fn corpus_resume_preserves_the_terminal_digest_stream() {
    // Below the statistics: the resumed run must serve the *same schedules
    // in the same order*, so the stream of terminal digests of counted
    // schedules — bug or terminal-state fingerprint, in visit order — is
    // identical to both the cold campaign stream and the corpus-less stream,
    // serial and stolen.
    let worker_counts = differential_worker_counts();
    for name in ["CS.reorder_3_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        let config = ExecConfig::all_visible();
        let key = corpus::corpus_key(name, &config);
        for (kind, bound) in [
            (BoundKind::None, u32::MAX),
            (BoundKind::Preemption, 2),
            (BoundKind::Delay, 1),
        ] {
            for por in [false, true] {
                let base = limits(2_000).with_por(por);
                let (_, reference) =
                    explore_bounded_stealing_digests(&program, &config, kind, bound, &base);
                for &workers in &worker_counts {
                    let lim = base.clone().with_steal_workers(workers);
                    let cold_shared =
                        std::sync::Arc::new(SharedCache::of(ScheduleCache::default()));
                    let (cold_stats, cold_digests) = explore_bounded_stealing_digests(
                        &program,
                        &config,
                        kind,
                        bound,
                        &lim.clone().with_shared_cache(Some(cold_shared.clone())),
                    );
                    let saved = cold_shared.with_live(|c| corpus::cache_to_bytes(c, key));
                    let loaded =
                        corpus::cache_from_bytes(&saved, key, std::path::Path::new("<mem>"))
                            .unwrap();
                    let (resumed_stats, resumed_digests) = explore_bounded_stealing_digests(
                        &program,
                        &config,
                        kind,
                        bound,
                        &lim.clone()
                            .with_shared_cache(Some(std::sync::Arc::new(SharedCache::of(loaded)))),
                    );
                    let ctx = format!("{name}: {kind:?}({bound}) por={por}, {workers} workers");
                    assert_eq!(reference, cold_digests, "{ctx}: cold digest stream");
                    assert_eq!(
                        cold_digests, resumed_digests,
                        "{ctx}: resumed digest stream"
                    );
                    assert_eq!(
                        sans_cache_counters(cold_stats),
                        sans_cache_counters(resumed_stats.clone()),
                        "{ctx}: stats"
                    );
                    assert_eq!(resumed_stats.executions, 0, "{ctx}: resume re-executed");
                }
            }
        }
    }
}

#[test]
fn harness_campaign_mode_persists_resumes_and_replays() {
    // End-to-end through the harness: `--corpus-dir` must write a trie and a
    // minimized bug corpus per benchmark, `--resume` must reproduce every
    // study row bit-for-bit (modulo the cache counters) while the systematic
    // techniques execute strictly less, every recorded bug prefix must
    // reproduce its bug in exactly one execution, and resuming under a
    // different exploration configuration must be a hard error rather than a
    // silent cold start.
    let dir = scratch_corpus_dir("harness");
    let base = HarnessConfig {
        schedule_limit: 400,
        race_runs: 3,
        seed: 7,
        use_race_phase: false,
        static_phase: false,
        include_pct: false,
        workers: 2,
        por: false,
        cache: false,
        steal_workers: 1,
        corpus_dir: Some(dir.clone()),
        resume: false,
        ..Default::default()
    };
    for name in ["CS.reorder_3_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let cold = sct::harness::pipeline::run_benchmark(&spec, &base).unwrap();

        // Both artifacts exist, and every recorded bug prefix replays to its
        // recorded bug in exactly one execution.
        let corpus_dir = Corpus::open(&dir).unwrap();
        assert!(
            corpus_dir.cache_path(name).exists(),
            "{name}: no trie saved"
        );
        let bugs = corpus_dir
            .load_bugs(name)
            .unwrap()
            .unwrap_or_else(|| panic!("{name}: no bug corpus saved"));
        assert!(!bugs.records.is_empty(), "{name}: bug corpus is empty");
        let program = spec.program();
        for record in &bugs.records {
            let outcome = corpus::replay_prefix(&program, &bugs.config, &record.prefix);
            assert_eq!(
                outcome.bug.as_ref(),
                Some(&record.bug),
                "{name}: a minimized prefix of {} decisions failed to replay its bug",
                record.prefix.len()
            );
        }

        // Resume: identical rows, strictly cheaper systematic techniques.
        let resumed = sct::harness::pipeline::run_benchmark(
            &spec,
            &HarnessConfig {
                resume: true,
                ..base.clone()
            },
        )
        .unwrap();
        for label in ["IPB", "IDB", "DFS", "Rand", "MapleAlg"] {
            let c = cold.technique(label).unwrap();
            let r = resumed.technique(label).unwrap();
            assert_eq!(
                sans_cache_counters(c.clone()),
                sans_cache_counters(r.clone()),
                "{name}: {label} row changed under --resume"
            );
        }
        for label in ["IPB", "IDB", "DFS"] {
            let c = cold.technique(label).unwrap();
            let r = resumed.technique(label).unwrap();
            assert_eq!(
                r.executions + r.cache_hits,
                c.executions + c.cache_hits,
                "{name}: {label} lost executions instead of converting them to hits"
            );
            assert!(
                r.executions < c.executions,
                "{name}: {label} resume saved nothing ({} vs {} executions)",
                r.executions,
                c.executions
            );
        }
        // Techniques outside the trie are untouched by the corpus.
        assert_eq!(cold.technique("Rand"), resumed.technique("Rand"), "{name}");

        // A different execution configuration fingerprints differently:
        // resuming against it must refuse, not silently start cold.
        let mismatched = sct::harness::pipeline::run_benchmark(
            &spec,
            &HarnessConfig {
                use_race_phase: true,
                static_phase: false,
                resume: true,
                ..base.clone()
            },
        );
        assert!(
            matches!(mismatched, Err(CorpusError::KeyMismatch { .. })),
            "{name}: resuming under a different config must fail with KeyMismatch, got {mismatched:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Fault tolerance: wall-clock deadlines and crash-safe checkpoints.
// ---------------------------------------------------------------------------

#[test]
fn time_budgets_are_invisible_until_they_fire() {
    // The deadline check sits at schedule boundaries, so a budget generous
    // enough never to fire must leave every statistic bit-identical to the
    // unbudgeted run (`ExplorationStats` equality already ignores the
    // wall-clock fields), at every steal-worker count. A zero budget is the
    // other extreme: the driver must stop before schedule 1, report the
    // empty partial counts, and claim neither completion nor a
    // schedule-limit stop — `deadline_exceeded` alone explains the row.
    let generous = Some(std::time::Duration::from_secs(3_600));
    let zero = Some(std::time::Duration::ZERO);
    let techniques = [
        Technique::Dfs,
        Technique::IterativePreemptionBounding,
        Technique::IterativeDelayBounding,
        Technique::Random { seed: 11 },
        Technique::Pct { depth: 3, seed: 11 },
        Technique::MapleLike {
            profiling_runs: 3,
            seed: 11,
        },
    ];
    for name in ["CS.reorder_3_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        let config = ExecConfig::all_visible();
        for technique in techniques {
            for &workers in &differential_worker_counts() {
                let base = limits(300).with_steal_workers(workers);
                let plain = explore::run_technique(&program, &config, technique, &base);
                let budgeted = explore::run_technique(
                    &program,
                    &config,
                    technique,
                    &base.clone().with_time_budget(generous),
                );
                let ctx = format!("{name}: {} with {workers} steal workers", technique.label());
                assert!(
                    !budgeted.deadline_exceeded,
                    "{ctx}: a one-hour budget fired"
                );
                assert_eq!(
                    plain, budgeted,
                    "{ctx}: an unfired budget changed the search"
                );

                let starved = explore::run_technique(
                    &program,
                    &config,
                    technique,
                    &base.clone().with_time_budget(zero),
                );
                assert!(starved.deadline_exceeded, "{ctx}: a zero budget must fire");
                assert_eq!(
                    starved.schedules, 0,
                    "{ctx}: the run must stop before schedule 1"
                );
                assert!(
                    !starved.complete && !starved.hit_schedule_limit && !starved.bound_exhausted,
                    "{ctx}: a deadline stop must not masquerade as any other stop"
                );
            }
        }
    }
}

#[test]
fn a_mid_run_checkpoint_resumes_to_the_cold_run_bit_for_bit() {
    // Crash-safety oracle for the periodic autosave: a checkpoint is exactly
    // the trie of a run truncated at the checkpoint's schedule count, so a
    // study SIGKILLed right after one and resumed at the full budget must
    // reproduce the cold run's terminal digest stream and statistics while
    // executing strictly less — at every steal-worker count.
    let worker_counts = differential_worker_counts();
    for name in ["CS.reorder_3_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        let config = ExecConfig::all_visible();
        let key = corpus::corpus_key(name, &config);
        for (kind, bound) in [(BoundKind::None, u32::MAX), (BoundKind::Delay, 1)] {
            for &workers in &worker_counts {
                let full = limits(2_000).with_steal_workers(workers);
                let cold_shared = std::sync::Arc::new(SharedCache::of(ScheduleCache::default()));
                let (cold_stats, cold_digests) = explore_bounded_stealing_digests(
                    &program,
                    &config,
                    kind,
                    bound,
                    &full.clone().with_shared_cache(Some(cold_shared.clone())),
                );

                // "Kill at the checkpoint": the interior after 40 schedules,
                // serialized exactly as the campaign autosave writes it.
                let partial_shared = std::sync::Arc::new(SharedCache::of(ScheduleCache::default()));
                let _ = explore_bounded_stealing_digests(
                    &program,
                    &config,
                    kind,
                    bound,
                    &limits(40)
                        .with_steal_workers(workers)
                        .with_shared_cache(Some(partial_shared.clone())),
                );
                let checkpoint = partial_shared.with_live(|c| corpus::cache_to_bytes(c, key));
                let loaded =
                    corpus::cache_from_bytes(&checkpoint, key, std::path::Path::new("<mem>"))
                        .expect("a checkpoint must load back");

                let (resumed_stats, resumed_digests) = explore_bounded_stealing_digests(
                    &program,
                    &config,
                    kind,
                    bound,
                    &full
                        .clone()
                        .with_shared_cache(Some(std::sync::Arc::new(SharedCache::of(loaded)))),
                );
                let ctx = format!("{name}: {kind:?}({bound}), {workers} steal workers");
                assert_eq!(cold_digests, resumed_digests, "{ctx}: digest stream");
                assert_eq!(
                    sans_cache_counters(cold_stats.clone()),
                    sans_cache_counters(resumed_stats.clone()),
                    "{ctx}: stats"
                );
                assert!(
                    resumed_stats.executions < cold_stats.executions,
                    "{ctx}: the checkpoint saved nothing ({} vs {} executions)",
                    resumed_stats.executions,
                    cold_stats.executions
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Static analysis: the soundness oracle against the dynamic phases.
// ---------------------------------------------------------------------------

#[test]
fn static_race_candidates_are_a_sound_superset_of_the_dynamic_detector() {
    // The analyzer's claim is soundness, not precision: on every benchmark,
    // every race the dynamic FastTrack phase reports must appear among the
    // static candidates, and every dynamically promoted location must be a
    // statically promoted one. (The reverse — static candidates the dynamic
    // runs never witness — is expected imprecision, e.g. join-blind MHP.)
    use sct::analysis::analyze;
    let mut with_dynamic_races = 0usize;
    for spec in all_benchmarks() {
        let program = spec.program();
        let report = race_detection_phase(&program, &RacePhaseConfig::default());
        let analysis = analyze(&program);
        let pairs = analysis.candidate_pairs();
        let locations = analysis.candidate_locations();
        for race in &report.races {
            let key = if race.first <= race.second {
                (race.first, race.second)
            } else {
                (race.second, race.first)
            };
            assert!(
                pairs.contains(&key),
                "{}: dynamic race {} <-> {} is missing from the static candidates",
                spec.name,
                race.first,
                race.second
            );
        }
        for loc in report.racy_locations() {
            assert!(
                locations.contains(&loc),
                "{}: dynamically racy location {loc} was not statically promoted",
                spec.name
            );
        }
        if !report.races.is_empty() {
            with_dynamic_races += 1;
        }
    }
    // Keep the oracle honest: the dynamic phase must actually exercise it.
    assert!(
        with_dynamic_races >= 10,
        "only {with_dynamic_races} benchmarks showed dynamic races; the differential is vacuous"
    );
}

#[test]
fn static_analysis_flags_every_deadlock_benchmark() {
    use sct::analysis::analyze;
    use sct::bench::BugKind;

    // (1) Registry ground truth: every benchmark whose documented bug is a
    // deadlock (lock-order inversion or lost wakeup) must be flagged.
    let mut deadlock_specs = 0usize;
    for spec in all_benchmarks() {
        if spec.bug_kind == BugKind::Deadlock {
            deadlock_specs += 1;
            let program = spec.program();
            assert!(
                analyze(&program).flags_deadlock(),
                "{}: deadlock benchmark escaped the static analysis",
                spec.name
            );
        }
    }
    assert!(
        deadlock_specs >= 8,
        "only {deadlock_specs} deadlock benchmarks in the registry; expected dining philosophers alone to provide 6"
    );

    // (2) Exploration ground truth: on every tractable benchmark whose
    // exhaustive DFS actually reaches a deadlock, the analyzer flags it.
    for name in TRACTABLE_DFS_BENCHMARKS {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        let Some((bugs, _, _)) = dfs_exploration_sets(&program, true, 16_000) else {
            continue;
        };
        if bugs.iter().any(|b| b.contains("Deadlock")) {
            assert!(
                analyze(&program).flags_deadlock(),
                "{name}: DFS reached a deadlock the analyzer did not flag"
            );
        }
    }

    // (3) Shape: the classic inversions are flagged through a lock-order
    // cycle specifically, and a racy-but-deadlock-free benchmark is clean.
    for name in ["CS.deadlock01_bad", "CS.din_phil2_sat"] {
        let program = benchmark_by_name(name).unwrap().program();
        assert!(
            !analyze(&program).lock_cycles.is_empty(),
            "{name}: expected a lock-order cycle"
        );
    }
    let program = benchmark_by_name("CS.account_bad").unwrap().program();
    assert!(!analyze(&program).flags_deadlock());
}

#[test]
fn static_phase_pipeline_finds_the_same_bugs_as_the_dynamic_race_phase() {
    // `--static-phase` replaces the ten uncontrolled race runs with the
    // analyzer's candidates. Because those candidates are a superset of the
    // dynamically racy locations, the promoted-visibility exploration must
    // find the same bugs on benchmarks with known bugs.
    let base = HarnessConfig {
        schedule_limit: 2_000,
        race_runs: 5,
        seed: 7,
        use_race_phase: true,
        static_phase: false,
        include_pct: false,
        workers: 2,
        por: false,
        cache: false,
        steal_workers: 1,
        corpus_dir: None,
        resume: false,
        ..Default::default()
    };
    let static_cfg = HarnessConfig {
        static_phase: true,
        ..base.clone()
    };
    for name in ["CS.stack_bad", "CS.reorder_3_bad", "CS.lazy01_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let dynamic = sct::harness::pipeline::run_benchmark(&spec, &base).unwrap();
        let fast = sct::harness::pipeline::run_benchmark(&spec, &static_cfg).unwrap();
        let found = |r: &sct::harness::BenchmarkResult| -> std::collections::BTreeSet<String> {
            r.techniques
                .iter()
                .filter(|t| t.found_bug())
                .map(|t| t.technique.clone())
                .collect()
        };
        let dynamic_found = found(&dynamic);
        let static_found = found(&fast);
        assert!(
            !dynamic_found.is_empty(),
            "{name}: the dynamic-phase run found no bug at all"
        );
        assert_eq!(
            dynamic_found, static_found,
            "{name}: bug sets differ between the race phases"
        );
        assert_eq!(
            fast.races, 0,
            "{name}: static phase must skip the race runs"
        );
        assert_eq!(
            fast.racy_locations, fast.static_locations,
            "{name}: static mode promotes exactly the candidate locations"
        );
    }
}

#[test]
fn pretty_rendering_of_account_bad_is_stable() {
    // A golden test over a representative benchmark: every construct it uses
    // (globals, mutexes, lock/unlock, loads/stores, locals arithmetic, spawn
    // with handles, join, assert) renders exactly like this. A diff here
    // means the IR text format changed — update deliberately.
    let program = benchmark_by_name("CS.account_bad").unwrap().program();
    let expected = "\
program CS.account_bad
  global balance x1 = [0]
  mutex m x1
  thread deposit [1 locals]
      0: lock m
      1: l0 = load balance
      2: unlock m
      3: l0 = (l0 + 100)
      4: lock m
      5: store balance = l0
      6: unlock m
      7: halt
  thread withdraw [1 locals]
      0: lock m
      1: l0 = load balance
      2: unlock m
      3: l0 = (l0 - 40)
      4: lock m
      5: store balance = l0
      6: unlock m
      7: halt
  thread check [1 locals]
      0: lock m
      1: l0 = load balance
      2: unlock m
      3: assert ((l0 == 0) || ((l0 == 100) || ((l0 == -40) || (l0 == 60)))) \"balance is consistent\"
      4: halt
  thread main (main) [4 locals]
      0: l0 = spawn deposit
      1: l1 = spawn withdraw
      2: l2 = spawn check
      3: join l0
      4: join l1
      5: join l2
      6: l3 = load balance
      7: assert (l3 == 60) \"final balance == 60\"
      8: halt
";
    assert_eq!(sct::ir::pretty::program_to_string(&program), expected);
}

// ---------------------------------------------------------------------------
// Exploration telemetry: tracing is observation-only.
// ---------------------------------------------------------------------------

#[test]
fn telemetry_tracing_changes_no_stats_or_digest_stream() {
    // The tentpole invariant of the telemetry layer: events are observations,
    // never inputs. Turning tracing on — with a recorder that sees every
    // emission, progress throttle removed — must leave both the full
    // `ExplorationStats` (timing is excluded from its equality) and the
    // serial-order terminal-digest stream bit-identical to the untraced run,
    // at every steal-worker count.
    use sct::core::telemetry::CountingRecorder;
    use std::sync::Arc;

    for name in ["CS.reorder_3_bad", "CS.twostage_bad"] {
        let spec = benchmark_by_name(name).unwrap();
        let program = spec.program();
        let config = ExecConfig::all_visible();
        for (kind, bound) in [(BoundKind::None, u32::MAX), (BoundKind::Delay, 1)] {
            for workers in [1usize, 2, 8] {
                let off = limits(1_000).with_steal_workers(workers);
                let (plain_stats, plain_digests) =
                    explore_bounded_stealing_digests(&program, &config, kind, bound, &off);

                let recorder = Arc::new(CountingRecorder::default());
                let telemetry = Telemetry::with_progress_interval(
                    vec![Box::new(Arc::clone(&recorder))],
                    std::time::Duration::ZERO,
                );
                let on = limits(1_000)
                    .with_steal_workers(workers)
                    .with_telemetry(telemetry);
                let (traced_stats, traced_digests) =
                    explore_bounded_stealing_digests(&program, &config, kind, bound, &on);

                assert_eq!(
                    plain_stats, traced_stats,
                    "{name}: {kind:?}({bound}) at {workers} steal workers: stats drifted under tracing"
                );
                assert_eq!(
                    plain_digests, traced_digests,
                    "{name}: {kind:?}({bound}) at {workers} steal workers: digest stream drifted"
                );
                assert!(
                    recorder.total() > 0,
                    "{name}: tracing at {workers} workers recorded nothing — the oracle is vacuous"
                );
            }
        }
    }
}

#[test]
fn telemetry_off_is_the_default_and_records_nothing() {
    // The no-op path: default limits carry the off handle, an empty recorder
    // list collapses to it, and a run with the off handle equals a run with
    // no telemetry configured at all (the same code path, by construction —
    // emit closures are never even built, as the unit suite shows by panicking
    // inside them).
    assert!(!ExploreLimits::default().telemetry.is_on());
    assert!(!Telemetry::new(Vec::new()).is_on());

    let spec = benchmark_by_name("CS.reorder_3_bad").unwrap();
    let program = spec.program();
    let config = ExecConfig::all_visible();
    let implicit = explore::run_technique(
        &program,
        &config,
        Technique::IterativeDelayBounding,
        &limits(500),
    );
    let explicit = explore::run_technique(
        &program,
        &config,
        Technique::IterativeDelayBounding,
        &limits(500).with_telemetry(Telemetry::off()),
    );
    assert_eq!(implicit, explicit);
}

#[test]
fn study_trace_is_schema_valid_and_covers_the_event_families() {
    // End-to-end over the harness: a small cached, stealing study must emit a
    // trace in which every line validates against the event schema and every
    // event family of the tentpole appears — study/benchmark/technique
    // lifecycle, race phase, bound levels, steal activity, cache state and
    // bug discovery.
    use sct::core::telemetry::{validate_trace_line, BufferRecorder};
    use std::sync::Arc;

    let recorder = Arc::new(BufferRecorder::default());
    let config = HarnessConfig {
        schedule_limit: 300,
        race_runs: 3,
        cache: true,
        steal_workers: 2,
        workers: 2,
        telemetry: Telemetry::with_progress_interval(
            vec![Box::new(Arc::clone(&recorder))],
            std::time::Duration::ZERO,
        ),
        ..Default::default()
    };
    let results = run_study(&config, Some("CS.reorder")).unwrap();
    assert!(
        results.benchmarks.len() >= 3,
        "the CS.reorder filter should select several benchmarks"
    );

    let lines = recorder.lines();
    assert!(!lines.is_empty());
    let mut kinds = std::collections::BTreeSet::new();
    for line in &lines {
        validate_trace_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        let kind_field = line
            .split("\"type\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap()
            .to_string();
        kinds.insert(kind_field);
    }
    for required in [
        "study_start",
        "study_finish",
        "benchmark_start",
        "benchmark_finish",
        "race_phase",
        "technique_start",
        "technique_finish",
        "bound_level",
        "progress",
        "cache_summary",
        "bug_found",
    ] {
        assert!(kinds.contains(required), "no {required} event in {kinds:?}");
    }
    // Steal activity: idle transitions always happen when two workers share
    // a frontier; donations/thefts depend on tree shape, so any of the three
    // proves the family is wired.
    assert!(
        ["worker_idle", "steal_donate", "steal_theft"]
            .iter()
            .any(|k| kinds.contains(*k)),
        "no steal-family event in {kinds:?}"
    );
}

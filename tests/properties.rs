//! Property-based tests over the core invariants of the schedule-bounding
//! machinery, driven by randomly generated small concurrent programs.
//!
//! The generators are hand-rolled on the workspace's deterministic `rand`
//! shim rather than proptest (unavailable offline): every test enumerates a
//! fixed number of cases from per-case seeds, so failures are reproducible
//! by seed and the suite's cost is bounded.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sct::prelude::*;
use sct::runtime::Execution;
use sct_runtime::NoopObserver;

const CASES: u64 = 48;

/// A tiny vocabulary of thread-body actions from which random programs are
/// generated. Every action terminates, so generated programs always have a
/// finite schedule space.
#[derive(Debug, Clone)]
enum Action {
    StoreVar(usize, i64),
    LoadVar(usize),
    LockUnlock(usize),
    FetchAdd(usize, i64),
    Yield,
}

#[derive(Debug, Clone)]
struct RandomProgram {
    vars: usize,
    mutexes: usize,
    threads: Vec<Vec<Action>>,
}

fn gen_action(rng: &mut SmallRng, vars: usize, mutexes: usize) -> Action {
    match rng.gen_range(0..5usize) {
        0 => Action::StoreVar(rng.gen_range(0..vars), rng.gen_range(-3i64..4)),
        1 => Action::LoadVar(rng.gen_range(0..vars)),
        2 => Action::LockUnlock(rng.gen_range(0..mutexes)),
        3 => Action::FetchAdd(rng.gen_range(0..vars), rng.gen_range(1i64..3)),
        _ => Action::Yield,
    }
}

/// Generate a small random program shape: 2-3 vars, 1-2 mutexes, 1-3 threads
/// of 1-3 actions each (the same envelope the proptest strategies used).
fn gen_program(case: u64) -> RandomProgram {
    let mut rng = SmallRng::seed_from_u64(0x9e3779b9_u64.wrapping_mul(case + 1));
    let vars = rng.gen_range(2..4usize);
    let mutexes = rng.gen_range(1..3usize);
    let n_threads = rng.gen_range(1..4usize);
    let threads = (0..n_threads)
        .map(|_| {
            let len = rng.gen_range(1..4usize);
            (0..len)
                .map(|_| gen_action(&mut rng, vars, mutexes))
                .collect()
        })
        .collect();
    RandomProgram {
        vars,
        mutexes,
        threads,
    }
}

fn build(rp: &RandomProgram) -> sct::ir::Program {
    let mut p = ProgramBuilder::new("random-program");
    let vars: Vec<_> = (0..rp.vars).map(|i| p.global(format!("v{i}"), 0)).collect();
    let mutexes: Vec<_> = (0..rp.mutexes).map(|i| p.mutex(format!("m{i}"))).collect();
    let mut templates = Vec::new();
    for (ti, actions) in rp.threads.iter().enumerate() {
        let actions = actions.clone();
        let vars = vars.clone();
        let mutexes = mutexes.clone();
        let t = p.thread(format!("t{ti}"), move |b| {
            let scratch = b.local("scratch");
            for a in &actions {
                match a {
                    Action::StoreVar(v, c) => b.store(vars[*v], *c),
                    Action::LoadVar(v) => b.load(vars[*v], scratch),
                    Action::LockUnlock(m) => {
                        b.lock(mutexes[*m]);
                        b.unlock(mutexes[*m]);
                    }
                    Action::FetchAdd(v, c) => b.fetch_add(vars[*v], *c),
                    Action::Yield => b.yield_(),
                }
            }
        });
        templates.push(t);
    }
    p.main(move |b| {
        for &t in &templates {
            b.spawn(t);
        }
    });
    p.build().expect("random program builds")
}

/// For every executed schedule, the delay count dominates the preemption
/// count (the set of schedules with ≤ c delays is a subset of those with
/// ≤ c preemptions, §2 of the paper).
#[test]
fn delay_count_dominates_preemption_count() {
    for case in 0..CASES {
        let rp = gen_program(case);
        let program = build(&rp);
        let config = ExecConfig::all_visible();
        let seed = case * 7 + 1;
        let stats = explore::run_technique(
            &program,
            &config,
            Technique::Random { seed },
            &ExploreLimits::with_schedule_limit(5),
        );
        assert!(stats.schedules >= 1, "case {case}: no schedules explored");
        // Re-run one random execution directly to inspect the outcome.
        let mut rng_seed = seed;
        let outcome = sct::runtime::run_once(&program, &config, |point| {
            // xorshift-style cheap deterministic choice
            rng_seed = rng_seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let idx = (rng_seed >> 33) as usize % point.enabled.len();
            point.enabled[idx]
        });
        assert!(
            outcome.delay_count() >= outcome.preemption_count(),
            "case {case}: DC {} < PC {} ({rp:?})",
            outcome.delay_count(),
            outcome.preemption_count()
        );
        assert!(
            outcome.context_switches() >= outcome.preemption_count(),
            "case {case}: switches < preemptions"
        );
    }
}

/// Replaying a recorded schedule reproduces the identical final state.
#[test]
fn replay_is_deterministic() {
    for case in 0..CASES {
        let rp = gen_program(case);
        let program = build(&rp);
        let config = ExecConfig::all_visible();
        let mut rng_seed = case * 13 + 5;
        let first = sct::runtime::run_once(&program, &config, |point| {
            rng_seed = rng_seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let idx = (rng_seed >> 33) as usize % point.enabled.len();
            point.enabled[idx]
        });
        let schedule = first.schedule();
        let mut cursor = 0usize;
        let replay = sct::runtime::run_once(&program, &config, |point| {
            let choice = schedule
                .get(cursor)
                .copied()
                .unwrap_or_else(|| point.round_robin_choice());
            cursor += 1;
            if point.is_enabled(choice) {
                choice
            } else {
                point.round_robin_choice()
            }
        });
        assert_eq!(first.fingerprint, replay.fingerprint, "case {case}: {rp:?}");
        assert_eq!(first.schedule(), replay.schedule(), "case {case}");
        assert_eq!(first.is_buggy(), replay.is_buggy(), "case {case}");
    }
}

/// Bounded DFS never explores the same terminal schedule twice, and the
/// number of schedules within a bound grows monotonically with the bound.
#[test]
fn bounded_search_is_nonredundant_and_monotone() {
    for case in 0..CASES {
        let rp = gen_program(case);
        let program = build(&rp);
        let config = ExecConfig::all_visible();
        let limits = ExploreLimits::with_schedule_limit(3_000);

        let mut seen = std::collections::HashSet::new();
        let mut scheduler = BoundedDfs::new(BoundKind::Delay.policy(), 2);
        let mut duplicates = 0;
        let mut exec = Execution::new_shared(&program, &config);
        while seen.len() < 3_000 && scheduler.begin_execution() {
            exec.reset();
            let outcome = exec.run(&mut |p| scheduler.choose(p), &mut NoopObserver);
            scheduler.end_execution(&outcome);
            let key: Vec<usize> = outcome.schedule().iter().map(|t| t.index()).collect();
            if !seen.insert(key) {
                duplicates += 1;
            }
        }
        assert_eq!(
            duplicates, 0,
            "case {case}: bounded DFS revisited a terminal schedule"
        );

        let mut previous = 0;
        for bound in 0..3u32 {
            let stats = explore::bounded_dfs(&program, &config, BoundKind::Delay, bound, &limits);
            assert!(
                stats.schedules >= previous,
                "case {case}: schedules at bound {} ({}) < previous bound ({})",
                bound,
                stats.schedules,
                previous
            );
            previous = stats.schedules;
        }
    }
}

/// The round-robin (deterministic scheduler) execution has zero delays
/// and zero preemptions, and it is exactly the first schedule every
/// systematic technique explores.
#[test]
fn round_robin_schedule_costs_nothing() {
    for case in 0..CASES {
        let rp = gen_program(case);
        let program = build(&rp);
        let config = ExecConfig::all_visible();
        let outcome = sct::runtime::run_once(&program, &config, |p| p.round_robin_choice());
        assert_eq!(outcome.delay_count(), 0, "case {case}: {rp:?}");
        assert_eq!(outcome.preemption_count(), 0, "case {case}");

        let db0 = explore::bounded_dfs(
            &program,
            &config,
            BoundKind::Delay,
            0,
            &ExploreLimits::with_schedule_limit(100),
        );
        assert_eq!(
            db0.schedules, 1,
            "case {case}: delay bound 0 admits exactly the deterministic schedule"
        );
    }
}

/// Generated programs are data-race-free exactly when every shared
/// variable is only touched through atomics or under a single mutex; at
/// minimum, the detector must never report a race for programs whose
/// threads touch disjoint variables.
#[test]
fn race_detector_ignores_disjoint_accesses() {
    for n_threads in 1usize..4 {
        let mut p = ProgramBuilder::new("disjoint");
        let vars: Vec<_> = (0..n_threads)
            .map(|i| p.global(format!("v{i}"), 0))
            .collect();
        let mut templates = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            templates.push(p.thread(format!("t{i}"), move |b| {
                let r = b.local("r");
                b.store(v, 1);
                b.load(v, r);
            }));
        }
        p.main(move |b| {
            for &t in &templates {
                b.spawn(t);
            }
        });
        let program = p.build().unwrap();
        let report = sct::race::race_detection_phase(
            &program,
            &sct::race::RacePhaseConfig {
                runs: 3,
                seed: 9,
                ..Default::default()
            },
        );
        assert!(report.is_race_free(), "{n_threads} threads: {report:?}");
    }
}

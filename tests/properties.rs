//! Property-based tests over the core invariants of the schedule-bounding
//! machinery, driven by randomly generated small concurrent programs.

use proptest::prelude::*;
use sct::prelude::*;
use sct::runtime::Execution;
use sct_runtime::NoopObserver;

/// A tiny vocabulary of thread-body actions from which random programs are
/// generated. Every action terminates, so generated programs always have a
/// finite schedule space.
#[derive(Debug, Clone)]
enum Action {
    StoreVar(usize, i64),
    LoadVar(usize),
    LockUnlock(usize),
    FetchAdd(usize, i64),
    Yield,
}

fn action_strategy(vars: usize, mutexes: usize) -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..vars, -3i64..4).prop_map(|(v, c)| Action::StoreVar(v, c)),
        (0..vars).prop_map(Action::LoadVar),
        (0..mutexes).prop_map(Action::LockUnlock),
        (0..vars, 1i64..3).prop_map(|(v, c)| Action::FetchAdd(v, c)),
        Just(Action::Yield),
    ]
}

#[derive(Debug, Clone)]
struct RandomProgram {
    vars: usize,
    mutexes: usize,
    threads: Vec<Vec<Action>>,
}

fn program_strategy() -> impl Strategy<Value = RandomProgram> {
    (2usize..=3, 1usize..=2).prop_flat_map(|(vars, mutexes)| {
        let thread = proptest::collection::vec(action_strategy(vars, mutexes), 1..4);
        proptest::collection::vec(thread, 1..=3).prop_map(move |threads| RandomProgram {
            vars,
            mutexes,
            threads,
        })
    })
}

fn build(rp: &RandomProgram) -> sct::ir::Program {
    let mut p = ProgramBuilder::new("random-program");
    let vars: Vec<_> = (0..rp.vars).map(|i| p.global(format!("v{i}"), 0)).collect();
    let mutexes: Vec<_> = (0..rp.mutexes).map(|i| p.mutex(format!("m{i}"))).collect();
    let mut templates = Vec::new();
    for (ti, actions) in rp.threads.iter().enumerate() {
        let actions = actions.clone();
        let vars = vars.clone();
        let mutexes = mutexes.clone();
        let t = p.thread(format!("t{ti}"), move |b| {
            let scratch = b.local("scratch");
            for a in &actions {
                match a {
                    Action::StoreVar(v, c) => b.store(vars[*v], *c),
                    Action::LoadVar(v) => b.load(vars[*v], scratch),
                    Action::LockUnlock(m) => {
                        b.lock(mutexes[*m]);
                        b.unlock(mutexes[*m]);
                    }
                    Action::FetchAdd(v, c) => b.fetch_add(vars[*v], *c),
                    Action::Yield => b.yield_(),
                }
            }
        });
        templates.push(t);
    }
    p.main(move |b| {
        for &t in &templates {
            b.spawn(t);
        }
    });
    p.build().expect("random program builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every executed schedule, the delay count dominates the preemption
    /// count (the set of schedules with ≤ c delays is a subset of those with
    /// ≤ c preemptions, §2 of the paper).
    #[test]
    fn delay_count_dominates_preemption_count(rp in program_strategy(), seed in 0u64..1000) {
        let program = build(&rp);
        let config = ExecConfig::all_visible();
        let stats = explore::run_technique(
            &program,
            &config,
            Technique::Random { seed },
            &ExploreLimits::with_schedule_limit(5),
        );
        prop_assert!(stats.schedules >= 1);
        // Re-run one random execution directly to inspect the outcome.
        let mut rng_seed = seed;
        let outcome = sct::runtime::run_once(&program, &config, |point| {
            // xorshift-style cheap deterministic choice
            rng_seed = rng_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (rng_seed >> 33) as usize % point.enabled.len();
            point.enabled[idx]
        });
        prop_assert!(outcome.delay_count() >= outcome.preemption_count());
        prop_assert!(outcome.context_switches() >= outcome.preemption_count());
    }

    /// Replaying a recorded schedule reproduces the identical final state.
    #[test]
    fn replay_is_deterministic(rp in program_strategy(), seed in 0u64..1000) {
        let program = build(&rp);
        let config = ExecConfig::all_visible();
        let mut rng_seed = seed;
        let first = sct::runtime::run_once(&program, &config, |point| {
            rng_seed = rng_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (rng_seed >> 33) as usize % point.enabled.len();
            point.enabled[idx]
        });
        let schedule = first.schedule();
        let mut cursor = 0usize;
        let replay = sct::runtime::run_once(&program, &config, |point| {
            let choice = schedule.get(cursor).copied().unwrap_or_else(|| point.round_robin_choice());
            cursor += 1;
            if point.is_enabled(choice) { choice } else { point.round_robin_choice() }
        });
        prop_assert_eq!(first.fingerprint, replay.fingerprint);
        prop_assert_eq!(first.schedule(), replay.schedule());
        prop_assert_eq!(first.is_buggy(), replay.is_buggy());
    }

    /// Bounded DFS never explores the same terminal schedule twice, and the
    /// number of schedules within a bound grows monotonically with the bound.
    #[test]
    fn bounded_search_is_nonredundant_and_monotone(rp in program_strategy()) {
        let program = build(&rp);
        let config = ExecConfig::all_visible();
        let limits = ExploreLimits::with_schedule_limit(3_000);

        let mut seen = std::collections::HashSet::new();
        let mut scheduler = BoundedDfs::new(BoundKind::Delay.policy(), 2);
        let mut duplicates = 0;
        while seen.len() < 3_000 && scheduler.begin_execution() {
            let mut exec = Execution::new(&program, config.clone());
            let outcome = exec.run(&mut |p| scheduler.choose(p), &mut NoopObserver);
            scheduler.end_execution(&outcome);
            let key: Vec<usize> = outcome.schedule().iter().map(|t| t.index()).collect();
            if !seen.insert(key) {
                duplicates += 1;
            }
        }
        prop_assert_eq!(duplicates, 0, "bounded DFS revisited a terminal schedule");

        let mut previous = 0;
        for bound in 0..3u32 {
            let stats = explore::bounded_dfs(&program, &config, BoundKind::Delay, bound, &limits);
            prop_assert!(stats.schedules >= previous,
                "schedules at bound {} ({}) < schedules at bound {} ({})",
                bound, stats.schedules, bound.saturating_sub(1), previous);
            previous = stats.schedules;
        }
    }

    /// The round-robin (deterministic scheduler) execution has zero delays
    /// and zero preemptions, and it is exactly the first schedule every
    /// systematic technique explores.
    #[test]
    fn round_robin_schedule_costs_nothing(rp in program_strategy()) {
        let program = build(&rp);
        let config = ExecConfig::all_visible();
        let outcome = sct::runtime::run_once(&program, &config, |p| p.round_robin_choice());
        prop_assert_eq!(outcome.delay_count(), 0);
        prop_assert_eq!(outcome.preemption_count(), 0);

        let db0 = explore::bounded_dfs(&program, &config, BoundKind::Delay, 0, &ExploreLimits::with_schedule_limit(100));
        prop_assert_eq!(db0.schedules, 1, "delay bound 0 admits exactly the deterministic schedule");
    }

    /// Generated programs are data-race-free exactly when every shared
    /// variable is only touched through atomics or under a single mutex; at
    /// minimum, the detector must never report a race for programs whose
    /// threads touch disjoint variables.
    #[test]
    fn race_detector_ignores_disjoint_accesses(n_threads in 1usize..4) {
        let mut p = ProgramBuilder::new("disjoint");
        let vars: Vec<_> = (0..n_threads).map(|i| p.global(format!("v{i}"), 0)).collect();
        let mut templates = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            templates.push(p.thread(format!("t{i}"), move |b| {
                let r = b.local("r");
                b.store(v, 1);
                b.load(v, r);
            }));
        }
        p.main(move |b| {
            for &t in &templates {
                b.spawn(t);
            }
        });
        let program = p.build().unwrap();
        let report = sct::race::race_detection_phase(
            &program,
            &sct::race::RacePhaseConfig { runs: 3, seed: 9, ..Default::default() },
        );
        prop_assert!(report.is_race_free());
    }
}

//! # sct — systematic concurrency testing with schedule bounding
//!
//! A Rust reproduction of the system behind *"Concurrency Testing Using
//! Schedule Bounding: an Empirical Study"* (Thomson, Donaldson, Betts,
//! PPoPP 2014): a controlled-concurrency runtime, the schedule-bounding
//! search techniques the paper compares (iterative preemption bounding,
//! iterative delay bounding, unbounded DFS, a naive random scheduler, PCT and
//! a Maple-style idiom-driven scheduler), a vector-clock data-race detector,
//! a Rust port of the 52-benchmark **SCTBench** suite, and the experiment
//! harness that regenerates the paper's tables and figures.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names so downstream users can depend on a single crate.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ir`] | `sct-ir` | the program IR and builder DSL |
//! | [`analysis`] | `sct-analysis` | static lockset/lock-order analysis, race candidates and lints |
//! | [`runtime`] | `sct-runtime` | the deterministic controlled-execution engine |
//! | [`race`] | `sct-race` | vector clocks, the FastTrack-style detector, the race-detection phase |
//! | [`core`] | `sct-core` | schedulers, schedule bounding, exploration drivers, statistics and the telemetry event stream |
//! | [`mod@bench`] | `sctbench` | the 52 SCTBench benchmarks and their registry |
//! | [`harness`] | `sct-harness` | the study pipeline, tables and figures |
//! | [`threads`] | `sct-threads` | a loom-style closure/OS-thread frontend driven by the same schedulers |
//!
//! ## Quick start
//!
//! ```
//! use sct::prelude::*;
//!
//! // Build the paper's Figure 1 program.
//! let mut p = ProgramBuilder::new("figure1");
//! let x = p.global("x", 0);
//! let y = p.global("y", 0);
//! let t1 = p.thread("t1", |b| { b.store(x, 1); b.store(y, 1); });
//! let t3 = p.thread("t3", |b| {
//!     let rx = b.local("rx");
//!     let ry = b.local("ry");
//!     b.load(x, rx);
//!     b.load(y, ry);
//!     b.assert_cond(eq(rx, ry), "x == y");
//! });
//! p.main(|b| { b.spawn(t1); b.spawn(t3); });
//! let program = p.build().unwrap();
//!
//! // Explore it with iterative delay bounding.
//! let stats = iterative_bounding(
//!     &program,
//!     &ExecConfig::all_visible(),
//!     BoundKind::Delay,
//!     &ExploreLimits::with_schedule_limit(1_000),
//! );
//! assert!(stats.found_bug());
//! assert_eq!(stats.bound_of_first_bug, Some(1)); // one delay suffices
//! ```

/// The program intermediate representation and builder DSL (`sct-ir`).
pub mod ir {
    pub use sct_ir::*;
}

/// Static lockset and lock-order analysis over the IR (`sct-analysis`).
pub mod analysis {
    pub use sct_analysis::*;
}

/// The controlled, deterministic execution runtime (`sct-runtime`).
pub mod runtime {
    pub use sct_runtime::*;
}

/// Dynamic data-race detection and the race-detection phase (`sct-race`).
pub mod race {
    pub use sct_race::*;
}

/// Schedulers, schedule bounding and exploration drivers (`sct-core`).
pub mod core {
    pub use sct_core::*;
}

/// The SCTBench benchmark suite (`sctbench`).
pub mod bench {
    pub use sctbench::*;
}

/// The experiment harness: study pipeline, tables and figures (`sct-harness`).
pub mod harness {
    pub use sct_harness::*;
}

/// The loom-style closure frontend (`sct-threads`).
pub mod threads {
    pub use sct_threads::*;
}

/// One-stop imports for writing and exploring test programs.
pub mod prelude {
    pub use sct_core::prelude::*;
    pub use sct_ir::prelude::*;
    pub use sct_runtime::{
        Bug, ExecConfig, ExecutionOutcome, SchedulingPoint, ThreadId, VisibilityMode,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_modules_are_wired_to_the_right_crates() {
        // A couple of spot checks that the re-exports resolve.
        let benchmarks = crate::bench::all_benchmarks();
        assert_eq!(benchmarks.len(), 52);
        let _cfg = crate::runtime::ExecConfig::all_visible();
        let _limits = crate::core::ExploreLimits::with_schedule_limit(10);
        assert!(!crate::core::Telemetry::off().is_on());
        let report = crate::analysis::analyze(&benchmarks[0].program());
        assert_eq!(report.name, benchmarks[0].name);
    }
}

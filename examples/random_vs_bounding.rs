//! The paper's most surprising finding, reproduced in miniature: on the
//! SCTBench benchmarks a naive random scheduler finds bugs about as well as
//! (and usually faster than) iterative schedule bounding. This example runs
//! both on a cross-section of the suite and prints schedules-to-first-bug
//! side by side.
//!
//! ```text
//! cargo run --release --example random_vs_bounding
//! ```

use sct::bench::benchmark_by_name;
use sct::prelude::*;

fn main() {
    let names = [
        "CS.account_bad",
        "CS.bluetooth_driver_bad",
        "CS.reorder_4_bad",
        "CS.stack_bad",
        "CS.twostage_bad",
        "CS.wronglock_3_bad",
        "chess.WSQ",
        "inspect.qsort_mt",
        "splash2.lu",
        "misc.ctrace-test",
    ];
    let limits = ExploreLimits::with_schedule_limit(5_000);
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "benchmark", "IDB", "IPB", "Rand"
    );
    let mut idb_wins = 0u32;
    let mut rand_wins = 0u32;
    for name in names {
        let program = benchmark_by_name(name).expect("known benchmark").program();
        let config = ExecConfig::all_visible();
        let idb = iterative_bounding(&program, &config, BoundKind::Delay, &limits);
        let ipb = iterative_bounding(&program, &config, BoundKind::Preemption, &limits);
        let rand =
            explore::run_technique(&program, &config, Technique::Random { seed: 3 }, &limits);
        let show = |s: &ExplorationStats| {
            s.schedules_to_first_bug
                .map(|n| n.to_string())
                .unwrap_or_else(|| format!(">{}", s.schedules))
        };
        println!(
            "{:<26} {:>12} {:>12} {:>12}",
            name,
            show(&idb),
            show(&ipb),
            show(&rand)
        );
        match (idb.schedules_to_first_bug, rand.schedules_to_first_bug) {
            (Some(a), Some(b)) if a < b => idb_wins += 1,
            (Some(_), None) => idb_wins += 1,
            (Some(a), Some(b)) if b < a => rand_wins += 1,
            (None, Some(_)) => rand_wins += 1,
            _ => {}
        }
    }
    println!("\nfaster to the first bug: IDB {idb_wins} benchmarks, Rand {rand_wins} benchmarks");
    println!(
        "(the paper reports Rand being as good as or faster than IDB on almost all of SCTBench)"
    );
}

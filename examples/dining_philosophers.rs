//! Deadlock hunting: the dining-philosophers benchmarks from the CS suite.
//! Shows how the techniques compare on a classic deadlock as the number of
//! philosophers grows, and prints the schedule that triggers it.
//!
//! ```text
//! cargo run --example dining_philosophers
//! ```

use sct::bench::benchmark_by_name;
use sct::prelude::*;

fn main() {
    for name in [
        "CS.din_phil2_sat",
        "CS.din_phil3_sat",
        "CS.din_phil4_sat",
        "CS.din_phil5_sat",
    ] {
        let spec = benchmark_by_name(name).expect("benchmark exists");
        let program = spec.program();
        let config = ExecConfig::all_visible();
        let limits = ExploreLimits::with_schedule_limit(2_000);

        let idb = iterative_bounding(&program, &config, BoundKind::Delay, &limits);
        let rand =
            explore::run_technique(&program, &config, Technique::Random { seed: 7 }, &limits);

        println!("{name}:");
        println!(
            "  IDB : bug at delay bound {:?} after {:?} schedules ({})",
            idb.bound_of_first_bug,
            idb.schedules_to_first_bug,
            idb.first_bug.as_ref().map(|b| b.kind()).unwrap_or("no bug")
        );
        println!(
            "  Rand: bug after {:?} of {} random schedules ({:.0}% of schedules were buggy)",
            rand.schedules_to_first_bug,
            rand.schedules,
            rand.buggy_fraction() * 100.0
        );
    }

    // Reproduce one deadlocking schedule and print it step by step.
    let program = benchmark_by_name("CS.din_phil3_sat").unwrap().program();
    let outcome = sct::runtime::run_once(&program, &ExecConfig::all_visible(), |point| {
        point.round_robin_choice()
    });
    println!(
        "\nround-robin schedule of CS.din_phil3_sat ({} steps):",
        outcome.steps.len()
    );
    let schedule: Vec<String> = outcome.schedule().iter().map(|t| t.to_string()).collect();
    println!("  {}", schedule.join(" "));
    println!(
        "  outcome: {}",
        outcome
            .bug
            .map(|b| b.to_string())
            .unwrap_or_else(|| "no bug".into())
    );
}

//! The CHESS work-stealing queue: the benchmark family that motivated
//! preemption bounding. Compares how quickly each technique finds the
//! owner/thief double-take race, and demonstrates the race-detection phase
//! that the study runs before systematic exploration.
//!
//! ```text
//! cargo run --release --example work_stealing
//! ```

use sct::bench::chess;
use sct::prelude::*;
use sct::race::{race_detection_phase, RacePhaseConfig};

fn main() {
    let program = chess::wsq();
    println!("benchmark: {}", program.name);

    // Phase 1: dynamic race detection (10 uncontrolled runs), as in §5 of the
    // paper. Racy locations are promoted to visible operations.
    let report = race_detection_phase(&program, &RacePhaseConfig::default());
    println!(
        "race-detection phase: {} distinct races over {} locations",
        report.races.len(),
        report.racy_locations().len()
    );
    let config = ExecConfig::with_racy_locations(report.racy_locations());

    // Phase 2: the techniques.
    let limits = ExploreLimits::with_schedule_limit(10_000);
    for technique in [
        Technique::IterativePreemptionBounding,
        Technique::IterativeDelayBounding,
        Technique::Dfs,
        Technique::Random { seed: 1 },
        Technique::Pct { depth: 3, seed: 1 },
    ] {
        let stats = explore::run_technique(&program, &config, technique, &limits);
        println!(
            "{:<9} schedules-to-bug {:>6} total {:>6} buggy {:>5} bound {:?}",
            stats.technique,
            stats
                .schedules_to_first_bug
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            stats.schedules,
            stats.buggy_schedules,
            stats.bound_of_first_bug,
        );
    }

    // The lock-free variants are harder; show the schedule counts growing.
    for program in [chess::iwsq(), chess::iwsqws(), chess::swsq()] {
        let stats = iterative_bounding(
            &program,
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            &ExploreLimits::with_schedule_limit(10_000),
        );
        println!(
            "{:<14} IDB: bound {:?}, {} schedules, found: {}",
            program.name,
            stats.bound_of_first_bug.or(stats.final_bound),
            stats.schedules,
            stats.found_bug()
        );
    }
}

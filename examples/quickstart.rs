//! Quickstart: build the paper's Figure 1 program, explore it with the
//! techniques from the study and print what each one finds.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sct::prelude::*;
use sct::runtime::run_once;

fn figure1() -> sct::ir::Program {
    let mut p = ProgramBuilder::new("figure1");
    let x = p.global("x", 0);
    let y = p.global("y", 0);
    let z = p.global("z", 0);
    let t1 = p.thread("T1", |b| {
        b.store(x, 1);
        b.store(y, 1);
    });
    let t2 = p.thread("T2", |b| {
        b.store(z, 1);
    });
    let t3 = p.thread("T3", |b| {
        let rx = b.local("rx");
        let ry = b.local("ry");
        b.load(x, rx);
        b.load(y, ry);
        b.assert_cond(eq(rx, ry), "x == y");
    });
    p.main(|b| {
        b.spawn(t1);
        b.spawn(t2);
        b.spawn(t3);
    });
    p.build().expect("figure1 builds")
}

fn main() {
    let program = figure1();
    println!("{}", sct::ir::pretty::program_to_string(&program));

    let config = ExecConfig::all_visible();

    // 1. A single execution under the deterministic round-robin scheduler:
    //    this is the one schedule every systematic technique explores first.
    let outcome = run_once(&program, &config, |point| point.round_robin_choice());
    println!(
        "round-robin schedule: {} steps, bug: {:?}",
        outcome.steps.len(),
        outcome.bug
    );

    // 2. The study's techniques, with a small schedule limit.
    let limits = ExploreLimits::with_schedule_limit(1_000);
    for technique in [
        Technique::IterativePreemptionBounding,
        Technique::IterativeDelayBounding,
        Technique::Dfs,
        Technique::Random { seed: 42 },
        Technique::MapleLike {
            profiling_runs: 10,
            seed: 42,
        },
    ] {
        let stats = explore::run_technique(&program, &config, technique, &limits);
        match stats.schedules_to_first_bug {
            Some(n) => println!(
                "{:<9} found `{}` after {} schedules (bound {:?})",
                stats.technique,
                stats
                    .first_bug
                    .as_ref()
                    .map(|b| b.to_string())
                    .unwrap_or_default(),
                n,
                stats.bound_of_first_bug
            ),
            None => println!(
                "{:<9} explored {} schedules without finding the bug",
                stats.technique, stats.schedules
            ),
        }
    }

    // 3. The headline fact of Example 1/2 in the paper: one preemption (or
    //    one delay) is both necessary and sufficient for the assertion to
    //    fail, and delay bounding explores fewer schedules at that bound.
    let pb1 = explore::bounded_dfs(&program, &config, BoundKind::Preemption, 1, &limits);
    let db1 = explore::bounded_dfs(&program, &config, BoundKind::Delay, 1, &limits);
    println!(
        "preemption bound 1: {} schedules; delay bound 1: {} schedules (both find the bug: {}/{})",
        pb1.schedules,
        db1.schedules,
        pb1.found_bug(),
        db1.found_bug()
    );
}

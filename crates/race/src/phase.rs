//! The race-detection phase of the study's experimental method.
//!
//! Each benchmark is executed `runs` times (ten in the paper) under a random
//! scheduler with every shared access treated as a visible operation, and a
//! happens-before race detector attached. The union of racy locations across
//! runs is the set promoted to visible operations for the systematic phases.

use crate::detector::{RaceDetector, RaceReport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sct_ir::Program;
use sct_runtime::{ExecConfig, Execution, SchedulingPoint};
use std::time::Instant;

/// Configuration of the race-detection phase.
#[derive(Debug, Clone)]
pub struct RacePhaseConfig {
    /// Number of random executions (the paper uses 10).
    pub runs: usize,
    /// Seed for the random scheduler.
    pub seed: u64,
    /// Per-execution step limit.
    pub max_steps: usize,
}

impl Default for RacePhaseConfig {
    fn default() -> Self {
        RacePhaseConfig {
            runs: 10,
            seed: 0x5c7b_e4c1,
            max_steps: 20_000,
        }
    }
}

/// Run the race-detection phase for `program` and return the aggregated
/// report. The racy locations of the report are what the harness passes to
/// [`sct_runtime::ExecConfig::with_racy_locations`].
pub fn race_detection_phase(program: &Program, config: &RacePhaseConfig) -> RaceReport {
    let started = Instant::now();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut merged = RaceReport::default();
    let exec_config = ExecConfig {
        max_steps: config.max_steps,
        ..ExecConfig::all_visible()
    };
    // One execution for all runs; `reset` rewinds it in place per run.
    let mut exec = Execution::new_shared(program, &exec_config);
    for _ in 0..config.runs {
        let mut detector = RaceDetector::new();
        exec.reset();
        let _ = exec.run(
            &mut |p: &SchedulingPoint| {
                let idx = rng.gen_range(0..p.enabled.len());
                p.enabled[idx]
            },
            &mut detector,
        );
        merged.merge(&detector.into_report());
    }
    // The whole-phase stamp overwrites the per-run sums: callers want the
    // phase's wall time, loop overhead included.
    merged.nanos = started.elapsed().as_nanos() as u64;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::prelude::*;

    fn racy_flag_program() -> Program {
        let mut p = ProgramBuilder::new("racy-flag");
        let flag = p.global("flag", 0);
        let data = p.global("data", 0);
        let producer = p.thread("producer", |b| {
            b.store(data, 42);
            b.store(flag, 1);
        });
        let consumer = p.thread("consumer", |b| {
            let f = b.local("f");
            let d = b.local("d");
            b.load(flag, f);
            b.if_(eq(f, 1), |b| {
                b.load(data, d);
            });
        });
        p.main(|b| {
            b.spawn(producer);
            b.spawn(consumer);
        });
        p.build().unwrap()
    }

    #[test]
    fn phase_finds_races_on_unsynchronised_flags() {
        let prog = racy_flag_program();
        let report = race_detection_phase(&prog, &RacePhaseConfig::default());
        assert!(!report.is_race_free());
        assert_eq!(report.executions, 10);
        // The flag itself is racy; it must appear in the promoted set.
        assert!(!report.racy_locations().is_empty());
    }

    #[test]
    fn phase_is_deterministic_for_a_fixed_seed() {
        let prog = racy_flag_program();
        let cfg = RacePhaseConfig {
            runs: 5,
            seed: 7,
            ..Default::default()
        };
        let a = race_detection_phase(&prog, &cfg);
        let b = race_detection_phase(&prog, &cfg);
        assert_eq!(a.races, b.races);
    }

    #[test]
    fn phase_reports_nothing_for_well_synchronised_programs() {
        let mut p = ProgramBuilder::new("clean");
        let x = p.global("x", 0);
        let m = p.mutex("m");
        let t = p.thread("t", |b| {
            let r = b.local("r");
            b.lock(m);
            b.load(x, r);
            b.store(x, add(r, 1));
            b.unlock(m);
        });
        p.main(|b| {
            b.spawn(t);
            b.spawn(t);
        });
        let prog = p.build().unwrap();
        let report = race_detection_phase(&prog, &RacePhaseConfig::default());
        assert!(report.is_race_free(), "unexpected: {:?}", report.races);
    }
}

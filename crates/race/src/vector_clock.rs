//! Vector clocks over dynamically created threads.

use std::cmp::Ordering;

/// A vector clock: component `i` is the number of increments observed from
/// thread `i`. Clocks grow on demand as threads are created, so comparing
/// clocks of different lengths treats missing components as zero.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock {
    components: Vec<u32>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// Component for `thread` (zero when never incremented).
    pub fn get(&self, thread: usize) -> u32 {
        self.components.get(thread).copied().unwrap_or(0)
    }

    /// Set component `thread` to `value`, growing the clock as needed.
    pub fn set(&mut self, thread: usize, value: u32) {
        if self.components.len() <= thread {
            self.components.resize(thread + 1, 0);
        }
        self.components[thread] = value;
    }

    /// Increment the component of `thread` and return the new value.
    pub fn increment(&mut self, thread: usize) -> u32 {
        let v = self.get(thread) + 1;
        self.set(thread, v);
        v
    }

    /// Pointwise maximum with `other` (the join operation).
    pub fn join(&mut self, other: &VectorClock) {
        if self.components.len() < other.components.len() {
            self.components.resize(other.components.len(), 0);
        }
        for (i, &v) in other.components.iter().enumerate() {
            if self.components[i] < v {
                self.components[i] = v;
            }
        }
    }

    /// True when every component of `self` is ≤ the corresponding component
    /// of `other`: the event summarised by `self` happens-before (or equals)
    /// the one summarised by `other`.
    pub fn le(&self, other: &VectorClock) -> bool {
        let n = self.components.len().max(other.components.len());
        (0..n).all(|i| self.get(i) <= other.get(i))
    }

    /// Partial-order comparison of clocks: `None` when the clocks are
    /// concurrent (incomparable).
    pub fn partial_cmp_clock(&self, other: &VectorClock) -> Option<Ordering> {
        let le = self.le(other);
        let ge = other.le(self);
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// Number of components stored (highest thread id seen plus one).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when no component has ever been set.
    pub fn is_empty(&self) -> bool {
        self.components.iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_of_missing_component_is_zero() {
        let c = VectorClock::new();
        assert_eq!(c.get(5), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn increment_and_set_grow_the_clock() {
        let mut c = VectorClock::new();
        assert_eq!(c.increment(2), 1);
        assert_eq!(c.increment(2), 2);
        c.set(0, 7);
        assert_eq!(c.get(0), 7);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.get(2), 2);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(1, 1);
        let mut b = VectorClock::new();
        b.set(1, 5);
        b.set(2, 2);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 2);
    }

    #[test]
    fn ordering_detects_concurrency() {
        let mut a = VectorClock::new();
        a.set(0, 2);
        let mut b = VectorClock::new();
        b.set(1, 3);
        assert_eq!(a.partial_cmp_clock(&b), None);
        let mut c = a.clone();
        c.set(1, 4);
        assert_eq!(a.partial_cmp_clock(&c), Some(Ordering::Less));
        assert_eq!(c.partial_cmp_clock(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_clock(&a.clone()), Some(Ordering::Equal));
        assert!(a.le(&c));
        assert!(!c.le(&a));
    }

    #[test]
    fn le_handles_different_lengths() {
        let mut a = VectorClock::new();
        a.set(0, 1);
        let b = VectorClock::new();
        assert!(b.le(&a));
        assert!(!a.le(&b));
    }
}

//! # sct-race
//!
//! Dynamic data-race detection for controlled executions, plus the
//! *race-detection phase* of the PPoPP'14 study's experimental method (§5):
//! before systematic exploration, each benchmark is executed a number of
//! times under an uncontrolled (random) scheduler with a vector-clock race
//! detector attached; every static location that participates in a race is
//! then promoted to a *visible operation* for the systematic phases.
//!
//! The detector is a FastTrack-style happens-before detector: per-thread
//! vector clocks, per-synchronisation-object clocks joined on acquire/release,
//! and per-memory-cell read/write metadata. It has no false positives with
//! respect to the happens-before relation of the observed execution.

pub mod detector;
pub mod phase;
pub mod vector_clock;

pub use detector::{RaceDetector, RaceReport, ReportedRace};
pub use phase::{race_detection_phase, RacePhaseConfig};
pub use vector_clock::VectorClock;

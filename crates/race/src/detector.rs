//! A happens-before data-race detector implemented as an execution observer.

use crate::vector_clock::VectorClock;
use sct_ir::Loc;
use sct_runtime::{ExecObserver, SyncObjectId, ThreadId};
use std::collections::{BTreeSet, HashMap};

/// A race between two static locations on one shared cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReportedRace {
    /// Flattened address of the cell the race is on.
    pub addr: usize,
    /// Location of the earlier access.
    pub first: Loc,
    /// Location of the later (racing) access.
    pub second: Loc,
    /// Whether the earlier access was a write.
    pub first_is_write: bool,
    /// Whether the later access was a write.
    pub second_is_write: bool,
}

/// Aggregated result of one or more race-detection runs.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// All distinct races observed.
    pub races: BTreeSet<ReportedRace>,
    /// Number of executions that contributed to this report.
    pub executions: usize,
    /// Wall-clock nanoseconds spent producing this report. Timing is an
    /// observation only: it is excluded from every equality or differential
    /// comparison downstream, mirroring `ExplorationStats`.
    pub nanos: u64,
}

impl RaceReport {
    /// The set of static locations that participate in at least one race —
    /// the set promoted to visible operations for systematic exploration.
    pub fn racy_locations(&self) -> BTreeSet<Loc> {
        let mut locs = BTreeSet::new();
        for r in &self.races {
            locs.insert(r.first);
            locs.insert(r.second);
        }
        locs
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: &RaceReport) {
        self.races.extend(other.races.iter().copied());
        self.executions += other.executions;
        // Merged reports come from sequential runs, so wall-clock adds up.
        self.nanos += other.nanos;
    }

    /// True when no race was observed.
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }
}

#[derive(Debug, Clone)]
struct LastAccess {
    /// Vector clock of the access.
    clock: VectorClock,
    /// Thread that performed it.
    thread: usize,
    /// Static location of the access.
    loc: Loc,
}

#[derive(Debug, Clone, Default)]
struct CellState {
    /// Last write to the cell, if any.
    last_write: Option<LastAccess>,
    /// Last read per thread since the last write.
    reads: Vec<LastAccess>,
}

/// FastTrack-style happens-before race detector.
///
/// Attach it to an [`sct_runtime::Execution`] via the observer parameter of
/// `run`; races are accumulated in the detector and can be harvested with
/// [`RaceDetector::into_report`] (or inspected with [`RaceDetector::report`]).
#[derive(Debug, Default)]
pub struct RaceDetector {
    /// Per-thread clocks.
    threads: Vec<VectorClock>,
    /// Per-sync-object clocks.
    objects: HashMap<SyncObjectId, VectorClock>,
    /// Per-cell access metadata.
    cells: HashMap<usize, CellState>,
    /// Races found so far.
    races: BTreeSet<ReportedRace>,
}

impl RaceDetector {
    /// Create a detector for a fresh execution.
    pub fn new() -> Self {
        let mut d = RaceDetector::default();
        // Thread 0 exists from the start.
        d.thread_clock_mut(0).increment(0);
        d
    }

    fn thread_clock_mut(&mut self, t: usize) -> &mut VectorClock {
        if self.threads.len() <= t {
            self.threads.resize_with(t + 1, VectorClock::new);
        }
        &mut self.threads[t]
    }

    fn thread_clock(&self, t: usize) -> VectorClock {
        self.threads.get(t).cloned().unwrap_or_default()
    }

    /// Races found so far.
    pub fn report(&self) -> RaceReport {
        RaceReport {
            races: self.races.clone(),
            executions: 1,
            nanos: 0,
        }
    }

    /// Consume the detector, producing its report.
    pub fn into_report(self) -> RaceReport {
        RaceReport {
            races: self.races,
            executions: 1,
            nanos: 0,
        }
    }

    fn record_race(
        &mut self,
        addr: usize,
        earlier: &LastAccess,
        later_loc: Loc,
        earlier_is_write: bool,
        later_is_write: bool,
    ) {
        self.races.insert(ReportedRace {
            addr,
            first: earlier.loc,
            second: later_loc,
            first_is_write: earlier_is_write,
            second_is_write: later_is_write,
        });
    }
}

impl ExecObserver for RaceDetector {
    fn on_thread_created(&mut self, parent: ThreadId, child: ThreadId) {
        // Everything the parent did so far happens-before the child's start.
        let parent_clock = self.thread_clock(parent.index());
        let child_clock = self.thread_clock_mut(child.index());
        child_clock.join(&parent_clock);
        child_clock.increment(child.index());
        self.thread_clock_mut(parent.index())
            .increment(parent.index());
    }

    fn on_join(&mut self, joiner: ThreadId, joined: ThreadId) {
        let joined_clock = self.thread_clock(joined.index());
        self.thread_clock_mut(joiner.index()).join(&joined_clock);
    }

    fn on_acquire(&mut self, thread: ThreadId, object: SyncObjectId) {
        if let Some(obj_clock) = self.objects.get(&object).cloned() {
            self.thread_clock_mut(thread.index()).join(&obj_clock);
        }
    }

    fn on_release(&mut self, thread: ThreadId, object: SyncObjectId) {
        let t = thread.index();
        self.thread_clock_mut(t).increment(t);
        let clock = self.thread_clock(t);
        self.objects.entry(object).or_default().join(&clock);
    }

    fn on_access(&mut self, thread: ThreadId, loc: Loc, addr: usize, is_write: bool, atomic: bool) {
        let t = thread.index();
        let clock = self.thread_clock(t);
        let cell = self.cells.entry(addr).or_default();

        // Collect races first to placate the borrow checker, then record.
        let mut found: Vec<(LastAccess, bool)> = Vec::new();
        if !atomic {
            if let Some(w) = &cell.last_write {
                let unordered = w.thread != t && !w.clock.le(&clock);
                if unordered {
                    found.push((w.clone(), true));
                }
            }
            if is_write {
                for r in &cell.reads {
                    let unordered = r.thread != t && !r.clock.le(&clock);
                    if unordered {
                        found.push((r.clone(), false));
                    }
                }
            }
        }

        // Update cell metadata (atomics participate in the metadata so that
        // ordering through them is tracked, but they never *report* races;
        // the acquire/release events emitted by the runtime for atomics give
        // the happens-before edges).
        let access = LastAccess {
            clock: clock.clone(),
            thread: t,
            loc,
        };
        if is_write {
            cell.last_write = Some(access);
            cell.reads.clear();
        } else {
            cell.reads.retain(|r| r.thread != t);
            cell.reads.push(access);
        }

        for (earlier, earlier_is_write) in found {
            self.record_race(addr, &earlier, loc, earlier_is_write, is_write);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::prelude::*;
    use sct_runtime::{ExecConfig, Execution, SchedulingPoint};

    fn run_with_detector(program: &Program) -> RaceReport {
        let mut detector = RaceDetector::new();
        let mut exec = Execution::new(program, ExecConfig::all_visible());
        let _ = exec.run(
            &mut |p: &SchedulingPoint| p.round_robin_choice(),
            &mut detector,
        );
        detector.into_report()
    }

    #[test]
    fn unsynchronised_concurrent_writes_race() {
        let mut p = ProgramBuilder::new("racy");
        let x = p.global("x", 0);
        let t = p.thread("t", |b| {
            b.store(x, 1);
        });
        p.main(|b| {
            b.spawn(t);
            b.spawn(t);
        });
        let prog = p.build().unwrap();
        let report = run_with_detector(&prog);
        assert!(!report.is_race_free());
        assert!(!report.racy_locations().is_empty());
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut p = ProgramBuilder::new("locked");
        let x = p.global("x", 0);
        let m = p.mutex("m");
        let t = p.thread("t", |b| {
            let r = b.local("r");
            b.lock(m);
            b.load(x, r);
            b.store(x, add(r, 1));
            b.unlock(m);
        });
        p.main(|b| {
            b.spawn(t);
            b.spawn(t);
        });
        let prog = p.build().unwrap();
        let report = run_with_detector(&prog);
        assert!(
            report.is_race_free(),
            "unexpected races: {:?}",
            report.races
        );
    }

    #[test]
    fn spawn_and_join_order_accesses() {
        let mut p = ProgramBuilder::new("fork-join");
        let x = p.global("x", 0);
        let t = p.thread("t", |b| {
            b.store(x, 1);
        });
        p.main(|b| {
            b.store(x, 7); // before spawn: ordered by the spawn edge
            let h = b.local("h");
            b.spawn_into(t, h);
            b.join(h);
            let r = b.local("r");
            b.load(x, r); // after join: ordered by the join edge
        });
        let prog = p.build().unwrap();
        let report = run_with_detector(&prog);
        assert!(
            report.is_race_free(),
            "unexpected races: {:?}",
            report.races
        );
    }

    #[test]
    fn atomic_accesses_do_not_report_races() {
        let mut p = ProgramBuilder::new("atomics");
        let x = p.global("x", 0);
        let t = p.thread("t", |b| {
            b.fetch_add(x, 1);
        });
        p.main(|b| {
            b.spawn(t);
            b.spawn(t);
        });
        let prog = p.build().unwrap();
        let report = run_with_detector(&prog);
        assert!(
            report.is_race_free(),
            "unexpected races: {:?}",
            report.races
        );
    }

    #[test]
    fn read_read_is_not_a_race_but_read_write_is() {
        let mut p = ProgramBuilder::new("rw");
        let x = p.global("x", 0);
        let reader = p.thread("reader", |b| {
            let r = b.local("r");
            b.load(x, r);
        });
        p.main(|b| {
            b.spawn(reader);
            b.spawn(reader);
        });
        let prog = p.build().unwrap();
        assert!(run_with_detector(&prog).is_race_free());

        let mut p = ProgramBuilder::new("rw2");
        let x = p.global("x", 0);
        let reader = p.thread("reader", |b| {
            let r = b.local("r");
            b.load(x, r);
        });
        let writer = p.thread("writer", |b| {
            b.store(x, 1);
        });
        p.main(|b| {
            b.spawn(reader);
            b.spawn(writer);
        });
        let prog = p.build().unwrap();
        let report = run_with_detector(&prog);
        assert!(!report.is_race_free());
        let race = report.races.iter().next().unwrap();
        assert!(race.second_is_write || race.first_is_write);
    }

    #[test]
    fn semaphore_edges_order_accesses() {
        let mut p = ProgramBuilder::new("sem-hb");
        let x = p.global("x", 0);
        let s = p.sem("s", 0);
        let producer = p.thread("producer", |b| {
            b.store(x, 42);
            b.sem_post(s);
        });
        let consumer = p.thread("consumer", |b| {
            let r = b.local("r");
            b.sem_wait(s);
            b.load(x, r);
        });
        p.main(|b| {
            b.spawn(producer);
            b.spawn(consumer);
        });
        let prog = p.build().unwrap();
        let report = run_with_detector(&prog);
        assert!(
            report.is_race_free(),
            "unexpected races: {:?}",
            report.races
        );
    }

    #[test]
    fn report_merge_accumulates_races_and_counts() {
        let mut a = RaceReport {
            executions: 1,
            ..Default::default()
        };
        let mut b = RaceReport {
            executions: 2,
            ..Default::default()
        };
        let loc = Loc {
            template: sct_ir::TemplateId(0),
            pc: 0,
        };
        b.races.insert(ReportedRace {
            addr: 0,
            first: loc,
            second: loc,
            first_is_write: true,
            second_is_write: true,
        });
        a.merge(&b);
        assert_eq!(a.executions, 3);
        assert_eq!(a.races.len(), 1);
        assert_eq!(a.racy_locations().len(), 1);
    }

    #[test]
    fn report_merge_deduplicates_identical_races_but_keeps_distinct_ones() {
        // Merging is set union on the full `ReportedRace` key: the same race
        // re-observed in another run must not inflate the count, while a race
        // differing in any field — even just the access kinds — is distinct.
        let loc_a = Loc {
            template: sct_ir::TemplateId(0),
            pc: 1,
        };
        let loc_b = Loc {
            template: sct_ir::TemplateId(1),
            pc: 4,
        };
        let race = ReportedRace {
            addr: 7,
            first: loc_a,
            second: loc_b,
            first_is_write: true,
            second_is_write: false,
        };
        let mut a = RaceReport {
            executions: 1,
            ..Default::default()
        };
        a.races.insert(race);
        let mut b = RaceReport {
            executions: 1,
            ..Default::default()
        };
        b.races.insert(race); // duplicate: must collapse
        b.races.insert(ReportedRace {
            second_is_write: true, // same pair, different kind: distinct
            ..race
        });
        b.races.insert(ReportedRace {
            addr: 8, // same pair, different cell: distinct
            ..race
        });

        a.merge(&b);
        assert_eq!(a.races.len(), 3);
        assert_eq!(a.executions, 2);
        // Merging the same report again is idempotent on the race set.
        let snapshot = a.races.clone();
        let b2 = b.clone();
        a.merge(&b2);
        assert_eq!(a.races, snapshot);
        assert_eq!(a.executions, 3);
        // The promoted locations collapse to the two participating sites.
        assert_eq!(
            a.racy_locations().into_iter().collect::<Vec<_>>(),
            vec![loc_a, loc_b]
        );
    }
}

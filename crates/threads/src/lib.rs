//! # sct-threads
//!
//! A loom-style frontend for the SCT schedulers: test code is written as
//! ordinary Rust closures against mock synchronisation types (`Mutex`,
//! `AtomicI64`, `JoinHandle`), runs on real OS threads, and every visible
//! operation is gated by the same [`sct_core::Scheduler`] implementations
//! that drive the IR interpreter. This demonstrates that the exploration
//! layer (DFS, preemption/delay bounding, random, PCT) is agnostic to how the
//! program under test is expressed.
//!
//! The frontend is intended for writing executable examples and tests against
//! real Rust code; the mass experiments of the study use the much faster IR
//! interpreter in `sct-runtime` (the same trade-off the paper discusses for
//! Maple's restart-the-binary approach versus CHESS's in-process reset).
//!
//! ```
//! use sct_threads::{explore, Model};
//! use sct_core::RandomScheduler;
//! use std::sync::Arc;
//!
//! let report = explore(
//!     |model| {
//!         let counter = Arc::new(sct_threads::SharedCell::new(&model, 0));
//!         let c1 = counter.clone();
//!         let m1 = model.clone();
//!         let h = model.spawn(move || {
//!             // racy read-modify-write
//!             let v = c1.load(&m1);
//!             c1.store(&m1, v + 1);
//!         });
//!         let v = counter.load(&model);
//!         counter.store(&model, v + 1);
//!         h.join(&model);
//!         let total = counter.load(&model);
//!         model.check(total == 2, "both increments survived");
//!     },
//!     Box::new(RandomScheduler::new(200, 42)),
//! );
//! assert!(report.bug_found, "the lost update must be discovered");
//! ```

use sct_core::Scheduler;
use sct_ir::{Loc, TemplateId};
use sct_runtime::{
    Bug, ExecutionOutcome, PendingOp, SchedulingPoint, StepRecord, ThreadId, ThreadSet,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

/// The visible operations of the closure frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    /// First scheduling point of a thread (right after it is spawned).
    Start,
    /// Acquire the mock mutex with the given id.
    Acquire(usize),
    /// Release the mock mutex with the given id.
    Release(usize),
    /// Access (load or store) the shared cell with the given id.
    Access(usize),
    /// Wait for the thread with the given index to finish.
    Join(usize),
    /// Explicit yield.
    Yield,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Executing invisible code (or not yet at its first scheduling point).
    Running,
    /// Parked at a visible operation, waiting to be granted.
    AtOp(OpKind),
    /// The closure returned or panicked.
    Finished,
}

#[derive(Debug, Default)]
struct ControlState {
    statuses: Vec<Status>,
    granted: Option<usize>,
    mutex_owners: Vec<Option<usize>>,
    next_cell: usize,
    failure: Option<String>,
    last: Option<usize>,
    steps: Vec<StepRecord>,
    deadlock: bool,
}

struct Inner {
    state: StdMutex<ControlState>,
    cond: Condvar,
}

impl Inner {
    /// Lock the control state, shrugging off poisoning: test threads are
    /// expected to panic (failed checks unwind through `request`), and the
    /// control state stays consistent because every mutation completes before
    /// any panic can be raised.
    fn lock(&self) -> StdMutexGuard<'_, ControlState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, guard: StdMutexGuard<'a, ControlState>) -> StdMutexGuard<'a, ControlState> {
        self.cond
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Handle to the controlled execution, cloned into every test thread. All
/// mock types take a `&Model` so the scheduling handshake can be performed.
#[derive(Clone)]
pub struct Model {
    inner: Arc<Inner>,
}

impl Model {
    fn new() -> Self {
        Model {
            inner: Arc::new(Inner {
                state: StdMutex::new(ControlState::default()),
                cond: Condvar::new(),
            }),
        }
    }

    fn register_thread(&self) -> usize {
        let mut st = self.inner.lock();
        st.statuses.push(Status::Running);
        st.statuses.len() - 1
    }

    fn register_mutex(&self) -> usize {
        let mut st = self.inner.lock();
        st.mutex_owners.push(None);
        st.mutex_owners.len() - 1
    }

    fn register_cell(&self) -> usize {
        let mut st = self.inner.lock();
        let id = st.next_cell;
        st.next_cell += 1;
        id
    }

    /// Park the calling test thread at a visible operation and wait until the
    /// scheduler grants it.
    fn request(&self, me: usize, op: OpKind) {
        let mut st = self.inner.lock();
        if st.failure.is_some() || st.deadlock {
            // The execution is already over; unwind quietly (or return
            // silently when already unwinding, e.g. from a guard drop).
            drop(st);
            if std::thread::panicking() {
                return;
            }
            std::panic::panic_any(StopExecution);
        }
        st.statuses[me] = Status::AtOp(op);
        self.inner.cond.notify_all();
        while st.granted != Some(me) {
            if st.failure.is_some() || st.deadlock {
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                std::panic::panic_any(StopExecution);
            }
            st = self.inner.wait(st);
        }
        st.granted = None;
        // Apply the operation's effect on the model state.
        match op {
            OpKind::Acquire(m) => st.mutex_owners[m] = Some(me),
            OpKind::Release(m) => st.mutex_owners[m] = None,
            _ => {}
        }
        st.statuses[me] = Status::Running;
        self.inner.cond.notify_all();
    }

    fn finish(&self, me: usize, failure: Option<String>) {
        let mut st = self.inner.lock();
        st.statuses[me] = Status::Finished;
        if st.failure.is_none() {
            st.failure = failure;
        }
        self.inner.cond.notify_all();
    }

    /// Spawn a controlled test thread running `f`.
    pub fn spawn<F>(&self, f: F) -> JoinHandle
    where
        F: FnOnce() + Send + 'static,
    {
        let id = self.register_thread();
        let model = self.clone();
        let os = std::thread::spawn(move || {
            CURRENT.with(|c| c.set(id));
            // The new thread's first action is a scheduling point, so the
            // spawning thread keeps running until the scheduler says
            // otherwise (mirroring the runtime's spawn semantics).
            let result = catch_unwind(AssertUnwindSafe(|| {
                model.request(id, OpKind::Start);
                f();
            }));
            let failure = match result {
                Ok(()) => None,
                Err(payload) => {
                    if payload.downcast_ref::<StopExecution>().is_some() {
                        None
                    } else if let Some(s) = payload.downcast_ref::<&str>() {
                        Some((*s).to_string())
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        Some(s.clone())
                    } else {
                        Some("test thread panicked".to_string())
                    }
                }
            };
            model.finish(id, failure);
        });
        JoinHandle { id, os: Some(os) }
    }

    /// Record an assertion; a failed check ends the execution with a bug.
    pub fn check(&self, condition: bool, message: &str) {
        if !condition {
            panic!("assertion failed: {message}");
        }
    }

    /// Explicit scheduling point.
    pub fn yield_now(&self) {
        self.request(current_thread_id(), OpKind::Yield);
    }
}

/// Marker payload used to unwind test threads when the execution is over.
struct StopExecution;

thread_local! {
    static CURRENT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn current_thread_id() -> usize {
    CURRENT.with(|c| c.get())
}

/// Join handle for a controlled thread.
pub struct JoinHandle {
    id: usize,
    os: Option<std::thread::JoinHandle<()>>,
}

impl JoinHandle {
    /// Wait (under scheduler control) for the thread to finish.
    pub fn join(mut self, model: &Model) {
        let me = current_thread_id();
        model.request(me, OpKind::Join(self.id));
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
    }
}

impl Drop for JoinHandle {
    fn drop(&mut self) {
        // Never join while unwinding: the owning thread may be tearing down
        // before the coordinator has been told the execution is over, and the
        // joined thread could still be waiting for a grant.
        if std::thread::panicking() {
            return;
        }
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
    }
}

/// A mock mutex protecting a value.
pub struct Mutex<T> {
    id: usize,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex registered with the model.
    pub fn new(model: &Model, value: T) -> Self {
        Mutex {
            id: model.register_mutex(),
            data: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the mutex (a scheduling point; blocks the logical thread while
    /// another thread owns it).
    pub fn lock<'a>(&'a self, model: &'a Model) -> MutexGuard<'a, T> {
        let me = current_thread_id();
        model.request(me, OpKind::Acquire(self.id));
        MutexGuard {
            model,
            id: self.id,
            me,
            guard: Some(self.data.lock().expect("mock mutex poisoned")),
        }
    }
}

/// Guard returned by [`Mutex::lock`]; releasing is itself a scheduling point.
pub struct MutexGuard<'a, T> {
    model: &'a Model,
    id: usize,
    me: usize,
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().unwrap()
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().unwrap()
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        self.model.request(self.me, OpKind::Release(self.id));
    }
}

/// A shared integer cell whose every access is a scheduling point (the
/// equivalent of a racy shared variable in the IR frontend).
pub struct SharedCell {
    id: usize,
    value: AtomicI64,
}

impl SharedCell {
    /// Create a cell registered with the model.
    pub fn new(model: &Model, value: i64) -> Self {
        SharedCell {
            id: model.register_cell(),
            value: AtomicI64::new(value),
        }
    }

    /// Read the cell (scheduling point).
    pub fn load(&self, model: &Model) -> i64 {
        model.request(current_thread_id(), OpKind::Access(self.id));
        self.value.load(Ordering::SeqCst)
    }

    /// Write the cell (scheduling point).
    pub fn store(&self, model: &Model, v: i64) {
        model.request(current_thread_id(), OpKind::Access(self.id));
        self.value.store(v, Ordering::SeqCst);
    }

    /// Atomic fetch-add (scheduling point).
    pub fn fetch_add(&self, model: &Model, v: i64) -> i64 {
        model.request(current_thread_id(), OpKind::Access(self.id));
        self.value.fetch_add(v, Ordering::SeqCst)
    }
}

/// Result of exploring a closure-based model.
#[derive(Debug, Clone, Default)]
pub struct ThreadsReport {
    /// Number of executions performed.
    pub executions: u64,
    /// Whether any execution exposed a bug (failed check, panic or deadlock).
    pub bug_found: bool,
    /// The first failure message observed.
    pub first_failure: Option<String>,
    /// Number of executions that deadlocked.
    pub deadlocks: u64,
    /// Executions until the first bug.
    pub executions_to_first_bug: Option<u64>,
}

fn op_enabled(state: &ControlState, op: OpKind) -> bool {
    match op {
        OpKind::Acquire(m) => state.mutex_owners[m].is_none(),
        OpKind::Join(t) => state.statuses.get(t).copied() == Some(Status::Finished),
        _ => true,
    }
}

fn loc_for(op: OpKind) -> Loc {
    let pc = match op {
        OpKind::Start => 0,
        OpKind::Acquire(m) => 100 + m as u32,
        OpKind::Release(m) => 200 + m as u32,
        OpKind::Access(c) => 300 + c as u32,
        OpKind::Join(t) => 400 + t as u32,
        OpKind::Yield => 500,
    };
    Loc {
        template: TemplateId(0),
        pc,
    }
}

/// Run one controlled execution of the closure under the given per-step
/// chooser. Returns the outcome in the same shape the IR runtime produces so
/// the `sct-core` schedulers can drive both frontends.
fn run_once<F>(body: &F, choose: &mut dyn FnMut(&SchedulingPoint) -> ThreadId) -> ExecutionOutcome
where
    F: Fn(Model) + Send + Sync + 'static + Clone,
{
    let model = Model::new();
    let root_id = model.register_thread();
    debug_assert_eq!(root_id, 0);
    let root_model = model.clone();
    let body = body.clone();
    let root = std::thread::spawn(move || {
        CURRENT.with(|c| c.set(0));
        let result = catch_unwind(AssertUnwindSafe(|| body(root_model.clone())));
        let failure = match result {
            Ok(()) => None,
            Err(payload) => {
                if payload.downcast_ref::<StopExecution>().is_some() {
                    None
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    Some((*s).to_string())
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    Some(s.clone())
                } else {
                    Some("root test thread panicked".to_string())
                }
            }
        };
        root_model.finish(0, failure);
    });

    // Coordinator loop.
    let mut step_index = 0usize;
    loop {
        let mut st = model.inner.lock();
        // Wait until no thread is running invisible code.
        while st.granted.is_some() || st.statuses.contains(&Status::Running) {
            st = model.inner.wait(st);
        }
        if st.failure.is_some() {
            break;
        }
        let parked: Vec<(usize, OpKind)> = st
            .statuses
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Status::AtOp(op) => Some((i, *op)),
                _ => None,
            })
            .collect();
        if parked.is_empty() {
            // Everything finished.
            break;
        }
        let enabled: Vec<ThreadId> = parked
            .iter()
            .filter(|(_, op)| op_enabled(&st, *op))
            .map(|(i, _)| ThreadId(*i))
            .collect();
        if enabled.is_empty() {
            st.deadlock = true;
            model.inner.cond.notify_all();
            break;
        }
        let last = st.last.map(ThreadId);
        let last_enabled = last.map(|l| enabled.contains(&l)).unwrap_or(false);
        let point = SchedulingPoint {
            enabled: enabled.clone(),
            last,
            last_enabled,
            num_threads: st.statuses.len(),
            step_index,
            pending: parked
                .iter()
                .filter(|(i, _)| enabled.contains(&ThreadId(*i)))
                .map(|(i, op)| PendingOp {
                    thread: ThreadId(*i),
                    loc: loc_for(*op),
                    addr: match op {
                        OpKind::Access(c) => Some(*c),
                        _ => None,
                    },
                    is_write: false,
                })
                .collect(),
        };
        let mut choice = choose(&point);
        if !enabled.contains(&choice) {
            choice = enabled[0];
        }
        let num_threads = st.statuses.len();
        st.steps.push(StepRecord {
            thread: choice,
            enabled: ThreadSet::from_slice(&enabled),
            last_enabled,
            last,
            num_threads,
        });
        st.last = Some(choice.index());
        st.granted = Some(choice.index());
        step_index += 1;
        model.inner.cond.notify_all();
        drop(st);
    }

    // Tear down: wake everything so blocked threads unwind, then join the root.
    {
        let st = model.inner.lock();
        model.inner.cond.notify_all();
        drop(st);
    }
    let _ = root.join();

    let st = model.inner.lock();
    let bug = if let Some(msg) = &st.failure {
        Some(Bug::ExplicitFailure {
            thread: ThreadId(0),
            loc: Loc {
                template: TemplateId(0),
                pc: 0,
            },
            msg: msg.clone(),
        })
    } else if st.deadlock {
        Some(Bug::Deadlock {
            blocked: st
                .statuses
                .iter()
                .enumerate()
                .filter(|(_, s)| !matches!(s, Status::Finished))
                .map(|(i, _)| ThreadId(i))
                .collect(),
        })
    } else {
        None
    };
    let threads_created = st.statuses.len();
    let max_enabled = st.steps.iter().map(|s| s.enabled.len()).max().unwrap_or(0);
    let scheduling_points = st.steps.iter().filter(|s| s.enabled.len() > 1).count();
    ExecutionOutcome {
        bug,
        steps: st.steps.clone(),
        threads_created,
        max_enabled,
        scheduling_points,
        diverged: false,
        fingerprint: 0,
    }
}

/// Explore the closure-based model `body` under `scheduler` until the
/// scheduler stops. The root closure receives the [`Model`] handle; worker
/// closures capture clones of it.
pub fn explore<F>(body: F, mut scheduler: Box<dyn Scheduler>) -> ThreadsReport
where
    F: Fn(Model) + Send + Sync + 'static + Clone,
{
    let mut report = ThreadsReport::default();
    while scheduler.begin_execution() {
        let outcome = run_once(&body, &mut |p| scheduler.choose(p));
        scheduler.end_execution(&outcome);
        if scheduler.current_execution_redundant() {
            // A reducing scheduler (e.g. DFS with sleep sets) recognised the
            // execution as covered elsewhere; it is not an explored schedule.
            continue;
        }
        report.executions += 1;
        if matches!(outcome.bug, Some(Bug::Deadlock { .. })) {
            report.deadlocks += 1;
        }
        if outcome.is_buggy() && !report.bug_found {
            report.bug_found = true;
            report.executions_to_first_bug = Some(report.executions);
            report.first_failure = outcome.bug.as_ref().map(|b| b.to_string());
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::RandomScheduler;
    use std::sync::Arc;

    #[test]
    fn lost_update_on_a_shared_cell_is_found() {
        let report = explore(
            |model| {
                let counter = Arc::new(SharedCell::new(&model, 0));
                let c1 = counter.clone();
                let m1 = model.clone();
                let h = model.spawn(move || {
                    let v = c1.load(&m1);
                    c1.store(&m1, v + 1);
                });
                let v = counter.load(&model);
                counter.store(&model, v + 1);
                h.join(&model);
                let total = counter.load(&model);
                model.check(total == 2, "both increments survived");
            },
            Box::new(RandomScheduler::new(300, 11)),
        );
        assert!(report.bug_found, "lost update not found: {report:?}");
        assert!(report.executions_to_first_bug.unwrap() >= 1);
    }

    #[test]
    fn mutex_protected_counter_is_correct_under_exploration() {
        let report = explore(
            |model| {
                let counter = Arc::new(Mutex::new(&model, 0i64));
                let c1 = counter.clone();
                let m1 = model.clone();
                let h = model.spawn(move || {
                    let mut g = c1.lock(&m1);
                    *g += 1;
                });
                {
                    let mut g = counter.lock(&model);
                    *g += 1;
                }
                h.join(&model);
                let g = counter.lock(&model);
                model.check(*g == 2, "mutex-protected increments never get lost");
            },
            Box::new(RandomScheduler::new(100, 3)),
        );
        assert!(!report.bug_found, "unexpected bug: {report:?}");
        assert_eq!(report.executions, 100);
    }

    #[test]
    fn lock_order_inversion_deadlocks() {
        let report = explore(
            |model| {
                let a = Arc::new(Mutex::new(&model, ()));
                let b = Arc::new(Mutex::new(&model, ()));
                let (a1, b1, m1) = (a.clone(), b.clone(), model.clone());
                let h = model.spawn(move || {
                    let _ga = a1.lock(&m1);
                    let _gb = b1.lock(&m1);
                });
                {
                    let _gb = b.lock(&model);
                    let _ga = a.lock(&model);
                }
                h.join(&model);
            },
            Box::new(RandomScheduler::new(300, 9)),
        );
        assert!(report.bug_found, "deadlock not found: {report:?}");
        assert!(report.deadlocks >= 1);
    }
}

//! Paper-vs-measured reporting: renders the contents of `EXPERIMENTS.md`.

use crate::figures::{fig2a, fig2b, venn_to_string};
use crate::pipeline::StudyResults;
use crate::tables::{table2, table3};
use std::fmt::Write as _;

fn yesno(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn opt_bound(b: Option<u32>) -> String {
    b.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string())
}

/// Render a full experiments report in Markdown: the headline comparisons
/// (Figure 2 overlaps), the trivial-benchmark properties (Table 2), a
/// per-benchmark paper-vs-measured table and the raw Table 3.
pub fn experiments_markdown(results: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# EXPERIMENTS — paper vs. measured\n");
    let _ = writeln!(
        out,
        "Schedule limit per technique per benchmark: **{}** (the paper uses 10,000).\n",
        results.schedule_limit
    );
    let _ = writeln!(
        out,
        "Benchmarks run: **{}** of 52. All numbers below are produced by `sct-experiments`;\n\
         the \"paper\" columns are transcribed from Table 3 of the paper.\n",
        results.benchmarks.len()
    );

    // Figure 2 overlaps.
    let a = fig2a(results);
    let b = fig2b(results);
    let _ = writeln!(out, "## Figure 2 — bug-finding overlap\n");
    let _ = writeln!(out, "```");
    let _ = write!(
        out,
        "{}",
        venn_to_string(
            "Figure 2a (systematic techniques)",
            ["IPB", "IDB", "DFS"],
            &a
        )
    );
    let _ = writeln!(out, "```");
    let _ = writeln!(
        out,
        "\nPaper (52 benchmarks): DFS 33, IPB 38 (DFS + 5), IDB 45 (IPB + 7), 7 missed by all systematic techniques.\n"
    );
    let _ = writeln!(out, "```");
    let _ = write!(
        out,
        "{}",
        venn_to_string("Figure 2b (IDB vs others)", ["IDB", "Rand", "MapleAlg"], &b)
    );
    let _ = writeln!(out, "```");
    let _ = writeln!(
        out,
        "\nPaper (52 benchmarks): 44 found by both IDB and Rand, one extra each, MapleAlg 32 (missing 15), 5 missed by all.\n"
    );

    // Table 2.
    let _ = writeln!(out, "## Table 2 — trivial benchmarks\n");
    let _ = writeln!(out, "```");
    let _ = write!(out, "{}", table2(results));
    let _ = writeln!(out, "```");
    let _ = writeln!(
        out,
        "\nPaper: DB = 0 for 14 benchmarks; < 10,000 total schedules for 16; > 50% random schedules buggy for 19; every random schedule buggy for 9.\n"
    );

    // Per-benchmark paper-vs-measured summary.
    let _ = writeln!(out, "## Per-benchmark comparison\n");
    let _ = writeln!(
        out,
        "| id | benchmark | IPB bound (paper/ours) | IDB bound (paper/ours) | DFS found (paper/ours) | Rand found (paper/ours) | MapleAlg found (paper/ours) |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for bench in &results.benchmarks {
        let ipb = bench.technique("IPB");
        let idb = bench.technique("IDB");
        let dfs_found = bench.found_by("DFS");
        let rand_found = bench.found_by("Rand");
        let maple_found = bench.found_by("MapleAlg");
        let _ = writeln!(
            out,
            "| {} | {} | {} / {} | {} / {} | {} / {} | {} / {} | {} / {} |",
            bench.id,
            bench.name,
            opt_bound(bench.paper.ipb_bound),
            opt_bound(ipb.and_then(|s| s.bound_of_first_bug)),
            opt_bound(bench.paper.idb_bound),
            opt_bound(idb.and_then(|s| s.bound_of_first_bug)),
            yesno(bench.paper.dfs_found),
            yesno(dfs_found),
            yesno(bench.paper.rand_found),
            yesno(rand_found),
            yesno(bench.paper.maple_found),
            yesno(maple_found),
        );
    }

    // Per-phase wall-clock timing. Milliseconds with one decimal: the
    // benchmarks span microseconds to seconds, and finer precision would
    // suggest a stability the stamps don't have.
    let _ = writeln!(out, "\n## Per-phase timing\n");
    let _ = writeln!(
        out,
        "Wall-clock milliseconds per pipeline phase (race-detection phase 1, then each\n\
         technique's exploration). Timing is observational only — it is excluded from\n\
         every equality and differential comparison; `perf.json` carries the same data\n\
         with derived schedules/sec rates.\n"
    );
    let _ = writeln!(out, "| benchmark | race phase | technique | exploration |");
    let _ = writeln!(out, "|---|---|---|---|");
    for bench in &results.benchmarks {
        for t in &bench.techniques {
            let _ = writeln!(
                out,
                "| {} | {:.1} | {} | {:.1} |",
                bench.name,
                t.race_nanos as f64 / 1e6,
                t.technique,
                t.explore_nanos as f64 / 1e6,
            );
        }
    }

    // Robustness incidents: rows the fault-tolerant pipeline marked instead
    // of aborting on. Omitted entirely for clean studies, so the section's
    // presence is itself the signal.
    let marked: Vec<_> = results
        .benchmarks
        .iter()
        .flat_map(|b| b.techniques.iter().map(move |t| (b, t)))
        .filter(|(_, t)| t.deadline_exceeded || t.engine_panic)
        .collect();
    if !marked.is_empty() {
        let _ = writeln!(out, "\n## Robustness incidents\n");
        let _ = writeln!(
            out,
            "Units that hit a wall-clock deadline or lost their engine to a panic. Their\n\
             partial counts appear in Table 3 with the `deadline_exceeded` / `engine_panic`\n\
             CSV columns set; every other unit of the study completed normally.\n"
        );
        let _ = writeln!(
            out,
            "| benchmark | technique | incident | schedules completed |"
        );
        let _ = writeln!(out, "|---|---|---|---|");
        for (bench, t) in marked {
            let incident = if t.engine_panic {
                "engine panic"
            } else {
                "deadline exceeded"
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} |",
                bench.name, t.technique, incident, t.schedules
            );
        }
    }

    // Raw Table 3.
    let _ = writeln!(out, "\n## Table 3 — raw measured results\n");
    let _ = writeln!(out, "```");
    let _ = write!(out, "{}", table3(results));
    let _ = writeln!(out, "```");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_study, HarnessConfig};

    #[test]
    fn report_contains_all_sections_and_benchmarks() {
        let config = HarnessConfig {
            schedule_limit: 100,
            race_runs: 3,
            seed: 3,
            use_race_phase: true,
            static_phase: false,
            include_pct: false,
            workers: 2,
            por: false,
            cache: false,
            steal_workers: 1,
            corpus_dir: None,
            resume: false,
            ..Default::default()
        };
        let results = run_study(&config, Some("splash2")).unwrap();
        let md = experiments_markdown(&results);
        for needle in [
            "# EXPERIMENTS",
            "Figure 2 — bug-finding overlap",
            "Table 2 — trivial benchmarks",
            "Per-benchmark comparison",
            "Per-phase timing",
            "Table 3 — raw measured results",
            "splash2.barnes",
            "splash2.fft",
            "splash2.lu",
        ] {
            assert!(md.contains(needle), "missing `{needle}`");
        }
    }
}

//! `sct-table` — regenerate a single table or figure of the paper, print the
//! static-analysis lint catalogue, or replay a recorded bug corpus.
//!
//! ```text
//! sct-table <table1|table2|table3|fig2a|fig2b|fig3|fig4|lint|replay|validate-trace> [common flags]
//! ```
//!
//! The common flags are shared with `sct-experiments` (see
//! `sct_harness::cli`), so options like `--por`, `--schedule-cache`,
//! `--steal-workers` and the fault-tolerance flags (`--time-budget`,
//! `--benchmark-deadline`, `--checkpoint-every`) behave identically in both
//! binaries. `table1` is pure metadata and runs instantly; everything else
//! runs the experiment pipeline (over the filtered subset, if `--filter` is
//! given) before rendering.
//!
//! `lint` runs `sct-analysis` over the (filtered) registry without executing
//! anything and prints each benchmark's report: static race candidates,
//! lock-order cycles, lints and blocking sites.
//!
//! `replay` takes `--corpus-dir DIR` and re-runs every bug prefix recorded
//! there ("campaign mode" artifacts, see `sct_core::corpus`): each prefix
//! must reproduce its recorded bug in exactly one program execution, and the
//! exit status is non-zero if any does not. Per-record verdicts go to stdout
//! (they are the machine-checkable output); the closing summary goes to
//! stderr with the other status lines.
//!
//! `validate-trace` takes `--trace PATH` and checks every line of a JSONL
//! event trace (as written by `--trace` on either binary) against the event
//! schema, printing the first offending line and exiting non-zero on any
//! mismatch — a self-contained schema check with no external JSON tooling.

use sct_core::corpus::{replay_prefix, Corpus, CorpusError};
use sct_core::telemetry::{validate_trace_line, Event, Telemetry};
use sct_harness::{
    cli, fig2a, fig2b, figures, pipeline::HarnessConfig, run_study, table1, table2, table3,
};
use sctbench::{all_benchmarks, benchmark_by_name};
use std::path::Path;

fn usage() -> String {
    format!(
        "usage: sct-table <table1|table2|table3|fig2a|fig2b|fig3|fig4|lint|replay|validate-trace> {}",
        cli::COMMON_USAGE
    )
}

/// Validate a JSONL event trace against the schema: every line must be a
/// well-formed event object of a known type with exactly the declared
/// fields. Returns the number of validated events, or the first offence.
fn validate_trace(path: &Path) -> Result<usize, String> {
    let contents = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut events = 0usize;
    for (i, line) in contents.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_trace_line(line).map_err(|e| format!("line {}: {e}: {line}", i + 1))?;
        events += 1;
    }
    Ok(events)
}

/// Print the static-analysis report for every benchmark matching the filter.
fn lint(filter: Option<&str>) {
    for spec in all_benchmarks() {
        if let Some(f) = filter {
            if !spec.name.to_lowercase().contains(&f.to_lowercase()) {
                continue;
            }
        }
        let program = spec.program();
        print!("{}", sct_analysis::analyze(&program).render(&program));
    }
}

/// Replay every recorded bug prefix in the corpus directory, each in exactly
/// one execution. Returns whether all of them reproduced their bug.
///
/// Per-record verdict lines stay on stdout — they are what callers (and CI)
/// parse — while the human-facing summary joins the other status lines on
/// stderr.
fn replay_corpus(dir: &Path, telemetry: &Telemetry) -> Result<bool, CorpusError> {
    let corpus = Corpus::open(dir)?;
    let corpora = corpus.bug_corpora()?;
    let mut all_reproduced = true;
    let mut total = 0usize;
    for bugs in &corpora {
        let Some(spec) = benchmark_by_name(&bugs.benchmark) else {
            eprintln!("{}: corpus names an unknown benchmark", bugs.benchmark);
            all_reproduced = false;
            continue;
        };
        let program = spec.program();
        for record in &bugs.records {
            total += 1;
            let outcome = replay_prefix(&program, &bugs.config, &record.prefix);
            let reproduced = outcome.bug.as_ref() == Some(&record.bug);
            telemetry.emit(|| Event::CorpusReplay {
                benchmark: bugs.benchmark.clone(),
                bug: record.bug.to_string(),
                decisions: record.prefix.len() as u64,
                reproduced,
            });
            println!(
                "{}: {:?} ({} decisions): {}",
                bugs.benchmark,
                record.bug,
                record.prefix.len(),
                if reproduced {
                    "reproduced in 1 execution"
                } else {
                    "NOT reproduced"
                }
            );
            all_reproduced &= reproduced;
        }
    }
    eprintln!(
        "replayed {total} bug prefix(es) from {} corpus file(s)",
        corpora.len()
    );
    Ok(all_reproduced)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(what) = args.next() else {
        eprintln!("{}", usage());
        std::process::exit(2);
    };

    let mut config = HarnessConfig {
        schedule_limit: 1_000,
        ..Default::default()
    };
    let mut filter: Option<String> = None;
    while let Some(arg) = args.next() {
        match cli::parse_common_flag(&mut config, &mut filter, &arg, &mut args) {
            Ok(true) => {}
            Ok(false) => {
                if arg == "--help" || arg == "-h" {
                    println!("{}", usage());
                    return;
                }
                eprintln!("unknown argument: {arg}");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    // `validate-trace` treats `--trace` as an *input* path, so it must run
    // before `build_telemetry` — which would truncate that very file to open
    // it as a sink.
    if what == "validate-trace" {
        let Some(path) = config.trace.as_deref() else {
            eprintln!("validate-trace requires --trace PATH");
            std::process::exit(2);
        };
        match validate_trace(path) {
            Ok(events) => {
                eprintln!("{}: {events} valid event(s)", path.display());
                return;
            }
            Err(e) => {
                eprintln!("invalid trace: {e}");
                std::process::exit(1);
            }
        }
    }

    config.telemetry = match cli::build_telemetry(&config) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if what == "table1" {
        print!("{}", table1());
        return;
    }

    if what == "lint" {
        lint(filter.as_deref());
        return;
    }

    if what == "replay" {
        let Some(dir) = config.corpus_dir.as_deref() else {
            eprintln!("replay requires --corpus-dir DIR");
            std::process::exit(2);
        };
        match replay_corpus(dir, &config.telemetry) {
            Ok(true) => return,
            Ok(false) => std::process::exit(1),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    eprintln!(
        "running the pipeline (schedule limit {}, filter {:?})...",
        config.schedule_limit, filter
    );
    let results = match run_study(&config, filter.as_deref()) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    match what.as_str() {
        "table2" => print!("{}", table2(&results)),
        "table3" => print!("{}", table3(&results)),
        "fig2a" => print!(
            "{}",
            figures::venn_to_string(
                "Figure 2a (systematic techniques)",
                ["IPB", "IDB", "DFS"],
                &fig2a(&results)
            )
        ),
        "fig2b" => print!(
            "{}",
            figures::venn_to_string(
                "Figure 2b (IDB vs others)",
                ["IDB", "Rand", "MapleAlg"],
                &fig2b(&results)
            )
        ),
        "fig3" => print!("{}", figures::scatter_fig3(&results)),
        "fig4" => print!("{}", figures::scatter_fig4(&results)),
        other => {
            eprintln!("unknown table/figure: {other}");
            std::process::exit(2);
        }
    }
}

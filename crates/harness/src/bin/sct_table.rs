//! `sct-table` — regenerate a single table or figure of the paper.
//!
//! ```text
//! sct-table <table1|table2|table3|fig2a|fig2b|fig3|fig4> [common flags]
//! ```
//!
//! The common flags are shared with `sct-experiments` (see
//! `sct_harness::cli`), so options like `--por`, `--schedule-cache` and
//! `--steal-workers` behave identically in both binaries. `table1` is pure
//! metadata and runs instantly; everything else runs the experiment pipeline
//! (over the filtered subset, if `--filter` is given) before rendering.

use sct_harness::{
    cli, fig2a, fig2b, figures, pipeline::HarnessConfig, run_study, table1, table2, table3,
};

fn usage() -> String {
    format!(
        "usage: sct-table <table1|table2|table3|fig2a|fig2b|fig3|fig4> {}",
        cli::COMMON_USAGE
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(what) = args.next() else {
        eprintln!("{}", usage());
        std::process::exit(2);
    };

    let mut config = HarnessConfig {
        schedule_limit: 1_000,
        ..Default::default()
    };
    let mut filter: Option<String> = None;
    while let Some(arg) = args.next() {
        match cli::parse_common_flag(&mut config, &mut filter, &arg, &mut args) {
            Ok(true) => {}
            Ok(false) => {
                if arg == "--help" || arg == "-h" {
                    println!("{}", usage());
                    return;
                }
                eprintln!("unknown argument: {arg}");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    if what == "table1" {
        print!("{}", table1());
        return;
    }

    eprintln!(
        "running the pipeline (schedule limit {}, filter {:?})...",
        config.schedule_limit, filter
    );
    let results = run_study(&config, filter.as_deref());
    match what.as_str() {
        "table2" => print!("{}", table2(&results)),
        "table3" => print!("{}", table3(&results)),
        "fig2a" => print!(
            "{}",
            figures::venn_to_string(
                "Figure 2a (systematic techniques)",
                ["IPB", "IDB", "DFS"],
                &fig2a(&results)
            )
        ),
        "fig2b" => print!(
            "{}",
            figures::venn_to_string(
                "Figure 2b (IDB vs others)",
                ["IDB", "Rand", "MapleAlg"],
                &fig2b(&results)
            )
        ),
        "fig3" => print!("{}", figures::scatter_fig3(&results)),
        "fig4" => print!("{}", figures::scatter_fig4(&results)),
        other => {
            eprintln!("unknown table/figure: {other}");
            std::process::exit(2);
        }
    }
}

//! `sct-table` — regenerate a single table or figure of the paper.
//!
//! ```text
//! sct-table <table1|table2|table3|fig2a|fig2b|fig3|fig4> [--schedules N] [--filter SUBSTR] [--seed N]
//!           [--por] [--schedule-cache]
//! ```
//!
//! `table1` is pure metadata and runs instantly; everything else runs the
//! experiment pipeline (over the filtered subset, if `--filter` is given)
//! before rendering.

use sct_harness::{
    fig2a, fig2b, figures, pipeline::HarnessConfig, run_study, table1, table2, table3,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(what) = args.next() else {
        eprintln!(
            "usage: sct-table <table1|table2|table3|fig2a|fig2b|fig3|fig4> \
             [--schedules N] [--filter SUBSTR] [--seed N]"
        );
        std::process::exit(2);
    };

    let mut config = HarnessConfig {
        schedule_limit: 1_000,
        ..Default::default()
    };
    let mut filter: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schedules" => {
                config.schedule_limit = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.schedule_limit)
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.seed)
            }
            "--filter" => filter = args.next(),
            "--por" => config.por = true,
            "--schedule-cache" => config.cache = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if what == "table1" {
        print!("{}", table1());
        return;
    }

    eprintln!(
        "running the pipeline (schedule limit {}, filter {:?})...",
        config.schedule_limit, filter
    );
    let results = run_study(&config, filter.as_deref());
    match what.as_str() {
        "table2" => print!("{}", table2(&results)),
        "table3" => print!("{}", table3(&results)),
        "fig2a" => print!(
            "{}",
            figures::venn_to_string(
                "Figure 2a (systematic techniques)",
                ["IPB", "IDB", "DFS"],
                &fig2a(&results)
            )
        ),
        "fig2b" => print!(
            "{}",
            figures::venn_to_string(
                "Figure 2b (IDB vs others)",
                ["IDB", "Rand", "MapleAlg"],
                &fig2b(&results)
            )
        ),
        "fig3" => print!("{}", figures::scatter_fig3(&results)),
        "fig4" => print!("{}", figures::scatter_fig4(&results)),
        other => {
            eprintln!("unknown table/figure: {other}");
            std::process::exit(2);
        }
    }
}

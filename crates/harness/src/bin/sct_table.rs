//! `sct-table` — regenerate a single table or figure of the paper, print the
//! static-analysis lint catalogue, or replay a recorded bug corpus.
//!
//! ```text
//! sct-table <table1|table2|table3|fig2a|fig2b|fig3|fig4|lint|replay> [common flags]
//! ```
//!
//! The common flags are shared with `sct-experiments` (see
//! `sct_harness::cli`), so options like `--por`, `--schedule-cache` and
//! `--steal-workers` behave identically in both binaries. `table1` is pure
//! metadata and runs instantly; everything else runs the experiment pipeline
//! (over the filtered subset, if `--filter` is given) before rendering.
//!
//! `lint` runs `sct-analysis` over the (filtered) registry without executing
//! anything and prints each benchmark's report: static race candidates,
//! lock-order cycles, lints and blocking sites.
//!
//! `replay` takes `--corpus-dir DIR` and re-runs every bug prefix recorded
//! there ("campaign mode" artifacts, see `sct_core::corpus`): each prefix
//! must reproduce its recorded bug in exactly one program execution, and the
//! exit status is non-zero if any does not.

use sct_core::corpus::{replay_prefix, Corpus, CorpusError};
use sct_harness::{
    cli, fig2a, fig2b, figures, pipeline::HarnessConfig, run_study, table1, table2, table3,
};
use sctbench::{all_benchmarks, benchmark_by_name};
use std::path::Path;

fn usage() -> String {
    format!(
        "usage: sct-table <table1|table2|table3|fig2a|fig2b|fig3|fig4|lint|replay> {}",
        cli::COMMON_USAGE
    )
}

/// Print the static-analysis report for every benchmark matching the filter.
fn lint(filter: Option<&str>) {
    for spec in all_benchmarks() {
        if let Some(f) = filter {
            if !spec.name.to_lowercase().contains(&f.to_lowercase()) {
                continue;
            }
        }
        let program = spec.program();
        print!("{}", sct_analysis::analyze(&program).render(&program));
    }
}

/// Replay every recorded bug prefix in the corpus directory, each in exactly
/// one execution. Returns whether all of them reproduced their bug.
fn replay_corpus(dir: &Path) -> Result<bool, CorpusError> {
    let corpus = Corpus::open(dir)?;
    let corpora = corpus.bug_corpora()?;
    let mut all_reproduced = true;
    let mut total = 0usize;
    for bugs in &corpora {
        let Some(spec) = benchmark_by_name(&bugs.benchmark) else {
            eprintln!("{}: corpus names an unknown benchmark", bugs.benchmark);
            all_reproduced = false;
            continue;
        };
        let program = spec.program();
        for record in &bugs.records {
            total += 1;
            let outcome = replay_prefix(&program, &bugs.config, &record.prefix);
            let reproduced = outcome.bug.as_ref() == Some(&record.bug);
            println!(
                "{}: {:?} ({} decisions): {}",
                bugs.benchmark,
                record.bug,
                record.prefix.len(),
                if reproduced {
                    "reproduced in 1 execution"
                } else {
                    "NOT reproduced"
                }
            );
            all_reproduced &= reproduced;
        }
    }
    println!(
        "replayed {total} bug prefix(es) from {} corpus file(s)",
        corpora.len()
    );
    Ok(all_reproduced)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(what) = args.next() else {
        eprintln!("{}", usage());
        std::process::exit(2);
    };

    let mut config = HarnessConfig {
        schedule_limit: 1_000,
        ..Default::default()
    };
    let mut filter: Option<String> = None;
    while let Some(arg) = args.next() {
        match cli::parse_common_flag(&mut config, &mut filter, &arg, &mut args) {
            Ok(true) => {}
            Ok(false) => {
                if arg == "--help" || arg == "-h" {
                    println!("{}", usage());
                    return;
                }
                eprintln!("unknown argument: {arg}");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    if what == "table1" {
        print!("{}", table1());
        return;
    }

    if what == "lint" {
        lint(filter.as_deref());
        return;
    }

    if what == "replay" {
        let Some(dir) = config.corpus_dir.as_deref() else {
            eprintln!("replay requires --corpus-dir DIR");
            std::process::exit(2);
        };
        match replay_corpus(dir) {
            Ok(true) => return,
            Ok(false) => std::process::exit(1),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    eprintln!(
        "running the pipeline (schedule limit {}, filter {:?})...",
        config.schedule_limit, filter
    );
    let results = match run_study(&config, filter.as_deref()) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    match what.as_str() {
        "table2" => print!("{}", table2(&results)),
        "table3" => print!("{}", table3(&results)),
        "fig2a" => print!(
            "{}",
            figures::venn_to_string(
                "Figure 2a (systematic techniques)",
                ["IPB", "IDB", "DFS"],
                &fig2a(&results)
            )
        ),
        "fig2b" => print!(
            "{}",
            figures::venn_to_string(
                "Figure 2b (IDB vs others)",
                ["IDB", "Rand", "MapleAlg"],
                &fig2b(&results)
            )
        ),
        "fig3" => print!("{}", figures::scatter_fig3(&results)),
        "fig4" => print!("{}", figures::scatter_fig4(&results)),
        other => {
            eprintln!("unknown table/figure: {other}");
            std::process::exit(2);
        }
    }
}

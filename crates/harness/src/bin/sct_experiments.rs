//! `sct-experiments` — run the full study (race detection + IPB/IDB/DFS/Rand/
//! MapleAlg on every SCTBench benchmark) and write the tables, figure data
//! and the EXPERIMENTS report to an output directory.
//!
//! ```text
//! sct-experiments [common flags] [--out DIR]
//! ```
//!
//! The common flags are shared with `sct-table` (see `sct_harness::cli`):
//! `--por` runs the systematic techniques (DFS, IPB, IDB) with sleep-set
//! partial-order reduction; `--schedule-cache` makes iterative bounding
//! serve the interior already covered at lower bound levels from a
//! decision-prefix memo; `--steal-workers N` splits each systematic search's
//! own frontier across N work-stealing threads (statistics stay
//! bit-identical); `--workers N` fans benchmarks × techniques out;
//! `--corpus-dir DIR` persists each benchmark's schedule trie and minimized
//! bug prefixes as durable artifacts ("campaign mode"), and `--resume` seeds
//! the run from those artifacts so a killed study picks up where it left off
//! (see `sct-table replay` for reproducing the recorded bugs);
//! `--checkpoint-every DUR` sets the campaign's mid-run trie autosave
//! cadence (default 30s), bounding what a SIGKILL can lose.
//! `--time-budget DUR` caps each technique's wall clock and
//! `--benchmark-deadline DUR` caps each benchmark's; a unit that runs out
//! stops at a schedule boundary and reports its partial counts with the
//! `deadline_exceeded` CSV column set (durations accept `ms`/`s`/`m`/`h`
//! suffixes; a bare number means seconds).
//! `--static-phase` replaces the dynamic race-detection runs with the
//! `sct-analysis` static race candidates (a sound over-approximation),
//! promoting those locations to visible operations instead.
//! `--trace PATH` streams every telemetry event (technique and bound-level
//! progress, steal donations/thefts, cache summaries, corpus activity, bug
//! discoveries) as line-delimited JSON to PATH, and `--quiet` suppresses the
//! once-a-second stderr heartbeat; stdout carries only the rendered tables
//! either way.
//!
//! The paper's configuration is `--schedules 10000 --race-runs 10`; the
//! default here is a laptop-friendly 2,000 schedules.

use sct_harness::{
    cli, experiments_markdown, fig2a, fig2b, figures, perf_json, pipeline::HarnessConfig,
    run_study, table1, table2, table3, table3_csv,
};
use std::path::PathBuf;

struct Args {
    config: HarnessConfig,
    filter: Option<String>,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut config = HarnessConfig {
        schedule_limit: 2_000,
        ..Default::default()
    };
    let mut filter = None;
    let mut out = PathBuf::from("experiments-out");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if cli::parse_common_flag(&mut config, &mut filter, &arg, &mut args)? {
            continue;
        }
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "missing value for --out".to_string())?,
                );
            }
            "--help" | "-h" => {
                println!("usage: sct-experiments {} [--out DIR]", cli::COMMON_USAGE);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        config,
        filter,
        out,
    })
}

fn main() {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    args.config.telemetry = match cli::build_telemetry(&args.config) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "running the study: schedule limit {}, race runs {}, seed {}, filter {:?}, {} workers{}{}{}{}{}",
        args.config.schedule_limit,
        args.config.race_runs,
        args.config.seed,
        args.filter,
        args.config.workers,
        if args.config.static_phase {
            ", static race phase"
        } else {
            ""
        },
        if args.config.por {
            ", sleep-set POR"
        } else {
            ""
        },
        if args.config.cache {
            ", schedule cache"
        } else {
            ""
        },
        if args.config.steal_workers > 1 {
            format!(", {} steal workers", args.config.steal_workers)
        } else {
            String::new()
        },
        match &args.config.corpus_dir {
            Some(dir) if args.config.resume =>
                format!(", resuming from corpus {}", dir.display()),
            Some(dir) => format!(", corpus {}", dir.display()),
            None => String::new(),
        }
    );
    let started = std::time::Instant::now();
    let results = match run_study(&args.config, args.filter.as_deref()) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "finished {} benchmarks in {:.1?}",
        results.benchmarks.len(),
        started.elapsed()
    );

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create output directory {}: {e}", args.out.display());
        std::process::exit(1);
    }
    let write = |name: &str, contents: String| {
        let path = args.out.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    };

    write("table1.txt", table1());
    write("table2.txt", table2(&results));
    write("table3.txt", table3(&results));
    write("table3.csv", table3_csv(&results));
    write(
        "fig2a.txt",
        figures::venn_to_string(
            "Figure 2a (systematic techniques)",
            ["IPB", "IDB", "DFS"],
            &fig2a(&results),
        ),
    );
    write(
        "fig2b.txt",
        figures::venn_to_string(
            "Figure 2b (IDB vs others)",
            ["IDB", "Rand", "MapleAlg"],
            &fig2b(&results),
        ),
    );
    write("fig3.csv", figures::scatter_fig3(&results));
    write("fig4.csv", figures::scatter_fig4(&results));
    write("perf.json", perf_json(&results));
    write("EXPERIMENTS.md", experiments_markdown(&results));

    // Console summary.
    println!("{}", table2(&results));
    println!(
        "{}",
        figures::venn_to_string(
            "Figure 2a (systematic techniques)",
            ["IPB", "IDB", "DFS"],
            &fig2a(&results)
        )
    );
    println!(
        "{}",
        figures::venn_to_string(
            "Figure 2b (IDB vs others)",
            ["IDB", "Rand", "MapleAlg"],
            &fig2b(&results)
        )
    );
}

//! `sct-experiments` — run the full study (race detection + IPB/IDB/DFS/Rand/
//! MapleAlg on every SCTBench benchmark) and write the tables, figure data
//! and the EXPERIMENTS report to an output directory.
//!
//! ```text
//! sct-experiments [--schedules N] [--race-runs N] [--seed N] [--filter SUBSTR]
//!                 [--no-race-phase] [--with-pct] [--por] [--schedule-cache]
//!                 [--workers N] [--out DIR]
//! ```
//!
//! `--por` runs the systematic techniques (DFS, IPB, IDB) with sleep-set
//! partial-order reduction, shrinking their schedule spaces without losing
//! bugs or terminal states.
//!
//! `--schedule-cache` makes iterative bounding (IPB, IDB) serve the interior
//! already covered at lower bound levels from a decision-prefix memo instead
//! of re-executing it; the study output is identical, only the `executions` /
//! `cache_hits` / `cache_bytes` CSV columns change.
//!
//! The paper's configuration is `--schedules 10000 --race-runs 10`; the
//! default here is a laptop-friendly 2,000 schedules.

use sct_harness::{
    experiments_markdown, fig2a, fig2b, figures, pipeline::HarnessConfig, run_study, table1,
    table2, table3, table3_csv,
};
use std::path::PathBuf;

struct Args {
    config: HarnessConfig,
    filter: Option<String>,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut config = HarnessConfig {
        schedule_limit: 2_000,
        ..Default::default()
    };
    let mut filter = None;
    let mut out = PathBuf::from("experiments-out");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--schedules" => {
                config.schedule_limit = value("--schedules")?
                    .parse()
                    .map_err(|e| format!("--schedules: {e}"))?;
            }
            "--race-runs" => {
                config.race_runs = value("--race-runs")?
                    .parse()
                    .map_err(|e| format!("--race-runs: {e}"))?;
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--filter" => filter = Some(value("--filter")?),
            "--no-race-phase" => config.use_race_phase = false,
            "--with-pct" => config.include_pct = true,
            "--por" => config.por = true,
            "--schedule-cache" => config.cache = true,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse::<usize>()
                    .map_err(|e| format!("--workers: {e}"))?
                    .max(1);
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: sct-experiments [--schedules N] [--race-runs N] [--seed N] \
                     [--filter SUBSTR] [--no-race-phase] [--with-pct] [--por] \
                     [--schedule-cache] [--workers N] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        config,
        filter,
        out,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "running the study: schedule limit {}, race runs {}, seed {}, filter {:?}, {} workers{}{}",
        args.config.schedule_limit,
        args.config.race_runs,
        args.config.seed,
        args.filter,
        args.config.workers,
        if args.config.por {
            ", sleep-set POR"
        } else {
            ""
        },
        if args.config.cache {
            ", schedule cache"
        } else {
            ""
        }
    );
    let started = std::time::Instant::now();
    let results = run_study(&args.config, args.filter.as_deref());
    eprintln!(
        "finished {} benchmarks in {:.1?}",
        results.benchmarks.len(),
        started.elapsed()
    );

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create output directory {}: {e}", args.out.display());
        std::process::exit(1);
    }
    let write = |name: &str, contents: String| {
        let path = args.out.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    };

    write("table1.txt", table1());
    write("table2.txt", table2(&results));
    write("table3.txt", table3(&results));
    write("table3.csv", table3_csv(&results));
    write(
        "fig2a.txt",
        figures::venn_to_string(
            "Figure 2a (systematic techniques)",
            ["IPB", "IDB", "DFS"],
            &fig2a(&results),
        ),
    );
    write(
        "fig2b.txt",
        figures::venn_to_string(
            "Figure 2b (IDB vs others)",
            ["IDB", "Rand", "MapleAlg"],
            &fig2b(&results),
        ),
    );
    write("fig3.csv", figures::scatter_fig3(&results));
    write("fig4.csv", figures::scatter_fig4(&results));
    write("EXPERIMENTS.md", experiments_markdown(&results));

    // Console summary.
    println!("{}", table2(&results));
    println!(
        "{}",
        figures::venn_to_string(
            "Figure 2a (systematic techniques)",
            ["IPB", "IDB", "DFS"],
            &fig2a(&results)
        )
    );
    println!(
        "{}",
        figures::venn_to_string(
            "Figure 2b (IDB vs others)",
            ["IDB", "Rand", "MapleAlg"],
            &fig2b(&results)
        )
    );
}

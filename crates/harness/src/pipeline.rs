//! The per-benchmark experiment pipeline and the whole-study driver.

use sct_core::corpus::{corpus_key, harvest_bugs, BugCorpus, Corpus, CorpusError};
use sct_core::stats::ExplorationStats;
use sct_core::telemetry::{Event, Telemetry};
use sct_core::{default_workers, explore, map_indexed, ExploreLimits, SharedCache, Technique};
use sct_race::{race_detection_phase, RacePhaseConfig};
use sct_runtime::ExecConfig;
use sctbench::{all_benchmarks, BenchmarkSpec};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of a study run.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Terminal-schedule limit per technique per benchmark (10,000 in the paper).
    pub schedule_limit: u64,
    /// Number of race-detection runs per benchmark (10 in the paper).
    pub race_runs: usize,
    /// Seed for every randomised component.
    pub seed: u64,
    /// Whether to run the race-detection phase and promote racy locations to
    /// visible operations (as in the paper), or to treat *every* shared
    /// access as visible (an ablation).
    pub use_race_phase: bool,
    /// Replace the dynamic race-detection phase with the static analyzer:
    /// skip the uncontrolled race runs entirely and promote the locations of
    /// `sct-analysis`'s race candidates (a sound over-approximation of the
    /// dynamic racy-location set) to visible operations. Takes precedence
    /// over [`HarnessConfig::use_race_phase`]; `--static-phase` on both
    /// binaries sets it.
    pub static_phase: bool,
    /// Include PCT as an additional (non-paper) technique.
    pub include_pct: bool,
    /// Number of worker threads the study fans benchmarks × techniques out
    /// over (1 = fully serial). Each (benchmark, technique) cell still runs
    /// its schedulers with their serial seeds, so the collected statistics
    /// are identical to a serial run at any worker count.
    pub workers: usize,
    /// Enable sleep-set partial-order reduction in the systematic searches
    /// (DFS, IPB, IDB). Off by default because the paper's study ran without
    /// reduction; `sct-experiments --por` switches it on.
    pub por: bool,
    /// Enable the schedule cache in iterative bounding (IPB, IDB): each
    /// bound level serves the interior already covered at lower levels from
    /// a decision-prefix memo instead of re-executing it. The study output
    /// is identical either way (only the `executions` / `cache_hits` /
    /// `cache_bytes` CSV columns change); `sct-experiments
    /// --schedule-cache` switches it on.
    pub cache: bool,
    /// Worker threads for the work-stealing frontier *within* each
    /// systematic search / bound level (see `sct_core::steal`). `1` (the
    /// default) keeps every search serial; higher counts split a single
    /// DFS or bound level across cores with bit-identical statistics.
    /// `--steal-workers` on both binaries sets it.
    pub steal_workers: usize,
    /// Campaign mode: directory the per-benchmark schedule-trie and
    /// bug-corpus artifacts are written to (see `sct_core::corpus`). `None`
    /// (the default) keeps the study one-shot. With a directory set, the
    /// systematic techniques (IPB, IDB, DFS) of each benchmark share one
    /// trie, bugs are saved as minimized replayable prefixes, and the trie
    /// is persisted when the benchmark completes.
    pub corpus_dir: Option<PathBuf>,
    /// Seed the shared trie from the saved artifact in `corpus_dir` instead
    /// of starting empty, so a killed or truncated study picks up where it
    /// left off (schedules the corpus already covers are served, not
    /// re-executed). Requires `corpus_dir`; a saved artifact recorded under
    /// a different exploration configuration is a hard error, never a
    /// silent cold start.
    pub resume: bool,
    /// Path the structured JSONL event trace is written to (`--trace`).
    /// `None` (the default) disables tracing. The path itself is only
    /// consumed by [`crate::cli::build_telemetry`]; the pipeline emits
    /// through [`HarnessConfig::telemetry`].
    pub trace: Option<PathBuf>,
    /// Suppress the rate-limited stderr progress heartbeat (`--quiet`).
    /// Like [`HarnessConfig::trace`], this only steers
    /// [`crate::cli::build_telemetry`].
    pub quiet: bool,
    /// Per-technique wall-clock budget (`--time-budget`). Checked
    /// cooperatively at schedule boundaries, so a technique that runs out
    /// stops between schedules with partial results and its row marked
    /// `deadline_exceeded`. `None` (the default) leaves techniques unbounded
    /// in time. The flag is excluded from stats equality, so a run where no
    /// deadline fires is bit-identical to an unbudgeted run.
    pub time_budget: Option<Duration>,
    /// Per-benchmark wall-clock deadline (`--benchmark-deadline`). Each
    /// technique unit starts with the time remaining until the benchmark's
    /// deadline as its budget (combined with [`HarnessConfig::time_budget`]
    /// by taking the minimum), so an over-deadline benchmark still reports a
    /// row for every technique — late rows are marked `deadline_exceeded`
    /// with whatever partial work they finished.
    pub benchmark_deadline: Option<Duration>,
    /// Campaign checkpoint cadence (`--checkpoint-every`): with
    /// [`HarnessConfig::corpus_dir`] set, a background thread autosaves the
    /// benchmark's shared trie this often — and once at teardown — so a
    /// SIGKILLed study resumes from the last checkpoint rather than from the
    /// previous completed benchmark. `None` disables mid-run checkpoints;
    /// the final save when the benchmark completes always happens.
    pub checkpoint_every: Option<Duration>,
    /// The telemetry handle every pipeline stage emits events through.
    /// `Telemetry::off()` (the default) makes each emission a no-op whose
    /// event is never even constructed, so an untraced study pays nothing.
    /// Events are observations only: nothing in the pipeline reads them
    /// back, so the study's statistics are bit-identical with tracing on
    /// or off.
    pub telemetry: Telemetry,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            schedule_limit: 10_000,
            race_runs: 10,
            seed: 0x5c7_bec4,
            use_race_phase: true,
            static_phase: false,
            include_pct: false,
            workers: default_workers(),
            por: false,
            cache: false,
            steal_workers: 1,
            corpus_dir: None,
            resume: false,
            trace: None,
            quiet: false,
            time_budget: None,
            benchmark_deadline: None,
            checkpoint_every: Some(Duration::from_secs(30)),
            telemetry: Telemetry::off(),
        }
    }
}

/// Background autosave of a campaign benchmark's shared trie: a thread that
/// saves every `every` and once more when told to stop, so each campaign
/// benchmark checkpoints at least once and a kill at any point loses at most
/// `every` of exploration. Dropping the handle stops and joins the thread —
/// always before the benchmark's final save, so the two never race on the
/// artifact's temporary file.
struct Checkpointer {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Checkpointer {
    fn spawn(
        corpus: Corpus,
        benchmark: String,
        key: u64,
        shared: Arc<SharedCache>,
        telemetry: Telemetry,
        every: Duration,
    ) -> Checkpointer {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = thread::spawn(move || loop {
            let stopped = {
                let (lock, signal) = &*thread_stop;
                let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
                let (guard, _) = signal
                    .wait_timeout_while(guard, every, |stopped| !*stopped)
                    .unwrap_or_else(|e| e.into_inner());
                *guard
            };
            // Save even on the stop signal (it is the same bytes the final
            // save is about to publish, one rename apart). A failing
            // checkpoint is best-effort by design: the retry loop inside
            // `save_cache` already absorbed transient errors, and a
            // persistent one will surface from the benchmark's final save.
            let (saved, bytes, schedules) = shared.with_live(|cache| {
                (
                    corpus.save_cache(&benchmark, key, cache),
                    cache.bytes(),
                    cache.insertions(),
                )
            });
            if saved.is_ok() {
                telemetry.emit(|| Event::CheckpointSaved {
                    benchmark: benchmark.clone(),
                    bytes,
                    schedules,
                });
            }
            if stopped {
                break;
            }
        });
        Checkpointer {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        let (lock, signal) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        signal.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The wall-clock budget a technique unit starting `elapsed` into its
/// benchmark gets: the smaller of the per-technique budget and the time left
/// until the benchmark's deadline (an already-passed deadline yields a zero
/// budget — the unit still runs and reports a `deadline_exceeded` row, it
/// just stops at its first schedule boundary).
fn effective_budget(config: &HarnessConfig, elapsed: Duration) -> Option<Duration> {
    let remaining = config
        .benchmark_deadline
        .map(|deadline| deadline.saturating_sub(elapsed));
    match (config.time_budget, remaining) {
        (Some(budget), Some(remaining)) => Some(budget.min(remaining)),
        (budget, remaining) => budget.or(remaining),
    }
}

/// Human-readable form of a caught panic payload.
fn panic_text(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(text) => *text,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(text) => (*text).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Result of running all techniques on one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    /// Table 3 row id.
    pub id: usize,
    /// Benchmark name.
    pub name: String,
    /// Suite name.
    pub suite: String,
    /// Number of distinct races observed in the race-detection phase
    /// (0 when [`HarnessConfig::static_phase`] replaced it).
    pub races: usize,
    /// Number of static locations promoted to visible operations.
    pub racy_locations: usize,
    /// Number of race candidates the static analyzer reports.
    pub static_candidates: usize,
    /// Number of distinct locations involved in those candidates (what
    /// `--static-phase` promotes instead of the dynamic racy locations).
    pub static_locations: usize,
    /// Statistics per technique, in the order they were run.
    pub techniques: Vec<ExplorationStats>,
    /// The paper's Table 3 numbers (for comparisons).
    pub paper: sctbench::PaperRow,
}

impl BenchmarkResult {
    /// Statistics for a technique by its label ("IPB", "IDB", "DFS", "Rand",
    /// "MapleAlg", "PCT").
    pub fn technique(&self, label: &str) -> Option<&ExplorationStats> {
        self.techniques.iter().find(|t| t.technique == label)
    }

    /// Whether the named technique found the benchmark's bug.
    pub fn found_by(&self, label: &str) -> bool {
        self.technique(label)
            .map(|t| t.found_bug())
            .unwrap_or(false)
    }

    /// Maximum observed value of the "# threads" column across techniques.
    pub fn threads(&self) -> usize {
        self.techniques
            .iter()
            .map(|t| t.total_threads)
            .max()
            .unwrap_or(0)
    }

    /// Maximum observed "# max enabled threads".
    pub fn max_enabled(&self) -> usize {
        self.techniques
            .iter()
            .map(|t| t.max_enabled_threads)
            .max()
            .unwrap_or(0)
    }

    /// Maximum observed "# max scheduling points".
    pub fn max_scheduling_points(&self) -> usize {
        self.techniques
            .iter()
            .map(|t| t.max_scheduling_points)
            .max()
            .unwrap_or(0)
    }
}

/// Results for the whole study.
#[derive(Debug, Clone, Default)]
pub struct StudyResults {
    /// One entry per benchmark, in Table 3 order.
    pub benchmarks: Vec<BenchmarkResult>,
    /// The configuration the study was run with.
    pub schedule_limit: u64,
    /// Whether the systematic searches ran with sleep-set partial-order
    /// reduction.
    pub por: bool,
    /// Whether iterative bounding ran with the schedule cache.
    pub cache: bool,
    /// Outer benchmark/technique worker count the study ran with.
    pub workers: usize,
    /// Within-technique steal worker count the study ran with.
    pub steal_workers: usize,
}

/// The techniques a study run uses, in Table 3 column order.
pub fn study_techniques(config: &HarnessConfig) -> Vec<Technique> {
    let mut ts = vec![
        Technique::IterativePreemptionBounding,
        Technique::IterativeDelayBounding,
        Technique::Dfs,
        Technique::Random { seed: config.seed },
        Technique::MapleLike {
            profiling_runs: 10,
            seed: config.seed,
        },
    ];
    if config.include_pct {
        ts.push(Technique::Pct {
            depth: 3,
            seed: config.seed,
        });
    }
    ts
}

/// Run the full pipeline (race detection + every technique) on a single
/// benchmark. With [`HarnessConfig::corpus_dir`] set, the benchmark's trie
/// is loaded (on `resume`) before the techniques run and saved — together
/// with its harvested, minimized bug corpus — after they finish; corpus
/// errors (unreadable directory, corrupt or mismatched artifact) abort the
/// benchmark rather than silently degrading to a cold one-shot run.
pub fn run_benchmark(
    spec: &BenchmarkSpec,
    config: &HarnessConfig,
) -> Result<BenchmarkResult, CorpusError> {
    let bench_started = Instant::now();
    config.telemetry.emit(|| Event::BenchmarkStart {
        benchmark: spec.name.to_string(),
    });
    let program = spec.program();

    // Static triage always runs: it is microseconds per benchmark and its
    // counts are study output (Table 3's static columns) either way.
    let analysis = sct_analysis::analyze(&program);
    let static_locations = analysis.candidate_locations();

    // Phase 1: data-race detection (§5 of the paper) — or its static
    // replacement. `--static-phase` skips the 10 uncontrolled runs and
    // promotes the analyzer's candidate locations instead, which are a sound
    // superset of what the dynamic phase can find.
    let phase_started = Instant::now();
    let (races, race_runs, racy) = if config.static_phase {
        (0, 0, static_locations.iter().copied().collect::<Vec<_>>())
    } else {
        let race_config = RacePhaseConfig {
            runs: config.race_runs,
            seed: config.seed,
            ..Default::default()
        };
        let report = race_detection_phase(&program, &race_config);
        let racy = report.racy_locations().into_iter().collect::<Vec<_>>();
        (report.races.len(), report.executions, racy)
    };
    // Phase-1 wall clock, stamped onto every technique row below so the CSV
    // carries it; zero under `--static-phase` would misattribute the (cheap)
    // analyzer run, so the measured value covers whichever branch ran.
    let race_nanos = phase_started.elapsed().as_nanos() as u64;
    config.telemetry.emit(|| Event::RacePhase {
        benchmark: spec.name.to_string(),
        runs: race_runs as u64,
        races: races as u64,
        racy_locations: racy.len() as u64,
        static_phase: config.static_phase,
        wall_nanos: race_nanos,
    });

    // Phase 2: the exploration techniques, all sharing the same racy-location
    // information (as the paper stresses, the race results are shared so the
    // comparison between techniques is fair).
    let exec_config = if config.static_phase || config.use_race_phase {
        ExecConfig::with_racy_locations(racy.iter().copied())
    } else {
        ExecConfig::all_visible()
    };
    // Campaign mode: one shared trie per benchmark, keyed on the exact
    // exploration configuration so artifacts from a different visibility /
    // step-limit setup are rejected on load rather than mixed in.
    let corpus = match &config.corpus_dir {
        Some(dir) => Some(Corpus::open(dir)?),
        None => None,
    };
    let key = corpus_key(spec.name, &exec_config);
    let shared = match &corpus {
        Some(c) => {
            let loaded = match config.resume {
                true => c.load_cache(spec.name, key)?,
                false => None,
            };
            if let Some(cache) = &loaded {
                config.telemetry.emit(|| Event::CorpusLoaded {
                    benchmark: spec.name.to_string(),
                    bytes: cache.bytes(),
                    buggy_schedules: cache.buggy_schedules().len() as u64,
                });
            }
            Some(Arc::new(SharedCache::of(loaded.unwrap_or_default())))
        }
        None => None,
    };
    let limits = ExploreLimits::with_schedule_limit(config.schedule_limit)
        .with_por(config.por)
        .with_cache(config.cache)
        .with_steal_workers(config.steal_workers)
        .with_shared_cache(shared.clone())
        .with_telemetry(config.telemetry.clone());
    let caching = config.cache || shared.is_some();
    // Crash-safe checkpointing: in campaign mode, autosave the shared trie
    // on a cadence so a SIGKILL mid-benchmark only loses the tail since the
    // last checkpoint. Stopped (via drop) before the final save below.
    let checkpointer = match (&corpus, &shared, config.checkpoint_every) {
        (Some(c), Some(shared), Some(every)) => Some(Checkpointer::spawn(
            c.clone(),
            spec.name.to_string(),
            key,
            Arc::clone(shared),
            config.telemetry.clone(),
            every,
        )),
        _ => None,
    };
    let technique_list = study_techniques(config);
    let techniques = map_indexed(technique_list.len(), config.workers, |i| {
        let t = technique_list[i];
        config.telemetry.emit(|| Event::TechniqueStart {
            benchmark: spec.name.to_string(),
            technique: t.label().to_string(),
        });
        let budget = effective_budget(config, bench_started.elapsed());
        let unit_limits = limits.clone().with_time_budget(budget);
        // Panic isolation: an engine blowing up must cost one row, not the
        // study. The shared trie is recovered to its load-time baseline (the
        // panicking unit may have died mid-insertion, and `catch_unwind`
        // makes any torn state observable to the remaining units), and the
        // unit reports a synthesized `engine_panic` row instead.
        let unit = catch_unwind(AssertUnwindSafe(|| {
            explore::run_technique(&program, &exec_config, t, &unit_limits)
        }));
        let mut stats = match unit {
            Ok(stats) => stats,
            Err(payload) => {
                if let Some(shared) = &shared {
                    shared.restore_baseline();
                }
                let panic = panic_text(payload);
                config.telemetry.emit(|| Event::EnginePanic {
                    benchmark: spec.name.to_string(),
                    technique: t.label().to_string(),
                    panic: panic.clone(),
                });
                let mut row = ExplorationStats::new(t.label());
                row.engine_panic = true;
                row
            }
        };
        stats.technique = t.label().to_string();
        stats.race_nanos = race_nanos;
        if stats.deadline_exceeded {
            config.telemetry.emit(|| Event::DeadlineExceeded {
                benchmark: spec.name.to_string(),
                technique: stats.technique.clone(),
                schedules: stats.schedules,
                budget_nanos: budget.map(|b| b.as_nanos() as u64).unwrap_or(0),
            });
        }
        config.telemetry.emit(|| Event::TechniqueFinish {
            benchmark: spec.name.to_string(),
            technique: stats.technique.clone(),
            schedules: stats.schedules,
            executions: stats.executions,
            cache_hits: stats.cache_hits,
            found_bug: stats.found_bug(),
            wall_nanos: stats.explore_nanos,
        });
        if caching {
            config.telemetry.emit(|| Event::CacheSummary {
                program: program.name.clone(),
                technique: stats.technique.clone(),
                hits: stats.cache_hits,
                bytes: stats.cache_bytes,
                full: stats.cache_bytes >= limits.cache_max_bytes,
            });
        }
        stats
    });
    // Stop (and join) the checkpoint thread before the final save so the two
    // never write the artifact's temporary file concurrently.
    drop(checkpointer);

    if let (Some(c), Some(shared)) = (&corpus, &shared) {
        let (saved, records, trie_bytes) = shared.with_live(|cache| {
            (
                c.save_cache(spec.name, key, cache),
                harvest_bugs(&program, &exec_config, cache),
                cache.bytes(),
            )
        });
        saved?;
        for r in &records {
            config.telemetry.emit(|| Event::BugRecorded {
                benchmark: spec.name.to_string(),
                bug: r.bug.to_string(),
                decisions: r.prefix.len() as u64,
                prefix: r.prefix.iter().map(|t| t.0 as u64).collect(),
            });
        }
        config.telemetry.emit(|| Event::CorpusSaved {
            benchmark: spec.name.to_string(),
            bytes: trie_bytes,
            bugs: records.len() as u64,
        });
        c.save_bugs(&BugCorpus {
            benchmark: spec.name.to_string(),
            config: exec_config.clone(),
            records,
        })?;
    }

    config.telemetry.emit(|| Event::BenchmarkFinish {
        benchmark: spec.name.to_string(),
        wall_nanos: bench_started.elapsed().as_nanos() as u64,
    });
    Ok(BenchmarkResult {
        id: spec.id,
        name: spec.name.to_string(),
        suite: spec.suite.name().to_string(),
        races,
        racy_locations: racy.len(),
        static_candidates: analysis.candidates.len(),
        static_locations: static_locations.len(),
        techniques,
        paper: spec.paper,
    })
}

/// Run the whole study over all 52 benchmarks (or a filtered subset),
/// fanning the work out over `config.workers` threads.
///
/// Parallelism is applied at benchmark granularity first (the study has 52
/// largely independent rows) and at technique granularity within each
/// benchmark when workers outnumber benchmarks; every cell runs the same
/// serial exploration either way, so the results — and their order — are
/// identical to a `workers == 1` run.
pub fn run_study(
    config: &HarnessConfig,
    filter: Option<&str>,
) -> Result<StudyResults, CorpusError> {
    let study_started = Instant::now();
    let specs: Vec<BenchmarkSpec> = all_benchmarks()
        .into_iter()
        .filter(|spec| match filter {
            Some(f) => spec.name.to_lowercase().contains(&f.to_lowercase()),
            None => true,
        })
        .collect();
    config.telemetry.emit(|| Event::StudyStart {
        benchmarks: specs.len() as u64,
        techniques: study_techniques(config).len() as u64,
        schedule_limit: config.schedule_limit,
        workers: config.workers.max(1) as u64,
        steal_workers: config.steal_workers.max(1) as u64,
    });
    let workers = config.workers.max(1);
    let outer = workers.min(specs.len().max(1));
    // Leftover parallelism goes to the technique fan-out inside each
    // benchmark (it matters for filtered single-benchmark runs).
    let inner = (workers / outer).max(1);
    let per_benchmark = HarnessConfig {
        workers: inner,
        ..config.clone()
    };
    let benchmarks = map_indexed(specs.len(), outer, |i| {
        run_benchmark(&specs[i], &per_benchmark)
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    config.telemetry.emit(|| Event::StudyFinish {
        benchmarks: benchmarks.len() as u64,
        wall_nanos: study_started.elapsed().as_nanos() as u64,
    });
    Ok(StudyResults {
        benchmarks,
        schedule_limit: config.schedule_limit,
        por: config.por,
        cache: config.cache,
        workers: config.workers.max(1),
        steal_workers: config.steal_workers.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctbench::benchmark_by_name;

    fn quick_config() -> HarnessConfig {
        HarnessConfig {
            schedule_limit: 200,
            race_runs: 5,
            seed: 7,
            use_race_phase: true,
            static_phase: false,
            include_pct: false,
            workers: 2,
            por: false,
            cache: false,
            steal_workers: 1,
            corpus_dir: None,
            resume: false,
            trace: None,
            quiet: false,
            time_budget: None,
            benchmark_deadline: None,
            checkpoint_every: None,
            telemetry: Telemetry::off(),
        }
    }

    #[test]
    fn pipeline_runs_a_single_benchmark_end_to_end() {
        let spec = benchmark_by_name("CS.account_bad").unwrap();
        let result = run_benchmark(&spec, &quick_config()).unwrap();
        assert_eq!(result.techniques.len(), 5);
        assert_eq!(result.techniques[0].technique, "IPB");
        assert_eq!(result.techniques[1].technique, "IDB");
        // account_bad is race-free (every access is individually locked); its
        // bug is an atomicity violation, so it must be found even when only
        // synchronisation operations are scheduling points.
        assert_eq!(result.racy_locations, 0);
        assert!(result.found_by("IDB"), "IDB should find account_bad");
        assert!(result.found_by("Rand"), "Rand should find account_bad");
        assert!(result.threads() >= 4);
    }

    #[test]
    fn race_phase_promotes_locations_for_racy_benchmarks() {
        // stack_bad's popper reads shared state without the lock, so the
        // race-detection phase must report races and promote locations.
        let spec = benchmark_by_name("CS.stack_bad").unwrap();
        let result = run_benchmark(&spec, &quick_config()).unwrap();
        assert!(result.races > 0);
        assert!(result.racy_locations > 0);
        assert!(result.found_by("IDB"));
    }

    #[test]
    fn race_phase_ablation_can_be_disabled() {
        let spec = benchmark_by_name("CS.sync01_bad").unwrap();
        let mut cfg = quick_config();
        cfg.use_race_phase = false;
        let result = run_benchmark(&spec, &cfg).unwrap();
        assert!(result.found_by("IDB"));
    }

    #[test]
    fn static_phase_skips_dynamic_race_runs_but_still_finds_the_bug() {
        let spec = benchmark_by_name("CS.stack_bad").unwrap();
        let mut cfg = quick_config();
        cfg.static_phase = true;
        let result = run_benchmark(&spec, &cfg).unwrap();
        assert_eq!(result.races, 0, "dynamic race phase must be skipped");
        assert!(result.static_candidates > 0);
        assert_eq!(
            result.racy_locations, result.static_locations,
            "static candidates are what gets promoted"
        );
        assert!(result.found_by("IDB"));
    }

    #[test]
    fn static_candidate_columns_are_populated_in_dynamic_mode_too() {
        // lazy01_bad locks every shared access: no static candidates. The
        // columns must still be filled in even though the dynamic race phase
        // (not the analyzer) decided the promoted locations.
        let spec = benchmark_by_name("CS.lazy01_bad").unwrap();
        let result = run_benchmark(&spec, &quick_config()).unwrap();
        assert_eq!(result.static_candidates, 0);
        assert_eq!(result.static_locations, 0);

        // account_bad locks the workers' accesses, but main re-reads the
        // balance without the lock after joining; the analyzer does not model
        // join ordering, so those pairs are (soundly) kept as candidates.
        let spec = benchmark_by_name("CS.account_bad").unwrap();
        let result = run_benchmark(&spec, &quick_config()).unwrap();
        assert!(result.static_candidates >= 2);
    }

    #[test]
    fn study_filter_selects_benchmarks_by_substring() {
        let results = run_study(&quick_config(), Some("splash2")).unwrap();
        assert_eq!(results.benchmarks.len(), 3);
        assert!(results
            .benchmarks
            .iter()
            .all(|b| b.name.starts_with("splash2")));
    }

    #[test]
    fn parallel_study_statistics_are_identical_to_the_serial_run() {
        // Every (benchmark, technique) cell runs the same serial exploration
        // whatever the worker count, so the aggregate study output must be
        // seed-for-seed identical — systematic techniques (IPB/IDB/DFS)
        // included.
        let serial_cfg = HarnessConfig {
            workers: 1,
            por: false,
            ..quick_config()
        };
        let parallel_cfg = HarnessConfig {
            workers: 4,
            por: false,
            ..quick_config()
        };
        let serial = run_study(&serial_cfg, Some("splash2")).unwrap();
        let parallel = run_study(&parallel_cfg, Some("splash2")).unwrap();
        assert_eq!(serial.benchmarks.len(), parallel.benchmarks.len());
        for (s, p) in serial.benchmarks.iter().zip(&parallel.benchmarks) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.races, p.races);
            assert_eq!(s.racy_locations, p.racy_locations);
            assert_eq!(s.techniques, p.techniques, "{}", s.name);
        }
    }

    #[test]
    fn stolen_frontier_study_statistics_are_identical_to_the_serial_run() {
        // `--steal-workers` splits each systematic search's own frontier;
        // the per-cell statistics must still be bit-identical to the serial
        // study (the determinism guarantee of `sct_core::steal`).
        let serial = run_study(&quick_config(), Some("splash2")).unwrap();
        let stolen_cfg = HarnessConfig {
            steal_workers: 4,
            ..quick_config()
        };
        let stolen = run_study(&stolen_cfg, Some("splash2")).unwrap();
        assert_eq!(serial.benchmarks.len(), stolen.benchmarks.len());
        for (s, p) in serial.benchmarks.iter().zip(&stolen.benchmarks) {
            assert_eq!(s.techniques, p.techniques, "{}", s.name);
        }
    }

    #[test]
    fn a_zero_time_budget_yields_deadline_rows_for_every_technique() {
        let spec = benchmark_by_name("CS.lazy01_bad").unwrap();
        let mut cfg = quick_config();
        cfg.time_budget = Some(Duration::ZERO);
        let result = run_benchmark(&spec, &cfg).unwrap();
        assert_eq!(result.techniques.len(), 5);
        for t in &result.techniques {
            assert!(t.deadline_exceeded, "{} must hit the deadline", t.technique);
            assert_eq!(t.schedules, 0, "{} stopped before schedule 1", t.technique);
            assert!(!t.engine_panic, "{}", t.technique);
        }
    }

    #[test]
    fn an_already_passed_benchmark_deadline_still_reports_every_row() {
        let spec = benchmark_by_name("CS.lazy01_bad").unwrap();
        let mut cfg = quick_config();
        cfg.benchmark_deadline = Some(Duration::ZERO);
        let result = run_benchmark(&spec, &cfg).unwrap();
        assert_eq!(result.techniques.len(), 5);
        assert!(result.techniques.iter().all(|t| t.deadline_exceeded));
    }

    #[test]
    fn an_engine_panic_is_isolated_to_one_synthesized_row() {
        use sct_core::{fault, FaultKind};
        // twostage_bad is used by no other test in this crate, so the armed
        // fault (scoped to the program name) cannot trip a concurrent test.
        let spec = benchmark_by_name("CS.twostage_bad").unwrap();
        let _fault = fault::arm(FaultKind::SchedulePanic, "twostage_bad", 1);
        let mut cfg = quick_config();
        // Serial technique order makes the first schedule boundary — and so
        // the panicking unit — deterministically IPB's.
        cfg.workers = 1;
        let result = run_benchmark(&spec, &cfg).unwrap();
        assert_eq!(result.techniques.len(), 5);
        let ipb = result.technique("IPB").unwrap();
        assert!(ipb.engine_panic, "the panicking unit must be marked");
        assert_eq!(ipb.schedules, 0);
        assert!(!ipb.found_bug());
        for t in result.techniques.iter().filter(|t| t.technique != "IPB") {
            assert!(!t.engine_panic, "{} must be unaffected", t.technique);
            assert!(t.schedules > 0, "{} must have kept running", t.technique);
        }
    }

    #[test]
    fn an_engine_panic_mid_campaign_checkpoints_and_resumes_cleanly() {
        use sct_core::{fault, FaultKind};
        // wronglock_bad is used by no other test in this crate, so the
        // program-name-scoped fault cannot trip a concurrent test.
        let spec = benchmark_by_name("CS.wronglock_bad").unwrap();
        let base =
            std::env::temp_dir().join(format!("sct-harness-panic-campaign-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mut cfg = quick_config();
        cfg.workers = 1; // serial technique order: the panic lands in one unit
        cfg.use_race_phase = false;
        let sans_cache = |t: &sct_core::ExplorationStats| {
            let mut t = t.clone();
            t.executions = 0;
            t.cache_hits = 0;
            t.cache_bytes = 0;
            t
        };

        let mut cold_cfg = cfg.clone();
        cold_cfg.corpus_dir = Some(base.join("cold"));
        let cold = run_benchmark(&spec, &cold_cfg).unwrap();
        assert!(cold.techniques.iter().all(|t| !t.engine_panic));

        // Detonate a few schedules past IPB's total, so the blast lands
        // mid-campaign, after real work has already entered the shared trie.
        let nth = cold.technique("IPB").unwrap().schedules + 5;
        let mut fault_cfg = cfg.clone();
        fault_cfg.corpus_dir = Some(base.join("fault"));
        let marked = {
            let _fault = fault::arm(FaultKind::SchedulePanic, "wronglock_bad", nth);
            run_benchmark(&spec, &fault_cfg).unwrap()
        };
        let panicked = marked.techniques.iter().filter(|t| t.engine_panic).count();
        assert_eq!(panicked, 1, "exactly one unit takes the panic");
        for (m, c) in marked.techniques.iter().zip(&cold.techniques) {
            assert_eq!(m.technique, c.technique);
            if !m.engine_panic {
                assert_eq!(sans_cache(m), sans_cache(c), "{}", m.technique);
            }
        }

        // The campaign survived the panic: resuming from its corpus with the
        // fault cleared reproduces the cold run's statistics.
        let mut resumed_cfg = fault_cfg.clone();
        resumed_cfg.resume = true;
        let resumed = run_benchmark(&spec, &resumed_cfg).unwrap();
        for (r, c) in resumed.techniques.iter().zip(&cold.techniques) {
            assert!(!r.engine_panic, "{}", r.technique);
            assert_eq!(sans_cache(r), sans_cache(c), "{}", r.technique);
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn campaign_checkpoints_fire_at_least_once_and_produce_a_loadable_trie() {
        use sct_core::telemetry::BufferRecorder;
        let dir =
            std::env::temp_dir().join(format!("sct-harness-checkpoint-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let buffer = Arc::new(BufferRecorder::default());
        let mut cfg = quick_config();
        cfg.corpus_dir = Some(dir.clone());
        cfg.checkpoint_every = Some(Duration::from_millis(1));
        cfg.telemetry = Telemetry::new(vec![Box::new(Arc::clone(&buffer))]);
        let spec = benchmark_by_name("CS.lazy01_bad").unwrap();
        run_benchmark(&spec, &cfg).unwrap();
        let checkpoints = buffer
            .lines()
            .iter()
            .filter(|l| l.contains("\"type\":\"checkpoint_saved\""))
            .count();
        assert!(checkpoints >= 1, "the teardown checkpoint always fires");
        // The checkpointed artifact must be a valid, resumable trie.
        let mut resumed = cfg.clone();
        resumed.resume = true;
        run_benchmark(&spec, &resumed).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pct_can_be_added_as_a_sixth_technique() {
        let spec = benchmark_by_name("CS.lazy01_bad").unwrap();
        let mut cfg = quick_config();
        cfg.include_pct = true;
        let result = run_benchmark(&spec, &cfg).unwrap();
        assert_eq!(result.techniques.len(), 6);
        assert!(result.technique("PCT").is_some());
    }
}

//! Figure data: the Venn-style bug-finding overlaps of Figure 2 and the
//! scatter series of Figures 3 and 4. The harness emits them as text (for the
//! console) and CSV (for external plotting).

use crate::pipeline::StudyResults;
use std::fmt::Write as _;

/// Counts for a three-set Venn diagram over benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VennCounts {
    /// Found only by the first technique.
    pub only_a: usize,
    /// Found only by the second technique.
    pub only_b: usize,
    /// Found only by the third technique.
    pub only_c: usize,
    /// Found by the first and second but not the third.
    pub ab: usize,
    /// Found by the first and third but not the second.
    pub ac: usize,
    /// Found by the second and third but not the first.
    pub bc: usize,
    /// Found by all three techniques.
    pub abc: usize,
    /// Found by none of the three.
    pub none: usize,
}

impl VennCounts {
    /// Total number of benchmarks whose bug was found by at least one of the
    /// three techniques.
    pub fn found_by_any(&self) -> usize {
        self.only_a + self.only_b + self.only_c + self.ab + self.ac + self.bc + self.abc
    }

    /// Number found by the first technique.
    pub fn total_a(&self) -> usize {
        self.only_a + self.ab + self.ac + self.abc
    }

    /// Number found by the second technique.
    pub fn total_b(&self) -> usize {
        self.only_b + self.ab + self.bc + self.abc
    }

    /// Number found by the third technique.
    pub fn total_c(&self) -> usize {
        self.only_c + self.ac + self.bc + self.abc
    }
}

fn venn(results: &StudyResults, a: &str, b: &str, c: &str) -> VennCounts {
    let mut counts = VennCounts::default();
    for bench in &results.benchmarks {
        let fa = bench.found_by(a);
        let fb = bench.found_by(b);
        let fc = bench.found_by(c);
        match (fa, fb, fc) {
            (true, false, false) => counts.only_a += 1,
            (false, true, false) => counts.only_b += 1,
            (false, false, true) => counts.only_c += 1,
            (true, true, false) => counts.ab += 1,
            (true, false, true) => counts.ac += 1,
            (false, true, true) => counts.bc += 1,
            (true, true, true) => counts.abc += 1,
            (false, false, false) => counts.none += 1,
        }
    }
    counts
}

/// Figure 2a: bug-finding overlap of the systematic techniques
/// (IPB vs IDB vs DFS).
pub fn fig2a(results: &StudyResults) -> VennCounts {
    venn(results, "IPB", "IDB", "DFS")
}

/// Figure 2b: bug-finding overlap of delay bounding against the
/// non-systematic techniques (IDB vs Rand vs MapleAlg).
pub fn fig2b(results: &StudyResults) -> VennCounts {
    venn(results, "IDB", "Rand", "MapleAlg")
}

/// Render a Venn-count structure as indented text.
pub fn venn_to_string(title: &str, names: [&str; 3], v: &VennCounts) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "  only {:<9}: {}", names[0], v.only_a);
    let _ = writeln!(out, "  only {:<9}: {}", names[1], v.only_b);
    let _ = writeln!(out, "  only {:<9}: {}", names[2], v.only_c);
    let _ = writeln!(out, "  {} ∩ {} only : {}", names[0], names[1], v.ab);
    let _ = writeln!(out, "  {} ∩ {} only : {}", names[0], names[2], v.ac);
    let _ = writeln!(out, "  {} ∩ {} only : {}", names[1], names[2], v.bc);
    let _ = writeln!(out, "  all three      : {}", v.abc);
    let _ = writeln!(out, "  none           : {}", v.none);
    let _ = writeln!(
        out,
        "  totals         : {} = {}, {} = {}, {} = {}",
        names[0],
        v.total_a(),
        names[1],
        v.total_b(),
        names[2],
        v.total_c()
    );
    out
}

/// Figure 3 data: for every benchmark where at least one of IPB/IDB found the
/// bug, the number of schedules to the first bug (the "cross") and the total
/// number of schedules explored up to the bound that found the bug (the
/// "square"), for both techniques. Missing bugs are plotted at the schedule
/// limit, as in the paper. Returned as CSV.
pub fn scatter_fig3(results: &StudyResults) -> String {
    let limit = results.schedule_limit;
    let mut out = String::from("id,benchmark,ipb_first_bug,idb_first_bug,ipb_total,idb_total\n");
    for b in &results.benchmarks {
        let ipb = b.technique("IPB");
        let idb = b.technique("IDB");
        let found_any = ipb.map(|s| s.found_bug()).unwrap_or(false)
            || idb.map(|s| s.found_bug()).unwrap_or(false);
        if !found_any {
            continue;
        }
        let first = |s: Option<&sct_core::ExplorationStats>| {
            s.and_then(|s| s.schedules_to_first_bug).unwrap_or(limit)
        };
        let total = |s: Option<&sct_core::ExplorationStats>| {
            s.map(|s| s.schedules.min(limit)).unwrap_or(limit)
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            b.id,
            b.name,
            first(ipb),
            first(idb),
            total(ipb),
            total(idb)
        );
    }
    out
}

/// Figure 4 data: the worst-case number of schedules that might have to be
/// explored to find the bug within the bound (total non-buggy schedules), for
/// IPB and IDB, plus the same "square" totals as Figure 3. Returned as CSV.
pub fn scatter_fig4(results: &StudyResults) -> String {
    let limit = results.schedule_limit;
    let mut out = String::from("id,benchmark,ipb_worst_case,idb_worst_case,ipb_total,idb_total\n");
    for b in &results.benchmarks {
        let ipb = b.technique("IPB");
        let idb = b.technique("IDB");
        let found_any = ipb.map(|s| s.found_bug()).unwrap_or(false)
            || idb.map(|s| s.found_bug()).unwrap_or(false);
        if !found_any {
            continue;
        }
        let worst = |s: Option<&sct_core::ExplorationStats>| {
            s.and_then(|s| s.worst_case_schedules_to_bug())
                .unwrap_or(limit)
        };
        let total = |s: Option<&sct_core::ExplorationStats>| {
            s.map(|s| s.schedules.min(limit)).unwrap_or(limit)
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            b.id,
            b.name,
            worst(ipb),
            worst(idb),
            total(ipb),
            total(idb)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_study, HarnessConfig};

    fn results() -> StudyResults {
        let config = HarnessConfig {
            schedule_limit: 150,
            race_runs: 3,
            seed: 2,
            use_race_phase: true,
            static_phase: false,
            include_pct: false,
            workers: 2,
            por: false,
            cache: false,
            steal_workers: 1,
            corpus_dir: None,
            resume: false,
            ..Default::default()
        };
        run_study(&config, Some("splash2")).unwrap()
    }

    #[test]
    fn venn_counts_partition_the_benchmarks() {
        let r = results();
        let v = fig2a(&r);
        assert_eq!(
            v.found_by_any() + v.none,
            r.benchmarks.len(),
            "Venn cells must partition the benchmark set"
        );
        let v2 = fig2b(&r);
        assert_eq!(v2.found_by_any() + v2.none, r.benchmarks.len());
        let text = venn_to_string("fig2a", ["IPB", "IDB", "DFS"], &v);
        assert!(text.contains("all three"));
    }

    #[test]
    fn idb_dominates_ipb_in_fig2a() {
        // Delay bounding explores a subset of preemption bounding's schedules
        // but iterative DB finds everything iterative PB finds on these
        // benchmarks (the paper's headline result); at minimum IDB's total
        // must not be smaller than IPB's on the splash2 subset.
        let v = fig2a(&results());
        assert!(v.total_b() >= v.total_a());
    }

    #[test]
    fn scatter_series_cover_exactly_the_found_benchmarks() {
        let r = results();
        let fig3 = scatter_fig3(&r);
        let fig4 = scatter_fig4(&r);
        // splash2 bugs are found by both bounding techniques.
        assert_eq!(fig3.lines().count(), 1 + 3);
        assert_eq!(fig4.lines().count(), 1 + 3);
        assert!(fig3.contains("splash2.fft"));
        assert!(fig4.contains("splash2.lu"));
    }
}

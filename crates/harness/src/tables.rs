//! Rendering of the paper's tables from study results.

use crate::pipeline::StudyResults;
use sctbench::{all_benchmarks, Suite};
use std::fmt::Write as _;

/// Table 1: an overview of the benchmark suites (suite, benchmark types,
/// number used, number skipped and why). This table is pure metadata and does
/// not require running any experiment.
pub fn table1() -> String {
    let mut out = String::new();
    let all = all_benchmarks();
    let _ = writeln!(
        out,
        "Table 1: An overview of the benchmark suites used in the study."
    );
    let _ = writeln!(
        out,
        "{:<16} {:<62} {:>7}  # skipped",
        "Benchmark set", "Benchmark types", "# used"
    );
    for suite in Suite::all() {
        let used = all.iter().filter(|b| b.suite == suite).count();
        let (skipped, reason) = suite.skipped();
        let skipped_text = if skipped == 0 {
            "0".to_string()
        } else {
            format!("{skipped} ({reason})")
        };
        let _ = writeln!(
            out,
            "{:<16} {:<62} {:>7}  {}",
            suite.name(),
            suite.description(),
            used,
            skipped_text
        );
    }
    out
}

/// Table 2: properties under which bug-finding is arguably trivial, with the
/// number of benchmarks exhibiting each property (computed from the study
/// results rather than copied from the paper).
pub fn table2(results: &StudyResults) -> String {
    let mut found_with_db0 = 0usize;
    let mut fully_explored = 0usize;
    let mut over_half_random_buggy = 0usize;
    let mut all_random_buggy = 0usize;
    for b in &results.benchmarks {
        if let Some(idb) = b.technique("IDB") {
            if idb.found_bug() && idb.bound_of_first_bug == Some(0) {
                found_with_db0 += 1;
            }
        }
        if let Some(dfs) = b.technique("DFS") {
            if dfs.complete && dfs.schedules < results.schedule_limit {
                fully_explored += 1;
            }
        }
        if let Some(rand) = b.technique("Rand") {
            if rand.buggy_fraction() > 0.5 {
                over_half_random_buggy += 1;
            }
            if rand.schedules > 0 && rand.buggy_schedules == rand.schedules {
                all_random_buggy += 1;
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: Benchmarks where bug-finding is arguably trivial."
    );
    let _ = writeln!(out, "{:<58} {:>12}", "Property", "# benchmarks");
    let _ = writeln!(
        out,
        "{:<58} {:>12}",
        "Bug found with DB = 0", found_with_db0
    );
    let _ = writeln!(
        out,
        "{:<58} {:>12}",
        format!("Total terminal schedules < {}", results.schedule_limit),
        fully_explored
    );
    let _ = writeln!(
        out,
        "{:<58} {:>12}",
        "> 50% of random schedules were buggy", over_half_random_buggy
    );
    let _ = writeln!(
        out,
        "{:<58} {:>12}",
        "Every random schedule was buggy", all_random_buggy
    );
    out
}

fn opt_u64(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "-".to_string())
}

fn opt_u32(v: Option<u32>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "-".to_string())
}

/// The bound column of an iterative-bounding technique: the bound of the
/// first bug when one was found, otherwise the final bound — prefixed with
/// `>` when the search ran out of bound levels, so a row that gave up on
/// bounds is distinguishable from one that stopped at that bound for any
/// other reason.
fn bound_cell(s: &sct_core::stats::ExplorationStats) -> String {
    match (s.bound_of_first_bug, s.final_bound) {
        (Some(b), _) => b.to_string(),
        (None, Some(b)) if s.bound_exhausted => format!(">{b}"),
        (None, b) => opt_u32(b),
    }
}

/// Table 3: the full per-benchmark results. One line per benchmark with the
/// per-technique columns of the paper (bound, schedules to first bug, total
/// schedules, new schedules at the bound, buggy schedules for IPB/IDB;
/// schedules-to-first-bug and buggy counts for DFS/Rand; found?/schedules for
/// MapleAlg).
pub fn table3(results: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: Experimental results (schedule limit {}{}{}).",
        results.schedule_limit,
        if results.por {
            "; DFS/IPB/IDB with sleep-set partial-order reduction"
        } else {
            ""
        },
        if results.cache {
            "; IPB/IDB with schedule caching"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "{:<28} {:>3} {:>4} {:>6} | {:>3} {:>7} {:>7} {:>7} {:>6} | {:>3} {:>7} {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6} | {:>7} {:>6} | {:>5} {:>7} | {:>8}",
        "benchmark", "thr", "en", "sp",
        "PB", "first", "total", "new", "buggy",
        "DB", "first", "total", "new", "buggy",
        "first", "total", "buggy",
        "first", "buggy",
        "found", "scheds",
        "ms"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>3} {:>4} {:>6} | {:^35} | {:^35} | {:^22} | {:^14} | {:^13} | {:^8}",
        "", "", "", "", "IPB", "IDB", "DFS", "Rand", "MapleAlg", "wall"
    );
    for b in &results.benchmarks {
        let ipb = b.technique("IPB");
        let idb = b.technique("IDB");
        let dfs = b.technique("DFS");
        let rand = b.technique("Rand");
        let maple = b.technique("MapleAlg");
        // Whole-row wall clock: phase 1 once (every technique row carries the
        // same stamp) plus each technique's exploration time.
        let wall_nanos = b.techniques.first().map(|t| t.race_nanos).unwrap_or(0)
            + b.techniques.iter().map(|t| t.explore_nanos).sum::<u64>();
        let _ = writeln!(
            out,
            "{:<28} {:>3} {:>4} {:>6} | {:>3} {:>7} {:>7} {:>7} {:>6} | {:>3} {:>7} {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6} | {:>7} {:>6} | {:>5} {:>7} | {:>8.1}",
            b.name,
            b.threads(),
            b.max_enabled(),
            b.max_scheduling_points(),
            ipb.map(bound_cell).unwrap_or_default(),
            ipb.map(|s| opt_u64(s.schedules_to_first_bug)).unwrap_or_default(),
            ipb.map(|s| s.schedules.to_string()).unwrap_or_default(),
            ipb.map(|s| s.new_schedules_at_final_bound.to_string()).unwrap_or_default(),
            ipb.map(|s| s.buggy_schedules.to_string()).unwrap_or_default(),
            idb.map(bound_cell).unwrap_or_default(),
            idb.map(|s| opt_u64(s.schedules_to_first_bug)).unwrap_or_default(),
            idb.map(|s| s.schedules.to_string()).unwrap_or_default(),
            idb.map(|s| s.new_schedules_at_final_bound.to_string()).unwrap_or_default(),
            idb.map(|s| s.buggy_schedules.to_string()).unwrap_or_default(),
            dfs.map(|s| opt_u64(s.schedules_to_first_bug)).unwrap_or_default(),
            dfs.map(|s| s.schedules.to_string()).unwrap_or_default(),
            dfs.map(|s| s.buggy_schedules.to_string()).unwrap_or_default(),
            rand.map(|s| opt_u64(s.schedules_to_first_bug)).unwrap_or_default(),
            rand.map(|s| s.buggy_schedules.to_string()).unwrap_or_default(),
            maple.map(|s| if s.found_bug() { "yes" } else { "no" }.to_string()).unwrap_or_default(),
            maple.map(|s| s.schedules.to_string()).unwrap_or_default(),
            wall_nanos as f64 / 1e6,
        );
    }
    out
}

/// Table 3 as machine-readable CSV (one row per benchmark/technique pair).
///
/// The two wall-clock columns come last so consumers that compare runs can
/// keep cutting the deterministic prefix (`cut -d, -f1-22` in CI): timing is
/// the one part of a row that legitimately differs between identical
/// explorations. The two robustness markers (`deadline_exceeded`,
/// `engine_panic`) sit just before them — like timing they are environmental,
/// not properties of the search, but a marked row is exactly what a consumer
/// filtering for clean runs needs to see.
pub fn table3_csv(results: &StudyResults) -> String {
    let mut out = String::from(
        "id,benchmark,suite,technique,threads,max_enabled,max_scheduling_points,races,racy_locations,\
         static_candidates,static_locations,\
         bound,schedules_to_first_bug,schedules,new_schedules,buggy_schedules,diverged,\
         slept,pruned_by_sleep,complete,hit_limit,bound_exhausted,executions,cache_hits,cache_bytes,\
         deadline_exceeded,engine_panic,explore_nanos,race_nanos\n",
    );
    for b in &results.benchmarks {
        for t in &b.techniques {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                b.id,
                b.name,
                b.suite,
                t.technique,
                t.total_threads,
                t.max_enabled_threads,
                t.max_scheduling_points,
                b.races,
                b.racy_locations,
                b.static_candidates,
                b.static_locations,
                opt_u32(t.bound_of_first_bug.or(t.final_bound)),
                opt_u64(t.schedules_to_first_bug),
                t.schedules,
                t.new_schedules_at_final_bound,
                t.buggy_schedules,
                t.diverged_schedules,
                t.slept,
                t.pruned_by_sleep,
                t.complete,
                t.hit_schedule_limit,
                t.bound_exhausted,
                t.executions,
                t.cache_hits,
                t.cache_bytes,
                t.deadline_exceeded,
                t.engine_panic,
                t.explore_nanos,
                t.race_nanos,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_study, HarnessConfig};

    fn tiny_results() -> StudyResults {
        let config = HarnessConfig {
            schedule_limit: 100,
            race_runs: 3,
            seed: 1,
            use_race_phase: true,
            static_phase: false,
            include_pct: false,
            workers: 2,
            por: false,
            cache: false,
            steal_workers: 1,
            corpus_dir: None,
            resume: false,
            ..Default::default()
        };
        run_study(&config, Some("splash2")).unwrap()
    }

    #[test]
    fn table1_lists_every_suite_with_52_benchmarks_total() {
        let t = table1();
        for suite in [
            "CB",
            "CHESS",
            "CS",
            "Inspect",
            "PARSEC",
            "RADBenchmark",
            "SPLASH-2",
        ] {
            assert!(t.contains(suite), "missing {suite} in table 1:\n{t}");
        }
        // The "# used" column must sum to 52.
        let total: usize = Suite::all()
            .iter()
            .map(|s| all_benchmarks().iter().filter(|b| b.suite == *s).count())
            .sum();
        assert_eq!(total, 52);
    }

    #[test]
    fn table2_and_table3_render_from_results() {
        let results = tiny_results();
        let t2 = table2(&results);
        assert!(t2.contains("Bug found with DB = 0"));
        let t3 = table3(&results);
        assert!(t3.contains("splash2.barnes"));
        assert!(t3.contains("IPB"));
        let csv = table3_csv(&results);
        // Header plus 3 benchmarks x 5 techniques.
        assert_eq!(csv.lines().count(), 1 + 3 * 5);
        assert!(csv.lines().nth(1).unwrap().contains("splash2.barnes"));
        // Every row has as many fields as the header declares.
        let fields = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), fields, "{line}");
        }
    }
}

//! Machine-readable per-study performance summary (`perf.json`).
//!
//! `sct-experiments` writes one `perf.json` per study next to the tables: a
//! single JSON object with one point per benchmark × technique carrying the
//! raw counters (schedules, executions), the per-phase wall clock
//! (`wall_nanos` for the exploration, `race_nanos` for phase 1) and the
//! derived throughput rates. The file exists so performance tracking across
//! runs — schedules/sec per worker configuration — needs no parsing of the
//! human tables; timing never feeds back into any differential comparison.

use crate::pipeline::StudyResults;
use sct_core::telemetry::json_string;
use std::fmt::Write as _;

/// Throughput in events per second, `0.0` when no time was observed (the
/// stamp resolution undershot the work, or the point is empty).
fn per_sec(count: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        return 0.0;
    }
    count as f64 / (nanos as f64 / 1e9)
}

/// Render the study's performance points as a JSON document.
///
/// Shape:
///
/// ```json
/// {
///   "schedule_limit": 2000,
///   "workers": 4,
///   "steal_workers": 1,
///   "points": [
///     {"benchmark": "CS.reorder_3", "technique": "IPB", "workers": 4,
///      "steal_workers": 1, "schedules": 252, "executions": 252,
///      "wall_nanos": 1200345, "race_nanos": 80021,
///      "schedules_per_sec": 209939.9, "executions_per_sec": 209939.9}
///   ]
/// }
/// ```
pub fn perf_json(results: &StudyResults) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"schedule_limit\":{},\"workers\":{},\"steal_workers\":{},\"points\":[",
        results.schedule_limit, results.workers, results.steal_workers
    );
    let mut first = true;
    for b in &results.benchmarks {
        for t in &b.techniques {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"benchmark\":{},\"technique\":{},\"workers\":{},\"steal_workers\":{},\
                 \"schedules\":{},\"executions\":{},\"wall_nanos\":{},\"race_nanos\":{},\
                 \"schedules_per_sec\":{:.1},\"executions_per_sec\":{:.1}}}",
                json_string(&b.name),
                json_string(&t.technique),
                results.workers,
                results.steal_workers,
                t.schedules,
                t.executions,
                t.explore_nanos,
                t.race_nanos,
                per_sec(t.schedules, t.explore_nanos),
                per_sec(t.executions, t.explore_nanos),
            );
        }
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_study, HarnessConfig};

    #[test]
    fn perf_json_has_one_point_per_benchmark_technique_pair() {
        let config = HarnessConfig {
            schedule_limit: 100,
            race_runs: 3,
            workers: 2,
            ..Default::default()
        };
        let results = run_study(&config, Some("splash2")).unwrap();
        let json = perf_json(&results);
        // 3 splash2 benchmarks × 5 techniques.
        assert_eq!(json.matches("\"benchmark\":").count(), 15);
        assert_eq!(json.matches("\"schedules_per_sec\":").count(), 15);
        assert!(json.contains("\"workers\":2"));
        // Exploration actually took time, so at least one stamp is nonzero.
        assert!(
            results.benchmarks[0]
                .techniques
                .iter()
                .any(|t| t.explore_nanos > 0),
            "explore_nanos never stamped"
        );
    }

    #[test]
    fn rates_degrade_to_zero_without_observed_time() {
        assert_eq!(per_sec(100, 0), 0.0);
        assert!((per_sec(10, 1_000_000_000) - 10.0).abs() < 1e-9);
    }
}

//! # sct-harness
//!
//! The experiment pipeline of the PPoPP'14 study, end to end: for every
//! SCTBench benchmark it runs the race-detection phase (§5), then each of the
//! techniques (IPB, IDB, DFS, Rand, MapleAlg — plus optionally PCT) under a
//! terminal-schedule limit, and finally renders the paper's tables and
//! figures from the collected statistics:
//!
//! * **Table 1** — benchmark-suite overview;
//! * **Table 2** — "trivial benchmark" properties;
//! * **Table 3** — the full per-benchmark, per-technique results table;
//! * **Figure 2a/2b** — Venn-style bug-finding overlap counts;
//! * **Figure 3** — schedules-to-first-bug scatter (IPB vs IDB);
//! * **Figure 4** — worst-case (non-buggy schedules) scatter (IPB vs IDB).
//!
//! Two binaries drive it: `sct-experiments` runs the whole study and writes
//! every artefact to an output directory; `sct-table` runs a single table or
//! figure (optionally on a subset of benchmarks) and prints it.

pub mod cli;
pub mod figures;
pub mod perf;
pub mod pipeline;
pub mod report;
pub mod tables;

pub use cli::{build_telemetry, parse_common_flag, COMMON_USAGE};
pub use figures::{fig2a, fig2b, scatter_fig3, scatter_fig4, VennCounts};
pub use perf::perf_json;
pub use pipeline::{run_benchmark, run_study, BenchmarkResult, HarnessConfig, StudyResults};
pub use report::experiments_markdown;
pub use tables::{table1, table2, table3, table3_csv};

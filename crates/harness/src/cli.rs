//! Shared command-line parsing for the harness binaries.
//!
//! `sct-experiments` and `sct-table` accept the same study-configuration
//! flags; this module parses them in one place so a new flag (such as
//! `--steal-workers`) shows up in both binaries — and both usage strings —
//! without hand-duplicated match arms that can drift apart.

use crate::pipeline::HarnessConfig;
use sct_core::telemetry::{Heartbeat, JsonlRecorder, Recorder, Telemetry};
use std::path::PathBuf;
use std::time::Duration;

/// Usage fragment for the shared study flags, in match order. The binaries
/// splice this into their usage strings so the flag lists cannot go stale.
pub const COMMON_USAGE: &str = "[--schedules N] [--race-runs N] [--seed N] [--filter SUBSTR] \
[--no-race-phase] [--static-phase] [--with-pct] [--por] [--schedule-cache] [--workers N] \
[--steal-workers N] [--corpus-dir DIR] [--resume] [--time-budget DUR] \
[--benchmark-deadline DUR] [--checkpoint-every DUR] [--trace PATH] [--quiet]";

fn value(rest: &mut dyn Iterator<Item = String>, name: &str) -> Result<String, String> {
    rest.next()
        .ok_or_else(|| format!("missing value for {name}"))
}

fn parsed<T>(rest: &mut dyn Iterator<Item = String>, name: &str) -> Result<T, String>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    value(rest, name)?
        .parse()
        .map_err(|e| format!("{name}: {e}"))
}

/// Like [`parsed`], but rejects zero: a `--schedules 0` or `--race-runs 0`
/// study would run nothing while exiting cleanly, which is indistinguishable
/// from a healthy all-pass run in CI logs.
fn positive<T>(rest: &mut dyn Iterator<Item = String>, name: &str) -> Result<T, String>
where
    T: std::str::FromStr + Default + PartialEq,
    T::Err: std::fmt::Display,
{
    let parsed: T = parsed(rest, name)?;
    if parsed == T::default() {
        return Err(format!(
            "{name} must be at least 1 (0 would run an empty study that looks clean)"
        ));
    }
    Ok(parsed)
}

/// Parse a wall-clock duration flag value: a positive integer with an
/// optional `ms`/`s`/`m`/`h` suffix (a bare number means seconds). Zero is
/// rejected for the same reason [`positive`] rejects it: a zero budget
/// deadlines every technique before its first schedule, so the "study" exits
/// cleanly having explored nothing.
fn duration(rest: &mut dyn Iterator<Item = String>, name: &str) -> Result<Duration, String> {
    let text = value(rest, name)?;
    let (digits, scale_millis) = if let Some(n) = text.strip_suffix("ms") {
        (n, 1u64)
    } else if let Some(n) = text.strip_suffix('s') {
        (n, 1_000)
    } else if let Some(n) = text.strip_suffix('m') {
        (n, 60_000)
    } else if let Some(n) = text.strip_suffix('h') {
        (n, 3_600_000)
    } else {
        (text.as_str(), 1_000)
    };
    let count: u64 = digits
        .parse()
        .map_err(|_| format!("{name}: {text:?} is not a duration (try 500ms, 30s, 10m, 2h)"))?;
    if count == 0 {
        return Err(format!(
            "{name} must be a positive duration (0 would deadline every technique before schedule 1)"
        ));
    }
    Ok(Duration::from_millis(count.saturating_mul(scale_millis)))
}

/// Try to consume `arg` (and its value, if it takes one, from `rest`) as one
/// of the shared study flags, updating `config` / `filter` in place. Returns
/// `Ok(true)` when the flag was recognised, `Ok(false)` when the caller
/// should handle it as a binary-specific argument, and `Err` for a missing
/// or malformed value. Repeating a flag is allowed and the last occurrence
/// wins (each match arm overwrites the field).
pub fn parse_common_flag(
    config: &mut HarnessConfig,
    filter: &mut Option<String>,
    arg: &str,
    rest: &mut dyn Iterator<Item = String>,
) -> Result<bool, String> {
    match arg {
        "--schedules" => config.schedule_limit = positive(rest, "--schedules")?,
        "--race-runs" => config.race_runs = positive(rest, "--race-runs")?,
        "--seed" => config.seed = parsed(rest, "--seed")?,
        "--filter" => *filter = Some(value(rest, "--filter")?),
        "--no-race-phase" => config.use_race_phase = false,
        "--static-phase" => config.static_phase = true,
        "--with-pct" => config.include_pct = true,
        "--por" => config.por = true,
        "--schedule-cache" => config.cache = true,
        "--workers" => config.workers = parsed::<usize>(rest, "--workers")?.max(1),
        "--steal-workers" => {
            config.steal_workers = parsed::<usize>(rest, "--steal-workers")?.max(1);
        }
        "--corpus-dir" => config.corpus_dir = Some(PathBuf::from(value(rest, "--corpus-dir")?)),
        "--resume" => config.resume = true,
        "--time-budget" => config.time_budget = Some(duration(rest, "--time-budget")?),
        "--benchmark-deadline" => {
            config.benchmark_deadline = Some(duration(rest, "--benchmark-deadline")?);
        }
        "--checkpoint-every" => {
            config.checkpoint_every = Some(duration(rest, "--checkpoint-every")?);
        }
        // Only the path is recorded here; the trace file is opened once, by
        // `build_telemetry`, after parsing finishes — so a repeated `--trace`
        // follows last-wins like every other flag instead of creating (and
        // leaking) a file per occurrence.
        "--trace" => config.trace = Some(PathBuf::from(value(rest, "--trace")?)),
        "--quiet" => config.quiet = true,
        _ => return Ok(false),
    }
    Ok(true)
}

/// Build the telemetry handle a parsed [`HarnessConfig`] asks for: a JSONL
/// recorder writing to `--trace`'s path (the file is created here, truncating
/// any previous run) and — unless `--quiet` — a stderr progress heartbeat
/// printing at most once a second. With neither, the handle is
/// [`Telemetry::off`] and every emission in the pipeline is free. The result
/// should be stored into [`HarnessConfig::telemetry`] before the study runs.
pub fn build_telemetry(config: &HarnessConfig) -> Result<Telemetry, String> {
    let mut recorders: Vec<Box<dyn Recorder>> = Vec::new();
    if let Some(path) = &config.trace {
        let jsonl =
            JsonlRecorder::create(path).map_err(|e| format!("--trace {}: {e}", path.display()))?;
        recorders.push(Box::new(jsonl));
    }
    // The heartbeat is on by default — it is the liveness signal for long
    // studies — and `--quiet` removes it. `Telemetry::new` of an empty
    // recorder list collapses to the off handle, so `--quiet` without
    // `--trace` pays nothing.
    if !config.quiet {
        recorders.push(Box::new(Heartbeat::new(Duration::from_secs(1))));
    }
    Ok(Telemetry::new(recorders))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(args: &[&str]) -> Result<(HarnessConfig, Option<String>), String> {
        let mut config = HarnessConfig::default();
        let mut filter = None;
        let mut rest = args.iter().map(|s| s.to_string());
        while let Some(arg) = rest.next() {
            if !parse_common_flag(&mut config, &mut filter, &arg, &mut rest)? {
                return Err(format!("unknown argument: {arg}"));
            }
        }
        Ok((config, filter))
    }

    #[test]
    fn every_shared_flag_is_parsed() {
        let (config, filter) = parse(&[
            "--schedules",
            "123",
            "--race-runs",
            "4",
            "--seed",
            "99",
            "--filter",
            "splash",
            "--no-race-phase",
            "--static-phase",
            "--with-pct",
            "--por",
            "--schedule-cache",
            "--workers",
            "3",
            "--steal-workers",
            "8",
            "--corpus-dir",
            "corpus",
            "--resume",
            "--time-budget",
            "5s",
            "--benchmark-deadline",
            "2m",
            "--checkpoint-every",
            "500ms",
            "--trace",
            "events.jsonl",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(config.schedule_limit, 123);
        assert_eq!(config.race_runs, 4);
        assert_eq!(config.seed, 99);
        assert_eq!(filter.as_deref(), Some("splash"));
        assert!(!config.use_race_phase);
        assert!(config.static_phase);
        assert!(config.include_pct);
        assert!(config.por);
        assert!(config.cache);
        assert_eq!(config.workers, 3);
        assert_eq!(config.steal_workers, 8);
        assert_eq!(config.corpus_dir.as_deref(), Some(Path::new("corpus")));
        assert!(config.resume);
        assert_eq!(config.time_budget, Some(Duration::from_secs(5)));
        assert_eq!(config.benchmark_deadline, Some(Duration::from_secs(120)));
        assert_eq!(config.checkpoint_every, Some(Duration::from_millis(500)));
        assert_eq!(config.trace.as_deref(), Some(Path::new("events.jsonl")));
        assert!(config.quiet);
    }

    #[test]
    fn durations_accept_unit_suffixes_and_default_to_seconds() {
        let (config, _) = parse(&["--time-budget", "90"]).unwrap();
        assert_eq!(config.time_budget, Some(Duration::from_secs(90)));
        let (config, _) = parse(&["--time-budget", "250ms"]).unwrap();
        assert_eq!(config.time_budget, Some(Duration::from_millis(250)));
        let (config, _) = parse(&["--benchmark-deadline", "3h"]).unwrap();
        assert_eq!(
            config.benchmark_deadline,
            Some(Duration::from_secs(3 * 3600))
        );
    }

    #[test]
    fn zero_and_malformed_durations_are_rejected() {
        for flag in [
            "--time-budget",
            "--benchmark-deadline",
            "--checkpoint-every",
        ] {
            let err = parse(&[flag, "0"]).unwrap_err();
            assert!(err.contains(flag), "{err}");
            assert!(err.contains("positive duration"), "{err}");
            let err = parse(&[flag, "0s"]).unwrap_err();
            assert!(err.contains("positive duration"), "{err}");
            let err = parse(&[flag, "fast"]).unwrap_err();
            assert!(err.contains("not a duration"), "{err}");
            let err = parse(&[flag, "1.5s"]).unwrap_err();
            assert!(err.contains("not a duration"), "{err}");
            assert!(parse(&[flag]).unwrap_err().contains("missing"), "{flag}");
        }
    }

    #[test]
    fn duplicated_duration_flags_are_last_wins() {
        let (config, _) = parse(&[
            "--time-budget",
            "5s",
            "--benchmark-deadline",
            "10s",
            "--time-budget",
            "7s",
            "--benchmark-deadline",
            "20s",
        ])
        .unwrap();
        assert_eq!(config.time_budget, Some(Duration::from_secs(7)));
        assert_eq!(config.benchmark_deadline, Some(Duration::from_secs(20)));
    }

    #[test]
    fn zero_schedule_and_race_run_budgets_are_rejected() {
        let err = parse(&["--schedules", "0"]).unwrap_err();
        assert!(err.contains("--schedules"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&["--race-runs", "0"]).unwrap_err();
        assert!(err.contains("--race-runs"), "{err}");
    }

    #[test]
    fn duplicated_flags_are_last_wins() {
        let (config, filter) = parse(&[
            "--schedules",
            "5",
            "--filter",
            "first",
            "--schedules",
            "9",
            "--filter",
            "second",
            "--corpus-dir",
            "a",
            "--corpus-dir",
            "b",
        ])
        .unwrap();
        assert_eq!(config.schedule_limit, 9);
        assert_eq!(filter.as_deref(), Some("second"));
        assert_eq!(config.corpus_dir.as_deref(), Some(Path::new("b")));
    }

    #[test]
    fn duplicated_trace_and_quiet_flags_are_last_wins() {
        // `--trace` only records the path at parse time (the file is opened
        // later, by `build_telemetry`), so repeating it must follow the same
        // last-wins convention as every other flag — no file is created for
        // the overridden occurrence. `--quiet` is idempotent.
        let (config, _) = parse(&[
            "--trace",
            "first.jsonl",
            "--quiet",
            "--trace",
            "second.jsonl",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(config.trace.as_deref(), Some(Path::new("second.jsonl")));
        assert!(config.quiet);
        assert!(
            !Path::new("first.jsonl").exists() && !Path::new("second.jsonl").exists(),
            "parsing alone must not open trace files"
        );
    }

    #[test]
    fn build_telemetry_is_off_for_quiet_untraced_runs() {
        let mut config = HarnessConfig {
            quiet: true,
            ..HarnessConfig::default()
        };
        assert!(!build_telemetry(&config).unwrap().is_on());
        // Default (not quiet, no trace): the heartbeat alone keeps it on.
        config.quiet = false;
        assert!(build_telemetry(&config).unwrap().is_on());
    }

    #[test]
    fn build_telemetry_reports_unwritable_trace_paths() {
        let config = HarnessConfig {
            trace: Some(PathBuf::from("/nonexistent-dir/trace.jsonl")),
            ..HarnessConfig::default()
        };
        let err = build_telemetry(&config).unwrap_err();
        assert!(err.contains("--trace"), "{err}");
    }

    #[test]
    fn worker_counts_are_clamped_to_at_least_one() {
        let (config, _) = parse(&["--workers", "0", "--steal-workers", "0"]).unwrap();
        assert_eq!(config.workers, 1);
        assert_eq!(config.steal_workers, 1);
    }

    #[test]
    fn unknown_flags_are_left_to_the_caller() {
        assert!(parse(&["--out", "dir"]).is_err());
        let mut config = HarnessConfig::default();
        let mut filter = None;
        let mut rest = std::iter::empty();
        assert_eq!(
            parse_common_flag(&mut config, &mut filter, "--out", &mut rest),
            Ok(false)
        );
    }

    #[test]
    fn missing_and_malformed_values_are_reported() {
        assert!(parse(&["--schedules"]).unwrap_err().contains("missing"));
        assert!(parse(&["--seed", "not-a-number"])
            .unwrap_err()
            .contains("--seed"));
    }

    #[test]
    fn usage_string_names_every_shared_flag() {
        for flag in [
            "--schedules",
            "--race-runs",
            "--seed",
            "--filter",
            "--no-race-phase",
            "--static-phase",
            "--with-pct",
            "--por",
            "--schedule-cache",
            "--workers",
            "--steal-workers",
            "--corpus-dir",
            "--resume",
            "--time-budget",
            "--benchmark-deadline",
            "--checkpoint-every",
            "--trace",
            "--quiet",
        ] {
            assert!(COMMON_USAGE.contains(flag), "{flag} missing from usage");
        }
    }
}

//! Program-level declarations: identifiers, global variables, synchronisation
//! objects and thread templates.

use crate::error::IrError;
use crate::instr::{Instr, Op};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index of this identifier within its declaration table.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a shared global variable (scalar or array base).
    VarId,
    "g"
);
id_type!(
    /// Identifier of a per-thread local slot.
    LocalId,
    "l"
);
id_type!(
    /// Identifier of a mutex declaration (possibly an array of mutexes).
    MutexId,
    "m"
);
id_type!(
    /// Identifier of a condition-variable declaration.
    CondvarId,
    "cv"
);
id_type!(
    /// Identifier of a counting-semaphore declaration.
    SemId,
    "s"
);
id_type!(
    /// Identifier of a barrier declaration.
    BarrierId,
    "bar"
);
id_type!(
    /// Identifier of a thread template (the static "body" threads are spawned from).
    TemplateId,
    "T"
);

/// Declaration of a shared global variable.
///
/// A declaration with `len > 1` is an array of `len` cells; cell `0` of a
/// scalar declaration is addressed without an index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Human-readable name used in traces and pretty printing.
    pub name: String,
    /// Number of cells (1 for a scalar).
    pub len: u32,
    /// Initial values, one per cell.
    pub init: Vec<i64>,
}

/// Declaration of one or more mutexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutexDecl {
    /// Human-readable name.
    pub name: String,
    /// Number of mutexes declared under this identifier (1 for a single mutex).
    pub len: u32,
}

/// Declaration of one or more condition variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondvarDecl {
    /// Human-readable name.
    pub name: String,
    /// Number of condition variables declared under this identifier.
    pub len: u32,
}

/// Declaration of one or more counting semaphores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemDecl {
    /// Human-readable name.
    pub name: String,
    /// Number of semaphores declared under this identifier.
    pub len: u32,
    /// Initial count of each semaphore.
    pub init: i64,
}

/// Declaration of one or more barriers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierDecl {
    /// Human-readable name.
    pub name: String,
    /// Number of barriers declared under this identifier.
    pub len: u32,
    /// Number of threads that must arrive before the barrier releases.
    pub participants: u32,
}

/// A compiled thread template: a flat instruction sequence plus the number of
/// local slots its body uses.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// Human-readable name used in traces.
    pub name: String,
    /// Number of per-thread local slots (locals are initialised to zero).
    pub locals: u32,
    /// Flat instruction sequence produced by [`crate::compile::compile_body`].
    pub body: Vec<Instr>,
}

/// A complete multi-threaded test program.
///
/// The program starts with a single thread running `templates[main]`; further
/// threads are created with `Spawn` instructions and are numbered in creation
/// order (the initial thread has id 0), which is the order used by the
/// round-robin deterministic scheduler that underpins delay bounding.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (benchmark id).
    pub name: String,
    /// Shared global variables.
    pub globals: Vec<GlobalDecl>,
    /// Mutex declarations.
    pub mutexes: Vec<MutexDecl>,
    /// Condition-variable declarations.
    pub condvars: Vec<CondvarDecl>,
    /// Semaphore declarations.
    pub sems: Vec<SemDecl>,
    /// Barrier declarations.
    pub barriers: Vec<BarrierDecl>,
    /// Thread templates (bodies).
    pub templates: Vec<Template>,
    /// Template executed by the initial thread.
    pub main: TemplateId,
}

impl Program {
    /// Total number of global memory cells (arrays flattened).
    pub fn global_cells(&self) -> usize {
        self.globals.iter().map(|g| g.len as usize).sum()
    }

    /// Offset of the first cell of `var` in the flattened global store.
    pub fn global_offset(&self, var: VarId) -> usize {
        self.globals[..var.index()]
            .iter()
            .map(|g| g.len as usize)
            .sum()
    }

    /// Total number of mutex instances (arrays flattened).
    pub fn mutex_instances(&self) -> usize {
        self.mutexes.iter().map(|m| m.len as usize).sum()
    }

    /// Offset of the first instance of `id` in the flattened mutex table.
    pub fn mutex_offset(&self, id: MutexId) -> usize {
        self.mutexes[..id.index()]
            .iter()
            .map(|m| m.len as usize)
            .sum()
    }

    /// Total number of condition-variable instances.
    pub fn condvar_instances(&self) -> usize {
        self.condvars.iter().map(|c| c.len as usize).sum()
    }

    /// Offset of the first instance of `id` in the flattened condvar table.
    pub fn condvar_offset(&self, id: CondvarId) -> usize {
        self.condvars[..id.index()]
            .iter()
            .map(|c| c.len as usize)
            .sum()
    }

    /// Total number of semaphore instances.
    pub fn sem_instances(&self) -> usize {
        self.sems.iter().map(|s| s.len as usize).sum()
    }

    /// Offset of the first instance of `id` in the flattened semaphore table.
    pub fn sem_offset(&self, id: SemId) -> usize {
        self.sems[..id.index()].iter().map(|s| s.len as usize).sum()
    }

    /// Total number of barrier instances.
    pub fn barrier_instances(&self) -> usize {
        self.barriers.iter().map(|b| b.len as usize).sum()
    }

    /// Offset of the first instance of `id` in the flattened barrier table.
    pub fn barrier_offset(&self, id: BarrierId) -> usize {
        self.barriers[..id.index()]
            .iter()
            .map(|b| b.len as usize)
            .sum()
    }

    /// An upper bound on the number of threads the program can create,
    /// assuming each `Spawn` instruction executes at most `loop_bound` times.
    ///
    /// This is only a heuristic used for sizing vector clocks; the runtime
    /// grows its tables dynamically.
    pub fn spawn_sites(&self) -> usize {
        self.templates
            .iter()
            .flat_map(|t| t.body.iter())
            .filter(|i| {
                matches!(
                    i,
                    Instr::Op {
                        op: Op::Spawn { .. },
                        ..
                    }
                )
            })
            .count()
    }

    /// Structural validation: every identifier referenced by an instruction
    /// must be declared, jump targets must be in range, and initialiser
    /// lengths must match declaration lengths.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.main.index() >= self.templates.len() {
            return Err(IrError::UnknownTemplate(self.main));
        }
        for (gi, g) in self.globals.iter().enumerate() {
            if g.len == 0 {
                return Err(IrError::EmptyDeclaration(format!("global `{}`", g.name)));
            }
            if g.init.len() != g.len as usize {
                return Err(IrError::InitLengthMismatch {
                    name: g.name.clone(),
                    declared: g.len as usize,
                    provided: g.init.len(),
                });
            }
            let _ = gi;
        }
        for m in &self.mutexes {
            if m.len == 0 {
                return Err(IrError::EmptyDeclaration(format!("mutex `{}`", m.name)));
            }
        }
        for b in &self.barriers {
            if b.participants == 0 {
                return Err(IrError::EmptyDeclaration(format!(
                    "barrier `{}` with zero participants",
                    b.name
                )));
            }
        }
        for (ti, t) in self.templates.iter().enumerate() {
            for (pc, instr) in t.body.iter().enumerate() {
                self.validate_instr(TemplateId(ti as u32), pc, instr, t)?;
            }
        }
        Ok(())
    }

    fn validate_instr(
        &self,
        template: TemplateId,
        pc: usize,
        instr: &Instr,
        t: &Template,
    ) -> Result<(), IrError> {
        let check_local = |l: LocalId| -> Result<(), IrError> {
            if l.index() >= t.locals as usize {
                Err(IrError::UnknownLocal {
                    template,
                    pc,
                    local: l,
                })
            } else {
                Ok(())
            }
        };
        let check_target = |target: usize| -> Result<(), IrError> {
            if target > t.body.len() {
                Err(IrError::JumpOutOfRange {
                    template,
                    pc,
                    target,
                    len: t.body.len(),
                })
            } else {
                Ok(())
            }
        };
        match instr {
            Instr::Goto { target } => check_target(*target)?,
            Instr::Branch { target, .. } => check_target(*target)?,
            Instr::Halt => {}
            Instr::Op { op, .. } => match op {
                Op::Load { var, dst, .. } => {
                    self.check_var(template, pc, var.var)?;
                    check_local(*dst)?;
                }
                Op::Store { var, .. } => self.check_var(template, pc, var.var)?,
                Op::Rmw { var, dst_old, .. } => {
                    self.check_var(template, pc, var.var)?;
                    if let Some(d) = dst_old {
                        check_local(*d)?;
                    }
                }
                Op::Cas {
                    var,
                    dst_success,
                    dst_old,
                    ..
                } => {
                    self.check_var(template, pc, var.var)?;
                    if let Some(d) = dst_success {
                        check_local(*d)?;
                    }
                    if let Some(d) = dst_old {
                        check_local(*d)?;
                    }
                }
                Op::Lock { mutex } | Op::Unlock { mutex } | Op::MutexDestroy { mutex } => {
                    self.check_mutex(template, pc, mutex.base)?
                }
                Op::Wait { condvar, mutex } => {
                    self.check_condvar(template, pc, condvar.base)?;
                    self.check_mutex(template, pc, mutex.base)?;
                }
                Op::Signal { condvar } | Op::Broadcast { condvar } => {
                    self.check_condvar(template, pc, condvar.base)?
                }
                Op::SemWait { sem } | Op::SemPost { sem } => {
                    self.check_sem(template, pc, sem.base)?
                }
                Op::BarrierWait { barrier } => self.check_barrier(template, pc, barrier.base)?,
                Op::Spawn {
                    template: spawned,
                    dst,
                } => {
                    if spawned.index() >= self.templates.len() {
                        return Err(IrError::UnknownTemplate(*spawned));
                    }
                    if let Some(d) = dst {
                        check_local(*d)?;
                    }
                }
                Op::Join { .. } | Op::Yield | Op::Assert { .. } | Op::Fail { .. } => {}
                Op::Assign { dst, .. } => check_local(*dst)?,
            },
        }
        Ok(())
    }

    fn check_var(&self, template: TemplateId, pc: usize, var: VarId) -> Result<(), IrError> {
        if var.index() >= self.globals.len() {
            Err(IrError::UnknownGlobal { template, pc, var })
        } else {
            Ok(())
        }
    }

    fn check_mutex(&self, template: TemplateId, pc: usize, id: MutexId) -> Result<(), IrError> {
        if id.index() >= self.mutexes.len() {
            Err(IrError::UnknownObject {
                template,
                pc,
                kind: "mutex",
                index: id.index(),
            })
        } else {
            Ok(())
        }
    }

    fn check_condvar(&self, template: TemplateId, pc: usize, id: CondvarId) -> Result<(), IrError> {
        if id.index() >= self.condvars.len() {
            Err(IrError::UnknownObject {
                template,
                pc,
                kind: "condvar",
                index: id.index(),
            })
        } else {
            Ok(())
        }
    }

    fn check_sem(&self, template: TemplateId, pc: usize, id: SemId) -> Result<(), IrError> {
        if id.index() >= self.sems.len() {
            Err(IrError::UnknownObject {
                template,
                pc,
                kind: "semaphore",
                index: id.index(),
            })
        } else {
            Ok(())
        }
    }

    fn check_barrier(&self, template: TemplateId, pc: usize, id: BarrierId) -> Result<(), IrError> {
        if id.index() >= self.barriers.len() {
            Err(IrError::UnknownObject {
                template,
                pc,
                kind: "barrier",
                index: id.index(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn id_display_uses_prefixes() {
        assert_eq!(VarId(3).to_string(), "g3");
        assert_eq!(LocalId(0).to_string(), "l0");
        assert_eq!(MutexId(1).to_string(), "m1");
        assert_eq!(TemplateId(2).to_string(), "T2");
        assert_eq!(BarrierId(7).to_string(), "bar7");
    }

    #[test]
    fn global_offsets_flatten_arrays() {
        let mut p = ProgramBuilder::new("offsets");
        let a = p.global("a", 0);
        let b = p.global_array("b", vec![1, 2, 3]);
        let c = p.global("c", 9);
        p.main(|_| {});
        let prog = p.build().unwrap();
        assert_eq!(prog.global_cells(), 5);
        assert_eq!(prog.global_offset(a), 0);
        assert_eq!(prog.global_offset(b), 1);
        assert_eq!(prog.global_offset(c), 4);
    }

    #[test]
    fn sync_object_offsets_flatten_arrays() {
        let mut p = ProgramBuilder::new("sync-offsets");
        let m0 = p.mutex("m0");
        let forks = p.mutex_array("forks", 5);
        let cv = p.condvar("cv");
        let s = p.sem("s", 2);
        let bar = p.barrier("bar", 3);
        p.main(|_| {});
        let prog = p.build().unwrap();
        assert_eq!(prog.mutex_instances(), 6);
        assert_eq!(prog.mutex_offset(m0), 0);
        assert_eq!(prog.mutex_offset(forks), 1);
        assert_eq!(prog.condvar_offset(cv), 0);
        assert_eq!(prog.sem_offset(s), 0);
        assert_eq!(prog.barrier_offset(bar), 0);
        assert_eq!(prog.barrier_instances(), 1);
        assert_eq!(prog.sem_instances(), 1);
        assert_eq!(prog.condvar_instances(), 1);
    }

    #[test]
    fn validate_accepts_builder_output() {
        let mut p = ProgramBuilder::new("ok");
        let x = p.global("x", 0);
        let t = p.thread("t", |b| {
            b.store(x, 1);
        });
        p.main(|b| {
            let h = b.local("h");
            b.spawn_into(t, h);
            b.join(h);
        });
        let prog = p.build().unwrap();
        assert!(prog.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_init_length() {
        let mut p = ProgramBuilder::new("bad");
        p.main(|_| {});
        let mut prog = p.build().unwrap();
        prog.globals.push(GlobalDecl {
            name: "broken".into(),
            len: 2,
            init: vec![0],
        });
        assert!(matches!(
            prog.validate(),
            Err(IrError::InitLengthMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_unknown_template_main() {
        let mut p = ProgramBuilder::new("bad-main");
        p.main(|_| {});
        let mut prog = p.build().unwrap();
        prog.main = TemplateId(42);
        assert!(matches!(prog.validate(), Err(IrError::UnknownTemplate(_))));
    }

    #[test]
    fn spawn_sites_counts_spawn_instructions() {
        let mut p = ProgramBuilder::new("spawns");
        let t = p.thread("t", |_| {});
        p.main(|b| {
            b.spawn(t);
            b.spawn(t);
        });
        let prog = p.build().unwrap();
        assert_eq!(prog.spawn_sites(), 2);
    }
}

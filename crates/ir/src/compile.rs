//! Lowering from structured statements to flat instructions.
//!
//! `If`/`While` are compiled to `Branch`/`Goto`; all other statements map to
//! a single [`Instr::Op`]. The lowering is deterministic, so instruction
//! indices (and therefore [`crate::instr::Loc`] values) are stable across
//! runs — a property the race-detection pipeline relies on.

use crate::instr::{Instr, Op};
use crate::stmt::Stmt;

/// Compile a structured statement block into a flat instruction sequence
/// terminated by [`Instr::Halt`].
pub fn compile_body(body: &[Stmt]) -> Vec<Instr> {
    let mut out = Vec::new();
    compile_block(body, &mut out);
    out.push(Instr::Halt);
    out
}

fn compile_block(block: &[Stmt], out: &mut Vec<Instr>) {
    for stmt in block {
        compile_stmt(stmt, out);
    }
}

fn compile_stmt(stmt: &Stmt, out: &mut Vec<Instr>) {
    match stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            // branch-if-zero over the then block (+ optional goto over else)
            let branch_at = out.len();
            out.push(Instr::Branch {
                cond: cond.clone(),
                target: usize::MAX, // patched below
            });
            compile_block(then_branch, out);
            if else_branch.is_empty() {
                let after = out.len();
                patch_target(out, branch_at, after);
            } else {
                let goto_at = out.len();
                out.push(Instr::Goto { target: usize::MAX });
                let else_start = out.len();
                patch_target(out, branch_at, else_start);
                compile_block(else_branch, out);
                let after = out.len();
                patch_target(out, goto_at, after);
            }
        }
        Stmt::While { cond, body } => {
            let head = out.len();
            out.push(Instr::Branch {
                cond: cond.clone(),
                target: usize::MAX,
            });
            compile_block(body, out);
            out.push(Instr::Goto { target: head });
            let after = out.len();
            patch_target(out, head, after);
        }
        Stmt::Skip => {}
        other => out.push(Instr::Op {
            op: lower_simple(other),
        }),
    }
}

fn patch_target(out: &mut [Instr], at: usize, target: usize) {
    match &mut out[at] {
        Instr::Goto { target: t } | Instr::Branch { target: t, .. } => *t = target,
        _ => unreachable!("patch target of a non-jump instruction"),
    }
}

fn lower_simple(stmt: &Stmt) -> Op {
    match stmt {
        Stmt::Load { var, dst, atomic } => Op::Load {
            var: var.clone(),
            dst: *dst,
            atomic: *atomic,
        },
        Stmt::Store { var, value, atomic } => Op::Store {
            var: var.clone(),
            value: value.clone(),
            atomic: *atomic,
        },
        Stmt::Rmw {
            var,
            op,
            operand,
            dst_old,
        } => Op::Rmw {
            var: var.clone(),
            op: *op,
            operand: operand.clone(),
            dst_old: *dst_old,
        },
        Stmt::Cas {
            var,
            expected,
            new,
            dst_success,
            dst_old,
        } => Op::Cas {
            var: var.clone(),
            expected: expected.clone(),
            new: new.clone(),
            dst_success: *dst_success,
            dst_old: *dst_old,
        },
        Stmt::Lock { mutex } => Op::Lock {
            mutex: mutex.clone(),
        },
        Stmt::Unlock { mutex } => Op::Unlock {
            mutex: mutex.clone(),
        },
        Stmt::MutexDestroy { mutex } => Op::MutexDestroy {
            mutex: mutex.clone(),
        },
        Stmt::Wait { condvar, mutex } => Op::Wait {
            condvar: condvar.clone(),
            mutex: mutex.clone(),
        },
        Stmt::Signal { condvar } => Op::Signal {
            condvar: condvar.clone(),
        },
        Stmt::Broadcast { condvar } => Op::Broadcast {
            condvar: condvar.clone(),
        },
        Stmt::SemWait { sem } => Op::SemWait { sem: sem.clone() },
        Stmt::SemPost { sem } => Op::SemPost { sem: sem.clone() },
        Stmt::BarrierWait { barrier } => Op::BarrierWait {
            barrier: barrier.clone(),
        },
        Stmt::Spawn { template, dst } => Op::Spawn {
            template: *template,
            dst: *dst,
        },
        Stmt::Join { thread } => Op::Join {
            thread: thread.clone(),
        },
        Stmt::Yield => Op::Yield,
        Stmt::Assign { dst, value } => Op::Assign {
            dst: *dst,
            value: value.clone(),
        },
        Stmt::Assert { cond, msg } => Op::Assert {
            cond: cond.clone(),
            msg: msg.clone(),
        },
        Stmt::Fail { msg } => Op::Fail { msg: msg.clone() },
        Stmt::If { .. } | Stmt::While { .. } | Stmt::Skip => {
            unreachable!("control flow handled by compile_stmt")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{lt, Expr};
    use crate::program::{LocalId, VarId};

    fn assign(dst: u32, v: i64) -> Stmt {
        Stmt::Assign {
            dst: LocalId(dst),
            value: Expr::Const(v),
        }
    }

    #[test]
    fn straight_line_code_appends_halt() {
        let instrs = compile_body(&[assign(0, 1), Stmt::Yield]);
        assert_eq!(instrs.len(), 3);
        assert!(matches!(instrs[2], Instr::Halt));
    }

    #[test]
    fn skip_compiles_to_nothing() {
        let instrs = compile_body(&[Stmt::Skip, Stmt::Skip]);
        assert_eq!(instrs, vec![Instr::Halt]);
    }

    #[test]
    fn if_without_else_branches_past_then() {
        let instrs = compile_body(&[Stmt::If {
            cond: Expr::Local(LocalId(0)),
            then_branch: vec![assign(1, 5)],
            else_branch: vec![],
        }]);
        // branch, assign, halt
        assert_eq!(instrs.len(), 3);
        match &instrs[0] {
            Instr::Branch { target, .. } => assert_eq!(*target, 2),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn if_with_else_skips_over_else_on_then_path() {
        let instrs = compile_body(&[Stmt::If {
            cond: Expr::Local(LocalId(0)),
            then_branch: vec![assign(1, 1)],
            else_branch: vec![assign(1, 2)],
        }]);
        // 0: branch(!cond -> 3), 1: assign then, 2: goto 4, 3: assign else, 4: halt
        assert_eq!(instrs.len(), 5);
        match &instrs[0] {
            Instr::Branch { target, .. } => assert_eq!(*target, 3),
            other => panic!("expected branch, got {other:?}"),
        }
        match &instrs[2] {
            Instr::Goto { target } => assert_eq!(*target, 4),
            other => panic!("expected goto, got {other:?}"),
        }
    }

    #[test]
    fn while_loops_back_to_condition() {
        let instrs = compile_body(&[Stmt::While {
            cond: lt(LocalId(0), 3),
            body: vec![assign(0, 1)],
        }]);
        // 0: branch(!cond -> 3), 1: assign, 2: goto 0, 3: halt
        assert_eq!(instrs.len(), 4);
        match &instrs[0] {
            Instr::Branch { target, .. } => assert_eq!(*target, 3),
            other => panic!("expected branch, got {other:?}"),
        }
        match &instrs[2] {
            Instr::Goto { target } => assert_eq!(*target, 0),
            other => panic!("expected goto, got {other:?}"),
        }
    }

    #[test]
    fn nested_control_flow_compiles_consistently() {
        let inner = Stmt::If {
            cond: Expr::Local(LocalId(1)),
            then_branch: vec![assign(2, 1)],
            else_branch: vec![assign(2, 2)],
        };
        let instrs = compile_body(&[Stmt::While {
            cond: lt(LocalId(0), 2),
            body: vec![inner, assign(0, 1)],
        }]);
        // Every Goto/Branch target must be within bounds.
        for i in &instrs {
            match i {
                Instr::Goto { target } | Instr::Branch { target, .. } => {
                    assert!(*target <= instrs.len());
                }
                _ => {}
            }
        }
        // Lowering memory ops preserves operands.
        let instrs = compile_body(&[Stmt::Store {
            var: VarId(0).into(),
            value: Expr::Const(7),
            atomic: false,
        }]);
        match instrs[0].op().unwrap() {
            Op::Store { value, .. } => assert_eq!(value, &Expr::Const(7)),
            other => panic!("expected store, got {other:?}"),
        }
    }
}

//! Structured statements: the surface form produced by the builder DSL and
//! lowered to flat instructions by [`crate::compile`].

use crate::expr::Expr;
use crate::program::{BarrierId, CondvarId, LocalId, MutexId, SemId, TemplateId, VarId};

/// Reference to a shared variable cell: a declaration plus an optional index
/// expression for array declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct VarRef {
    /// The global declaration.
    pub var: VarId,
    /// Index into the declaration when it is an array; `None` addresses cell 0.
    pub index: Option<Expr>,
}

impl VarRef {
    /// Reference cell `index` of an array declaration.
    pub fn indexed(var: VarId, index: impl Into<Expr>) -> Self {
        VarRef {
            var,
            index: Some(index.into()),
        }
    }
}

impl From<VarId> for VarRef {
    fn from(var: VarId) -> Self {
        VarRef { var, index: None }
    }
}

macro_rules! obj_ref {
    ($(#[$meta:meta])* $name:ident, $id:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, PartialEq)]
        pub struct $name {
            /// The declaration being referenced.
            pub base: $id,
            /// Index when the declaration is an array; `None` addresses instance 0.
            pub index: Option<Expr>,
        }

        impl $name {
            /// Reference instance `index` of an array declaration.
            pub fn indexed(base: $id, index: impl Into<Expr>) -> Self {
                Self { base, index: Some(index.into()) }
            }
        }

        impl From<$id> for $name {
            fn from(base: $id) -> Self {
                Self { base, index: None }
            }
        }
    };
}

obj_ref!(
    /// Reference to a mutex instance.
    MutexRef,
    MutexId
);
obj_ref!(
    /// Reference to a condition-variable instance.
    CondvarRef,
    CondvarId
);
obj_ref!(
    /// Reference to a semaphore instance.
    SemRef,
    SemId
);
obj_ref!(
    /// Reference to a barrier instance.
    BarrierRef,
    BarrierId
);

/// Atomic read-modify-write operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// `fetch_add`
    Add,
    /// `fetch_sub`
    Sub,
    /// `swap`
    Exchange,
    /// `fetch_max`
    Max,
    /// `fetch_min`
    Min,
}

/// A structured statement. Control flow (`If`, `While`, `Loop`) nests blocks
/// of statements; everything else is a straight-line operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Read a shared cell into a local slot.
    Load {
        var: VarRef,
        dst: LocalId,
        /// Atomic accesses synchronise (they are always visible and never race).
        atomic: bool,
    },
    /// Write an expression to a shared cell.
    Store {
        var: VarRef,
        value: Expr,
        atomic: bool,
    },
    /// Atomic read-modify-write on a shared cell.
    Rmw {
        var: VarRef,
        op: RmwOp,
        operand: Expr,
        /// Receives the *old* value when present.
        dst_old: Option<LocalId>,
    },
    /// Atomic compare-and-swap on a shared cell.
    Cas {
        var: VarRef,
        expected: Expr,
        new: Expr,
        /// Receives 1 on success and 0 on failure when present.
        dst_success: Option<LocalId>,
        /// Receives the value observed before the operation when present.
        dst_old: Option<LocalId>,
    },
    /// Acquire a mutex (blocking).
    Lock { mutex: MutexRef },
    /// Release a mutex. Releasing a mutex the thread does not hold is a bug
    /// reported by the runtime (this is how several RADBench models crash).
    Unlock { mutex: MutexRef },
    /// Destroy a mutex; any later operation on it is a bug.
    MutexDestroy { mutex: MutexRef },
    /// `pthread_cond_wait`: atomically release `mutex` and block on `condvar`,
    /// re-acquiring `mutex` before returning.
    Wait {
        condvar: CondvarRef,
        mutex: MutexRef,
    },
    /// Wake one waiter.
    Signal { condvar: CondvarRef },
    /// Wake all waiters.
    Broadcast { condvar: CondvarRef },
    /// Decrement a semaphore, blocking while its count is zero.
    SemWait { sem: SemRef },
    /// Increment a semaphore.
    SemPost { sem: SemRef },
    /// Wait at a barrier until `participants` threads have arrived.
    BarrierWait { barrier: BarrierRef },
    /// Create a new thread running `template`; the new thread id is stored in
    /// `dst` when present.
    Spawn {
        template: TemplateId,
        dst: Option<LocalId>,
    },
    /// Block until the thread whose id is the value of `thread` has finished.
    Join { thread: Expr },
    /// A visible no-op scheduling point (models `sched_yield`).
    Yield,
    /// Local assignment (invisible).
    Assign { dst: LocalId, value: Expr },
    /// Check a condition over locals; failure is a bug.
    Assert { cond: Expr, msg: String },
    /// Unconditional bug (models crashes such as out-of-bounds accesses or
    /// double frees detected by the original benchmarks' harnesses).
    Fail { msg: String },
    /// Two-way conditional.
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// While loop.
    While { cond: Expr, body: Vec<Stmt> },
    /// No operation (invisible); useful as a placeholder in generated code.
    Skip,
}

impl Stmt {
    /// True when this statement (ignoring nested blocks) can never be a
    /// visible operation: it touches only thread-local state.
    pub fn is_local_only(&self) -> bool {
        matches!(
            self,
            Stmt::Assign { .. } | Stmt::Assert { .. } | Stmt::Skip | Stmt::Fail { .. }
        )
    }

    /// True for statements that carry nested blocks.
    pub fn is_control_flow(&self) -> bool {
        matches!(self, Stmt::If { .. } | Stmt::While { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::eq;

    #[test]
    fn var_ref_conversion() {
        let r: VarRef = VarId(3).into();
        assert_eq!(r.var, VarId(3));
        assert!(r.index.is_none());
        let r = VarRef::indexed(VarId(1), 4);
        assert_eq!(r.index, Some(Expr::Const(4)));
    }

    #[test]
    fn obj_ref_conversion() {
        let m: MutexRef = MutexId(0).into();
        assert!(m.index.is_none());
        let m = MutexRef::indexed(MutexId(2), LocalId(0));
        assert_eq!(m.base, MutexId(2));
        assert!(m.index.is_some());
    }

    #[test]
    fn statement_classification() {
        assert!(Stmt::Skip.is_local_only());
        assert!(Stmt::Assign {
            dst: LocalId(0),
            value: Expr::Const(1)
        }
        .is_local_only());
        assert!(!Stmt::Yield.is_local_only());
        assert!(Stmt::If {
            cond: eq(1, 1),
            then_branch: vec![],
            else_branch: vec![]
        }
        .is_control_flow());
        assert!(!Stmt::Yield.is_control_flow());
    }
}

//! Errors reported by program validation and compilation.

use crate::program::{LocalId, TemplateId, VarId};
use std::fmt;

/// Structural errors in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A referenced template does not exist.
    UnknownTemplate(TemplateId),
    /// A referenced global does not exist.
    UnknownGlobal {
        template: TemplateId,
        pc: usize,
        var: VarId,
    },
    /// A referenced local slot is out of range for its template.
    UnknownLocal {
        template: TemplateId,
        pc: usize,
        local: LocalId,
    },
    /// A referenced synchronisation object does not exist.
    UnknownObject {
        template: TemplateId,
        pc: usize,
        kind: &'static str,
        index: usize,
    },
    /// A jump target is past the end of the template body.
    JumpOutOfRange {
        template: TemplateId,
        pc: usize,
        target: usize,
        len: usize,
    },
    /// A declaration's initialiser length does not match its declared length.
    InitLengthMismatch {
        name: String,
        declared: usize,
        provided: usize,
    },
    /// A declaration with zero instances.
    EmptyDeclaration(String),
    /// The builder was asked to build a program without a main template.
    MissingMain,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownTemplate(t) => write!(f, "unknown template {t}"),
            IrError::UnknownGlobal { template, pc, var } => {
                write!(f, "unknown global {var} at {template}:{pc}")
            }
            IrError::UnknownLocal {
                template,
                pc,
                local,
            } => write!(f, "unknown local {local} at {template}:{pc}"),
            IrError::UnknownObject {
                template,
                pc,
                kind,
                index,
            } => write!(f, "unknown {kind} #{index} at {template}:{pc}"),
            IrError::JumpOutOfRange {
                template,
                pc,
                target,
                len,
            } => write!(
                f,
                "jump target {target} out of range (len {len}) at {template}:{pc}"
            ),
            IrError::InitLengthMismatch {
                name,
                declared,
                provided,
            } => write!(
                f,
                "initialiser for `{name}` has {provided} values but {declared} were declared"
            ),
            IrError::EmptyDeclaration(what) => write!(f, "empty declaration: {what}"),
            IrError::MissingMain => write!(f, "program has no main template"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = IrError::UnknownTemplate(TemplateId(4));
        assert!(e.to_string().contains("T4"));
        let e = IrError::InitLengthMismatch {
            name: "buf".into(),
            declared: 4,
            provided: 2,
        };
        assert!(e.to_string().contains("buf"));
        assert!(e.to_string().contains('4'));
        let e = IrError::MissingMain;
        assert!(e.to_string().contains("main"));
    }
}

//! # sct-ir
//!
//! A small intermediate representation (IR) for multi-threaded test programs,
//! together with a builder DSL and a compiler that lowers structured
//! statements to a flat instruction form suitable for fast, deterministic
//! interpretation by `sct-runtime`.
//!
//! The IR plays the role of the *programs under test* in the PPoPP'14 study
//! "Concurrency Testing Using Schedule Bounding: an Empirical Study"
//! (Thomson, Donaldson, Betts). The original study instruments native pthread
//! binaries; here, benchmarks are expressed as data — a set of shared global
//! variables, synchronisation objects (mutexes, condition variables,
//! semaphores, barriers) and *thread templates* whose bodies are sequences of
//! statements. Every statement that touches shared state is a *visible
//! operation* candidate, exactly matching the paper's execution model (§2):
//! a step is a visible operation followed by invisible (thread-local) work up
//! to the next visible operation.
//!
//! ## Quick example
//!
//! The program of Figure 1 in the paper — three worker threads racing on two
//! flags with an assertion — looks like this:
//!
//! ```
//! use sct_ir::prelude::*;
//!
//! let mut p = ProgramBuilder::new("figure1");
//! let x = p.global("x", 0);
//! let y = p.global("y", 0);
//!
//! let t1 = p.thread("t1", |b| {
//!     b.store(x, 1);
//!     b.store(y, 1);
//! });
//! let t2 = p.thread("t2", |b| {
//!     b.store(x, 1);
//! });
//! let t3 = p.thread("t3", |b| {
//!     let rx = b.local("rx");
//!     let ry = b.local("ry");
//!     b.load(x, rx);
//!     b.load(y, ry);
//!     b.assert_cond(eq(rx, ry), "x == y");
//! });
//! p.main(|b| {
//!     b.spawn(t1);
//!     b.spawn(t2);
//!     b.spawn(t3);
//! });
//! let program = p.build().unwrap();
//! assert_eq!(program.templates.len(), 4); // main + 3 workers
//! ```

pub mod builder;
pub mod compile;
pub mod error;
pub mod expr;
pub mod instr;
pub mod pretty;
pub mod program;
pub mod stmt;

pub use builder::{BodyBuilder, ProgramBuilder};
pub use error::IrError;
pub use expr::{BinOp, Expr, UnOp};
pub use instr::{Instr, Loc, Op};
pub use program::{
    BarrierDecl, BarrierId, CondvarDecl, CondvarId, GlobalDecl, LocalId, MutexDecl, MutexId,
    Program, SemDecl, SemId, Template, TemplateId, VarId,
};
pub use stmt::{BarrierRef, CondvarRef, MutexRef, RmwOp, SemRef, Stmt, VarRef};

/// Convenient glob import for writing programs with the builder DSL.
pub mod prelude {
    pub use crate::builder::{BodyBuilder, ProgramBuilder};
    pub use crate::expr::{
        add, and, div, eq, ge, gt, le, lt, max, min, mul, ne, neg, not, or, rem, sub, Expr,
    };
    pub use crate::program::{
        BarrierId, CondvarId, LocalId, MutexId, Program, SemId, TemplateId, VarId,
    };
    pub use crate::stmt::{RmwOp, VarRef};
}

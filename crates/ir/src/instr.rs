//! Flat instruction form: the compiled representation interpreted by the
//! runtime. Structured control flow is lowered to conditional branches so
//! that a thread's continuation is a single program counter.

use crate::expr::Expr;
use crate::program::{LocalId, TemplateId};
use crate::stmt::{BarrierRef, CondvarRef, MutexRef, RmwOp, SemRef, VarRef};
use std::fmt;

/// A static program location: a (template, instruction index) pair.
///
/// Locations identify *instructions*, not dynamic events; the race-detection
/// phase of the study reports the set of racy locations, which the runtime
/// then treats as visible operations during systematic exploration (§5 of the
/// paper: racy instructions, stored as binary offsets, are promoted to
/// visible operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// Template the instruction belongs to.
    pub template: TemplateId,
    /// Index of the instruction within the template body.
    pub pc: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.template, self.pc)
    }
}

/// A non-control-flow operation. These are the candidates for visible
/// operations; the runtime decides visibility per operation kind and per the
/// configured set of racy locations.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Read a shared cell into a local.
    Load {
        var: VarRef,
        dst: LocalId,
        atomic: bool,
    },
    /// Write a shared cell.
    Store {
        var: VarRef,
        value: Expr,
        atomic: bool,
    },
    /// Atomic read-modify-write.
    Rmw {
        var: VarRef,
        op: RmwOp,
        operand: Expr,
        dst_old: Option<LocalId>,
    },
    /// Atomic compare-and-swap.
    Cas {
        var: VarRef,
        expected: Expr,
        new: Expr,
        dst_success: Option<LocalId>,
        dst_old: Option<LocalId>,
    },
    /// Acquire a mutex.
    Lock { mutex: MutexRef },
    /// Release a mutex.
    Unlock { mutex: MutexRef },
    /// Destroy a mutex.
    MutexDestroy { mutex: MutexRef },
    /// Condition wait (release + block + re-acquire).
    Wait {
        condvar: CondvarRef,
        mutex: MutexRef,
    },
    /// Wake one waiter.
    Signal { condvar: CondvarRef },
    /// Wake all waiters.
    Broadcast { condvar: CondvarRef },
    /// Semaphore down.
    SemWait { sem: SemRef },
    /// Semaphore up.
    SemPost { sem: SemRef },
    /// Barrier wait.
    BarrierWait { barrier: BarrierRef },
    /// Thread creation.
    Spawn {
        template: TemplateId,
        dst: Option<LocalId>,
    },
    /// Thread join.
    Join { thread: Expr },
    /// Visible no-op.
    Yield,
    /// Local assignment (always invisible).
    Assign { dst: LocalId, value: Expr },
    /// Assertion over locals (always invisible; failure is a bug).
    Assert { cond: Expr, msg: String },
    /// Unconditional failure (always invisible; reaching it is a bug).
    Fail { msg: String },
}

impl Op {
    /// Whether this operation is a synchronisation operation, i.e. always a
    /// visible operation regardless of the racy-location set.
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Op::Lock { .. }
                | Op::Unlock { .. }
                | Op::MutexDestroy { .. }
                | Op::Wait { .. }
                | Op::Signal { .. }
                | Op::Broadcast { .. }
                | Op::SemWait { .. }
                | Op::SemPost { .. }
                | Op::BarrierWait { .. }
                | Op::Spawn { .. }
                | Op::Join { .. }
                | Op::Yield
        )
    }

    /// Whether this operation accesses shared memory (load/store/rmw/cas).
    pub fn is_memory_access(&self) -> bool {
        matches!(
            self,
            Op::Load { .. } | Op::Store { .. } | Op::Rmw { .. } | Op::Cas { .. }
        )
    }

    /// Whether this is an atomic memory access (always visible, never racy).
    pub fn is_atomic_access(&self) -> bool {
        match self {
            Op::Load { atomic, .. } | Op::Store { atomic, .. } => *atomic,
            Op::Rmw { .. } | Op::Cas { .. } => true,
            _ => false,
        }
    }

    /// Whether this operation only touches thread-local state.
    pub fn is_local(&self) -> bool {
        matches!(
            self,
            Op::Assign { .. } | Op::Assert { .. } | Op::Fail { .. }
        )
    }

    /// A short mnemonic used by traces and the pretty printer.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Load { .. } => "load",
            Op::Store { .. } => "store",
            Op::Rmw { .. } => "rmw",
            Op::Cas { .. } => "cas",
            Op::Lock { .. } => "lock",
            Op::Unlock { .. } => "unlock",
            Op::MutexDestroy { .. } => "mutex_destroy",
            Op::Wait { .. } => "wait",
            Op::Signal { .. } => "signal",
            Op::Broadcast { .. } => "broadcast",
            Op::SemWait { .. } => "sem_wait",
            Op::SemPost { .. } => "sem_post",
            Op::BarrierWait { .. } => "barrier_wait",
            Op::Spawn { .. } => "spawn",
            Op::Join { .. } => "join",
            Op::Yield => "yield",
            Op::Assign { .. } => "assign",
            Op::Assert { .. } => "assert",
            Op::Fail { .. } => "fail",
        }
    }
}

/// A flat instruction: an operation or a control-flow transfer.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Execute an operation and fall through to the next instruction.
    Op { op: Op },
    /// Unconditional jump.
    Goto { target: usize },
    /// Jump to `target` when `cond` evaluates to zero, otherwise fall through.
    Branch { cond: Expr, target: usize },
    /// Thread termination.
    Halt,
}

impl Instr {
    /// The operation carried by this instruction, if any.
    pub fn op(&self) -> Option<&Op> {
        match self {
            Instr::Op { op } => Some(op),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{MutexId, VarId};

    #[test]
    fn sync_classification() {
        assert!(Op::Lock {
            mutex: MutexId(0).into()
        }
        .is_sync());
        assert!(Op::Yield.is_sync());
        assert!(!Op::Load {
            var: VarId(0).into(),
            dst: LocalId(0),
            atomic: false
        }
        .is_sync());
        assert!(Op::Assign {
            dst: LocalId(0),
            value: Expr::Const(0)
        }
        .is_local());
    }

    #[test]
    fn atomic_classification() {
        assert!(Op::Cas {
            var: VarId(0).into(),
            expected: Expr::Const(0),
            new: Expr::Const(1),
            dst_success: None,
            dst_old: None
        }
        .is_atomic_access());
        assert!(Op::Load {
            var: VarId(0).into(),
            dst: LocalId(0),
            atomic: true
        }
        .is_atomic_access());
        assert!(!Op::Store {
            var: VarId(0).into(),
            value: Expr::Const(1),
            atomic: false
        }
        .is_atomic_access());
    }

    #[test]
    fn loc_display() {
        let loc = Loc {
            template: TemplateId(2),
            pc: 7,
        };
        assert_eq!(loc.to_string(), "T2:7");
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(Op::Yield.mnemonic(), "yield");
        assert_eq!(
            Op::BarrierWait {
                barrier: crate::program::BarrierId(0).into()
            }
            .mnemonic(),
            "barrier_wait"
        );
    }
}

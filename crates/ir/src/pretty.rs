//! Human-readable rendering of programs, used by example binaries and
//! debugging output in the harness.

use crate::expr::Expr;
use crate::instr::{Instr, Op};
use crate::program::Program;
use crate::stmt::VarRef;
use std::fmt::Write as _;

/// Render a whole program as indented text, one instruction per line.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", program.name);
    for g in &program.globals {
        let _ = writeln!(out, "  global {} x{} = {:?}", g.name, g.len, g.init);
    }
    for m in &program.mutexes {
        let _ = writeln!(out, "  mutex {} x{}", m.name, m.len);
    }
    for c in &program.condvars {
        let _ = writeln!(out, "  condvar {} x{}", c.name, c.len);
    }
    for s in &program.sems {
        let _ = writeln!(out, "  sem {} x{} = {}", s.name, s.len, s.init);
    }
    for b in &program.barriers {
        let _ = writeln!(
            out,
            "  barrier {} ({} participants)",
            b.name, b.participants
        );
    }
    for (ti, t) in program.templates.iter().enumerate() {
        let main_marker = if ti == program.main.index() {
            " (main)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  thread {}{} [{} locals]",
            t.name, main_marker, t.locals
        );
        for (pc, instr) in t.body.iter().enumerate() {
            let _ = writeln!(out, "    {pc:>3}: {}", instr_to_string(program, instr));
        }
    }
    out
}

fn var_ref_to_string(program: &Program, var: &VarRef) -> String {
    let name = &program.globals[var.var.index()].name;
    match &var.index {
        Some(idx) => format!("{name}[{idx}]"),
        None => name.clone(),
    }
}

/// Render a single instruction.
pub fn instr_to_string(program: &Program, instr: &Instr) -> String {
    match instr {
        Instr::Goto { target } => format!("goto {target}"),
        Instr::Branch { cond, target } => format!("if !({cond}) goto {target}"),
        Instr::Halt => "halt".to_string(),
        Instr::Op { op } => op_to_string(program, op),
    }
}

/// Render a single operation.
pub fn op_to_string(program: &Program, op: &Op) -> String {
    let obj_name = |idx: usize, names: &[String], index: &Option<Expr>| -> String {
        let name = names.get(idx).cloned().unwrap_or_else(|| format!("#{idx}"));
        match index {
            Some(e) => format!("{name}[{e}]"),
            None => name,
        }
    };
    let mutex_names: Vec<String> = program.mutexes.iter().map(|m| m.name.clone()).collect();
    let condvar_names: Vec<String> = program.condvars.iter().map(|c| c.name.clone()).collect();
    let sem_names: Vec<String> = program.sems.iter().map(|s| s.name.clone()).collect();
    let barrier_names: Vec<String> = program.barriers.iter().map(|b| b.name.clone()).collect();
    match op {
        Op::Load { var, dst, atomic } => format!(
            "{dst} = {}load {}",
            if *atomic { "atomic " } else { "" },
            var_ref_to_string(program, var)
        ),
        Op::Store { var, value, atomic } => format!(
            "{}store {} = {value}",
            if *atomic { "atomic " } else { "" },
            var_ref_to_string(program, var)
        ),
        Op::Rmw {
            var,
            op,
            operand,
            dst_old,
        } => format!(
            "{}rmw({op:?}) {} {operand}",
            dst_old.map(|d| format!("{d} = ")).unwrap_or_default(),
            var_ref_to_string(program, var)
        ),
        Op::Cas {
            var,
            expected,
            new,
            dst_success,
            dst_old,
        } => format!(
            "{}cas {} {expected} -> {new}{}",
            dst_success.map(|d| format!("{d} = ")).unwrap_or_default(),
            var_ref_to_string(program, var),
            dst_old
                .map(|d| format!(" (old -> {d})"))
                .unwrap_or_default()
        ),
        Op::Lock { mutex } => format!(
            "lock {}",
            obj_name(mutex.base.index(), &mutex_names, &mutex.index)
        ),
        Op::Unlock { mutex } => format!(
            "unlock {}",
            obj_name(mutex.base.index(), &mutex_names, &mutex.index)
        ),
        Op::MutexDestroy { mutex } => format!(
            "destroy {}",
            obj_name(mutex.base.index(), &mutex_names, &mutex.index)
        ),
        Op::Wait { condvar, mutex } => format!(
            "wait {} / {}",
            obj_name(condvar.base.index(), &condvar_names, &condvar.index),
            obj_name(mutex.base.index(), &mutex_names, &mutex.index)
        ),
        Op::Signal { condvar } => format!(
            "signal {}",
            obj_name(condvar.base.index(), &condvar_names, &condvar.index)
        ),
        Op::Broadcast { condvar } => format!(
            "broadcast {}",
            obj_name(condvar.base.index(), &condvar_names, &condvar.index)
        ),
        Op::SemWait { sem } => format!(
            "sem_wait {}",
            obj_name(sem.base.index(), &sem_names, &sem.index)
        ),
        Op::SemPost { sem } => format!(
            "sem_post {}",
            obj_name(sem.base.index(), &sem_names, &sem.index)
        ),
        Op::BarrierWait { barrier } => format!(
            "barrier_wait {}",
            obj_name(barrier.base.index(), &barrier_names, &barrier.index)
        ),
        Op::Spawn { template, dst } => format!(
            "{}spawn {}",
            dst.map(|d| format!("{d} = ")).unwrap_or_default(),
            program
                .templates
                .get(template.index())
                .map(|t| t.name.clone())
                .unwrap_or_else(|| template.to_string())
        ),
        Op::Join { thread } => format!("join {thread}"),
        Op::Yield => "yield".to_string(),
        Op::Assign { dst, value } => format!("{dst} = {value}"),
        Op::Assert { cond, msg } => format!("assert {cond} \"{msg}\""),
        Op::Fail { msg } => format!("fail \"{msg}\""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::eq;

    #[test]
    fn pretty_prints_every_declared_entity() {
        let mut p = ProgramBuilder::new("pretty");
        let x = p.global("x", 0);
        let m = p.mutex("m");
        let cv = p.condvar("cv");
        let s = p.sem("slots", 2);
        let bar = p.barrier("bar", 2);
        let worker = p.thread("worker", |b| {
            b.lock(m);
            b.store(x, 1);
            b.wait(cv, m);
            b.unlock(m);
            b.sem_wait(s);
            b.barrier_wait(bar);
        });
        p.main(|b| {
            let r = b.local("r");
            b.spawn(worker);
            b.load(x, r);
            b.assert_cond(eq(r, 1), "x is one");
        });
        let prog = p.build().unwrap();
        let text = program_to_string(&prog);
        for needle in [
            "program pretty",
            "global x",
            "mutex m",
            "condvar cv",
            "sem slots",
            "barrier bar",
            "thread worker",
            "thread main (main)",
            "lock m",
            "wait cv / m",
            "sem_wait slots",
            "barrier_wait bar",
            "spawn worker",
            "assert",
            "halt",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn cas_renders_every_destination_variant() {
        // Regression test: `cas_full`'s old-value destination used to be
        // silently dropped from the rendering, so two different instructions
        // printed identically.
        let mut p = ProgramBuilder::new("cas");
        let x = p.global("x", 0);
        p.main(|b| {
            let ok = b.local("ok");
            let old = b.local("old");
            b.cas(x, 0, 1, ok);
            b.cas_full(x, 1, 2, Some(ok), Some(old));
            b.cas_full(x, 2, 3, None, Some(old));
            b.cas_full(x, 3, 4, None, None);
        });
        let prog = p.build().unwrap();
        let text = program_to_string(&prog);
        assert!(text.contains("l0 = cas x 0 -> 1\n"), "{text}");
        assert!(text.contains("l0 = cas x 1 -> 2 (old -> l1)"), "{text}");
        assert!(text.contains(": cas x 2 -> 3 (old -> l1)"), "{text}");
        assert!(text.contains(": cas x 3 -> 4\n"), "{text}");
    }
}

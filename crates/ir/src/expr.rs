//! Side-effect-free expressions over per-thread locals.
//!
//! Expressions deliberately cannot read shared memory: a shared read must be
//! an explicit `Load` statement so that the runtime can treat it as a
//! (potentially) visible operation and the race detector can observe it.

use crate::program::LocalId;
use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation: non-zero becomes 0, zero becomes 1.
    Not,
}

/// Binary operators. Comparison and logical operators produce 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Wrapping division; division by zero yields 0 (documented total semantics).
    Div,
    /// Remainder; remainder by zero yields 0.
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Logical and over truthiness (non-zero = true).
    And,
    /// Logical or over truthiness.
    Or,
    Min,
    Max,
}

/// An expression tree evaluated against a thread's local slots.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer constant.
    Const(i64),
    /// Value of a local slot.
    Local(LocalId),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluate the expression against the given local slots.
    ///
    /// Reading a local slot that does not exist yields 0; arithmetic wraps.
    /// These total semantics keep the interpreter free of error paths for
    /// what are always programmer mistakes in benchmark construction (they are
    /// caught by `Program::validate` instead).
    pub fn eval(&self, locals: &[i64]) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Local(l) => locals.get(l.index()).copied().unwrap_or(0),
            Expr::Unary(op, e) => {
                let v = e.eval(locals);
                match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i64::from(v == 0),
                }
            }
            Expr::Binary(op, a, b) => {
                let x = a.eval(locals);
                let y = b.eval(locals);
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_div(y)
                        }
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                    BinOp::Eq => i64::from(x == y),
                    BinOp::Ne => i64::from(x != y),
                    BinOp::Lt => i64::from(x < y),
                    BinOp::Le => i64::from(x <= y),
                    BinOp::Gt => i64::from(x > y),
                    BinOp::Ge => i64::from(x >= y),
                    BinOp::And => i64::from(x != 0 && y != 0),
                    BinOp::Or => i64::from(x != 0 || y != 0),
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                }
            }
        }
    }

    /// True when evaluation of the expression never reads any local slot.
    pub fn is_constant(&self) -> bool {
        match self {
            Expr::Const(_) => true,
            Expr::Local(_) => false,
            Expr::Unary(_, e) => e.is_constant(),
            Expr::Binary(_, a, b) => a.is_constant() && b.is_constant(),
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Const(v)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Self {
        Expr::Const(v as i64)
    }
}

impl From<u32> for Expr {
    fn from(v: u32) -> Self {
        Expr::Const(v as i64)
    }
}

impl From<usize> for Expr {
    fn from(v: usize) -> Self {
        Expr::Const(v as i64)
    }
}

impl From<bool> for Expr {
    fn from(v: bool) -> Self {
        Expr::Const(i64::from(v))
    }
}

impl From<LocalId> for Expr {
    fn from(l: LocalId) -> Self {
        Expr::Local(l)
    }
}

impl From<&Expr> for Expr {
    fn from(e: &Expr) -> Self {
        e.clone()
    }
}

fn bin(op: BinOp, a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    Expr::Binary(op, Box::new(a.into()), Box::new(b.into()))
}

/// `a + b`
pub fn add(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Add, a, b)
}
/// `a - b`
pub fn sub(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Sub, a, b)
}
/// `a * b`
pub fn mul(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Mul, a, b)
}
/// `a / b` (0 when `b == 0`)
pub fn div(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Div, a, b)
}
/// `a % b` (0 when `b == 0`)
pub fn rem(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Rem, a, b)
}
/// `a == b` as 0/1
pub fn eq(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Eq, a, b)
}
/// `a != b` as 0/1
pub fn ne(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Ne, a, b)
}
/// `a < b` as 0/1
pub fn lt(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Lt, a, b)
}
/// `a <= b` as 0/1
pub fn le(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Le, a, b)
}
/// `a > b` as 0/1
pub fn gt(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Gt, a, b)
}
/// `a >= b` as 0/1
pub fn ge(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Ge, a, b)
}
/// logical `a && b` as 0/1
pub fn and(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::And, a, b)
}
/// logical `a || b` as 0/1
pub fn or(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Or, a, b)
}
/// `min(a, b)`
pub fn min(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Min, a, b)
}
/// `max(a, b)`
pub fn max(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    bin(BinOp::Max, a, b)
}
/// `-a`
pub fn neg(a: impl Into<Expr>) -> Expr {
    Expr::Unary(UnOp::Neg, Box::new(a.into()))
}
/// logical `!a` as 0/1
pub fn not(a: impl Into<Expr>) -> Expr {
    Expr::Unary(UnOp::Not, Box::new(a.into()))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Local(l) => write!(f, "{l}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "(!{e})"),
            Expr::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                    BinOp::Min => "`min`",
                    BinOp::Max => "`max`",
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocalId {
        LocalId(i)
    }

    #[test]
    fn arithmetic_and_comparison() {
        let locals = [7, 3];
        assert_eq!(add(l(0), l(1)).eval(&locals), 10);
        assert_eq!(sub(l(0), l(1)).eval(&locals), 4);
        assert_eq!(mul(l(0), 2).eval(&locals), 14);
        assert_eq!(div(l(0), l(1)).eval(&locals), 2);
        assert_eq!(rem(l(0), l(1)).eval(&locals), 1);
        assert_eq!(eq(l(0), 7).eval(&locals), 1);
        assert_eq!(ne(l(0), 7).eval(&locals), 0);
        assert_eq!(lt(l(1), l(0)).eval(&locals), 1);
        assert_eq!(le(3, l(1)).eval(&locals), 1);
        assert_eq!(gt(l(1), l(0)).eval(&locals), 0);
        assert_eq!(ge(l(0), 8).eval(&locals), 0);
        assert_eq!(min(l(0), l(1)).eval(&locals), 3);
        assert_eq!(max(l(0), l(1)).eval(&locals), 7);
    }

    #[test]
    fn division_by_zero_is_total() {
        assert_eq!(div(5, 0).eval(&[]), 0);
        assert_eq!(rem(5, 0).eval(&[]), 0);
    }

    #[test]
    fn logic_is_truthiness_based() {
        assert_eq!(and(2, 3).eval(&[]), 1);
        assert_eq!(and(2, 0).eval(&[]), 0);
        assert_eq!(or(0, 0).eval(&[]), 0);
        assert_eq!(or(0, -1).eval(&[]), 1);
        assert_eq!(not(0).eval(&[]), 1);
        assert_eq!(not(5).eval(&[]), 0);
        assert_eq!(neg(5).eval(&[]), -5);
    }

    #[test]
    fn missing_local_reads_zero() {
        assert_eq!(Expr::Local(l(9)).eval(&[1, 2]), 0);
    }

    #[test]
    fn wrapping_arithmetic_does_not_panic() {
        assert_eq!(add(i64::MAX, 1).eval(&[]), i64::MIN);
        assert_eq!(neg(i64::MIN).eval(&[]), i64::MIN);
        assert_eq!(div(i64::MIN, -1).eval(&[]), i64::MIN);
    }

    #[test]
    fn constantness() {
        assert!(add(1, 2).is_constant());
        assert!(!add(1, l(0)).is_constant());
        assert!(not(0).is_constant());
    }

    #[test]
    fn display_round_trips_symbols() {
        let e = and(eq(l(0), 1), lt(l(1), 4));
        assert_eq!(e.to_string(), "((l0 == 1) && (l1 < 4))");
    }
}

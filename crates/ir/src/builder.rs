//! Builder DSL for constructing programs.
//!
//! [`ProgramBuilder`] declares shared state and thread templates;
//! [`BodyBuilder`] builds a thread body out of statements. The DSL is the
//! surface most of `sctbench` is written against, so it favours terseness:
//! most methods accept `impl Into<Expr>` / `impl Into<VarRef>` so literals,
//! locals and indexed references can be passed directly.

use crate::compile::compile_body;
use crate::error::IrError;
use crate::expr::Expr;
use crate::program::{
    BarrierDecl, BarrierId, CondvarDecl, CondvarId, GlobalDecl, LocalId, MutexDecl, MutexId,
    Program, SemDecl, SemId, Template, TemplateId, VarId,
};
use crate::stmt::{BarrierRef, CondvarRef, MutexRef, RmwOp, SemRef, Stmt, VarRef};

impl VarId {
    /// Reference cell `index` of this (array) global.
    pub fn at(self, index: impl Into<Expr>) -> VarRef {
        VarRef::indexed(self, index)
    }
}

impl MutexId {
    /// Reference instance `index` of this (array) mutex declaration.
    pub fn at(self, index: impl Into<Expr>) -> MutexRef {
        MutexRef::indexed(self, index)
    }
}

impl CondvarId {
    /// Reference instance `index` of this (array) condvar declaration.
    pub fn at(self, index: impl Into<Expr>) -> CondvarRef {
        CondvarRef::indexed(self, index)
    }
}

impl SemId {
    /// Reference instance `index` of this (array) semaphore declaration.
    pub fn at(self, index: impl Into<Expr>) -> SemRef {
        SemRef::indexed(self, index)
    }
}

impl BarrierId {
    /// Reference instance `index` of this (array) barrier declaration.
    pub fn at(self, index: impl Into<Expr>) -> BarrierRef {
        BarrierRef::indexed(self, index)
    }
}

/// Builds a [`Program`]: declares globals, synchronisation objects and thread
/// templates.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    globals: Vec<GlobalDecl>,
    mutexes: Vec<MutexDecl>,
    condvars: Vec<CondvarDecl>,
    sems: Vec<SemDecl>,
    barriers: Vec<BarrierDecl>,
    templates: Vec<(String, u32, Vec<Stmt>)>,
    main: Option<TemplateId>,
}

impl ProgramBuilder {
    /// Start building a program with the given benchmark name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declare a scalar shared variable with an initial value.
    pub fn global(&mut self, name: impl Into<String>, init: i64) -> VarId {
        let id = VarId(self.globals.len() as u32);
        self.globals.push(GlobalDecl {
            name: name.into(),
            len: 1,
            init: vec![init],
        });
        id
    }

    /// Declare a shared array initialised with the given values.
    pub fn global_array(&mut self, name: impl Into<String>, init: Vec<i64>) -> VarId {
        let id = VarId(self.globals.len() as u32);
        self.globals.push(GlobalDecl {
            name: name.into(),
            len: init.len() as u32,
            init,
        });
        id
    }

    /// Declare a shared array of `len` zero-initialised cells.
    pub fn global_array_zeroed(&mut self, name: impl Into<String>, len: usize) -> VarId {
        self.global_array(name, vec![0; len])
    }

    /// Declare a single mutex.
    pub fn mutex(&mut self, name: impl Into<String>) -> MutexId {
        self.mutex_array(name, 1)
    }

    /// Declare an array of `len` mutexes.
    pub fn mutex_array(&mut self, name: impl Into<String>, len: u32) -> MutexId {
        let id = MutexId(self.mutexes.len() as u32);
        self.mutexes.push(MutexDecl {
            name: name.into(),
            len,
        });
        id
    }

    /// Declare a single condition variable.
    pub fn condvar(&mut self, name: impl Into<String>) -> CondvarId {
        self.condvar_array(name, 1)
    }

    /// Declare an array of `len` condition variables.
    pub fn condvar_array(&mut self, name: impl Into<String>, len: u32) -> CondvarId {
        let id = CondvarId(self.condvars.len() as u32);
        self.condvars.push(CondvarDecl {
            name: name.into(),
            len,
        });
        id
    }

    /// Declare a single counting semaphore with an initial count.
    pub fn sem(&mut self, name: impl Into<String>, init: i64) -> SemId {
        self.sem_array(name, 1, init)
    }

    /// Declare an array of `len` semaphores, each with initial count `init`.
    pub fn sem_array(&mut self, name: impl Into<String>, len: u32, init: i64) -> SemId {
        let id = SemId(self.sems.len() as u32);
        self.sems.push(SemDecl {
            name: name.into(),
            len,
            init,
        });
        id
    }

    /// Declare a barrier for `participants` threads.
    pub fn barrier(&mut self, name: impl Into<String>, participants: u32) -> BarrierId {
        let id = BarrierId(self.barriers.len() as u32);
        self.barriers.push(BarrierDecl {
            name: name.into(),
            len: 1,
            participants,
        });
        id
    }

    /// Define a thread template; the closure receives a [`BodyBuilder`].
    pub fn thread(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut BodyBuilder),
    ) -> TemplateId {
        let id = TemplateId(self.templates.len() as u32);
        let mut body = BodyBuilder::new();
        f(&mut body);
        self.templates
            .push((name.into(), body.next_local, body.stmts));
        id
    }

    /// Define the main thread (the single thread that exists when execution
    /// starts). Must be called exactly once before [`Self::build`].
    pub fn main(&mut self, f: impl FnOnce(&mut BodyBuilder)) -> TemplateId {
        let id = self.thread("main", f);
        self.main = Some(id);
        id
    }

    /// Compile all templates and produce the validated [`Program`].
    pub fn build(self) -> Result<Program, IrError> {
        let main = self.main.ok_or(IrError::MissingMain)?;
        let templates = self
            .templates
            .into_iter()
            .map(|(name, locals, stmts)| Template {
                name,
                locals,
                body: compile_body(&stmts),
            })
            .collect();
        let program = Program {
            name: self.name,
            globals: self.globals,
            mutexes: self.mutexes,
            condvars: self.condvars,
            sems: self.sems,
            barriers: self.barriers,
            templates,
            main,
        };
        program.validate()?;
        Ok(program)
    }
}

/// Builds the body of a single thread template.
#[derive(Debug, Default)]
pub struct BodyBuilder {
    stmts: Vec<Stmt>,
    next_local: u32,
}

impl BodyBuilder {
    fn new() -> Self {
        BodyBuilder::default()
    }

    fn nested(&self) -> Self {
        BodyBuilder {
            stmts: Vec::new(),
            next_local: self.next_local,
        }
    }

    /// Declare a fresh local slot (initialised to zero). The name is only for
    /// readability at the call site.
    pub fn local(&mut self, _name: &str) -> LocalId {
        let id = LocalId(self.next_local);
        self.next_local += 1;
        id
    }

    /// Declare a local slot and immediately assign a constant to it.
    pub fn local_init(&mut self, name: &str, value: impl Into<Expr>) -> LocalId {
        let id = self.local(name);
        self.assign(id, value);
        id
    }

    // ----- shared memory -----

    /// Non-atomic load of a shared cell into a local.
    pub fn load(&mut self, var: impl Into<VarRef>, dst: LocalId) {
        self.stmts.push(Stmt::Load {
            var: var.into(),
            dst,
            atomic: false,
        });
    }

    /// Non-atomic store of an expression to a shared cell.
    pub fn store(&mut self, var: impl Into<VarRef>, value: impl Into<Expr>) {
        self.stmts.push(Stmt::Store {
            var: var.into(),
            value: value.into(),
            atomic: false,
        });
    }

    /// Atomic (synchronising) load.
    pub fn atomic_load(&mut self, var: impl Into<VarRef>, dst: LocalId) {
        self.stmts.push(Stmt::Load {
            var: var.into(),
            dst,
            atomic: true,
        });
    }

    /// Atomic (synchronising) store.
    pub fn atomic_store(&mut self, var: impl Into<VarRef>, value: impl Into<Expr>) {
        self.stmts.push(Stmt::Store {
            var: var.into(),
            value: value.into(),
            atomic: true,
        });
    }

    /// Atomic fetch-and-add, discarding the old value.
    pub fn fetch_add(&mut self, var: impl Into<VarRef>, operand: impl Into<Expr>) {
        self.stmts.push(Stmt::Rmw {
            var: var.into(),
            op: RmwOp::Add,
            operand: operand.into(),
            dst_old: None,
        });
    }

    /// Atomic fetch-and-add, storing the old value into `dst_old`.
    pub fn fetch_add_into(
        &mut self,
        var: impl Into<VarRef>,
        operand: impl Into<Expr>,
        dst_old: LocalId,
    ) {
        self.stmts.push(Stmt::Rmw {
            var: var.into(),
            op: RmwOp::Add,
            operand: operand.into(),
            dst_old: Some(dst_old),
        });
    }

    /// Atomic read-modify-write with an arbitrary operator.
    pub fn rmw(
        &mut self,
        var: impl Into<VarRef>,
        op: RmwOp,
        operand: impl Into<Expr>,
        dst_old: Option<LocalId>,
    ) {
        self.stmts.push(Stmt::Rmw {
            var: var.into(),
            op,
            operand: operand.into(),
            dst_old,
        });
    }

    /// Atomic exchange, storing the old value into `dst_old`.
    pub fn exchange(&mut self, var: impl Into<VarRef>, value: impl Into<Expr>, dst_old: LocalId) {
        self.rmw(var, RmwOp::Exchange, value, Some(dst_old));
    }

    /// Atomic compare-and-swap: 1 is written to `success` if the swap happened.
    pub fn cas(
        &mut self,
        var: impl Into<VarRef>,
        expected: impl Into<Expr>,
        new: impl Into<Expr>,
        success: LocalId,
    ) {
        self.stmts.push(Stmt::Cas {
            var: var.into(),
            expected: expected.into(),
            new: new.into(),
            dst_success: Some(success),
            dst_old: None,
        });
    }

    /// Atomic compare-and-swap capturing both the success flag and the old value.
    pub fn cas_full(
        &mut self,
        var: impl Into<VarRef>,
        expected: impl Into<Expr>,
        new: impl Into<Expr>,
        success: Option<LocalId>,
        old: Option<LocalId>,
    ) {
        self.stmts.push(Stmt::Cas {
            var: var.into(),
            expected: expected.into(),
            new: new.into(),
            dst_success: success,
            dst_old: old,
        });
    }

    // ----- synchronisation -----

    /// Acquire a mutex.
    pub fn lock(&mut self, mutex: impl Into<MutexRef>) {
        self.stmts.push(Stmt::Lock {
            mutex: mutex.into(),
        });
    }

    /// Release a mutex.
    pub fn unlock(&mut self, mutex: impl Into<MutexRef>) {
        self.stmts.push(Stmt::Unlock {
            mutex: mutex.into(),
        });
    }

    /// Destroy a mutex; later operations on it are bugs.
    pub fn mutex_destroy(&mut self, mutex: impl Into<MutexRef>) {
        self.stmts.push(Stmt::MutexDestroy {
            mutex: mutex.into(),
        });
    }

    /// Condition wait (`pthread_cond_wait` semantics).
    pub fn wait(&mut self, condvar: impl Into<CondvarRef>, mutex: impl Into<MutexRef>) {
        self.stmts.push(Stmt::Wait {
            condvar: condvar.into(),
            mutex: mutex.into(),
        });
    }

    /// Wake one waiter on a condition variable.
    pub fn signal(&mut self, condvar: impl Into<CondvarRef>) {
        self.stmts.push(Stmt::Signal {
            condvar: condvar.into(),
        });
    }

    /// Wake all waiters on a condition variable.
    pub fn broadcast(&mut self, condvar: impl Into<CondvarRef>) {
        self.stmts.push(Stmt::Broadcast {
            condvar: condvar.into(),
        });
    }

    /// Semaphore down (blocks while the count is zero).
    pub fn sem_wait(&mut self, sem: impl Into<SemRef>) {
        self.stmts.push(Stmt::SemWait { sem: sem.into() });
    }

    /// Semaphore up.
    pub fn sem_post(&mut self, sem: impl Into<SemRef>) {
        self.stmts.push(Stmt::SemPost { sem: sem.into() });
    }

    /// Wait at a barrier.
    pub fn barrier_wait(&mut self, barrier: impl Into<BarrierRef>) {
        self.stmts.push(Stmt::BarrierWait {
            barrier: barrier.into(),
        });
    }

    /// Spawn a thread from a template, discarding its id.
    pub fn spawn(&mut self, template: TemplateId) {
        self.stmts.push(Stmt::Spawn {
            template,
            dst: None,
        });
    }

    /// Spawn a thread from a template, storing the new thread id in `dst`.
    pub fn spawn_into(&mut self, template: TemplateId, dst: LocalId) {
        self.stmts.push(Stmt::Spawn {
            template,
            dst: Some(dst),
        });
    }

    /// Join the thread whose id is the value of `thread`.
    pub fn join(&mut self, thread: impl Into<Expr>) {
        self.stmts.push(Stmt::Join {
            thread: thread.into(),
        });
    }

    /// Visible no-op scheduling point.
    pub fn yield_(&mut self) {
        self.stmts.push(Stmt::Yield);
    }

    // ----- local computation, assertions -----

    /// Assign an expression to a local slot.
    pub fn assign(&mut self, dst: LocalId, value: impl Into<Expr>) {
        self.stmts.push(Stmt::Assign {
            dst,
            value: value.into(),
        });
    }

    /// Assert a condition over locals.
    pub fn assert_cond(&mut self, cond: impl Into<Expr>, msg: impl Into<String>) {
        self.stmts.push(Stmt::Assert {
            cond: cond.into(),
            msg: msg.into(),
        });
    }

    /// Unconditional failure; reaching this statement is a bug.
    pub fn fail(&mut self, msg: impl Into<String>) {
        self.stmts.push(Stmt::Fail { msg: msg.into() });
    }

    // ----- control flow -----

    /// `if cond { ... }`
    pub fn if_(&mut self, cond: impl Into<Expr>, then_f: impl FnOnce(&mut BodyBuilder)) {
        let mut inner = self.nested();
        then_f(&mut inner);
        self.next_local = inner.next_local;
        self.stmts.push(Stmt::If {
            cond: cond.into(),
            then_branch: inner.stmts,
            else_branch: Vec::new(),
        });
    }

    /// `if cond { ... } else { ... }`
    pub fn if_else(
        &mut self,
        cond: impl Into<Expr>,
        then_f: impl FnOnce(&mut BodyBuilder),
        else_f: impl FnOnce(&mut BodyBuilder),
    ) {
        let mut then_b = self.nested();
        then_f(&mut then_b);
        self.next_local = then_b.next_local;
        let mut else_b = self.nested();
        else_f(&mut else_b);
        self.next_local = else_b.next_local;
        self.stmts.push(Stmt::If {
            cond: cond.into(),
            then_branch: then_b.stmts,
            else_branch: else_b.stmts,
        });
    }

    /// `while cond { ... }`
    pub fn while_(&mut self, cond: impl Into<Expr>, body_f: impl FnOnce(&mut BodyBuilder)) {
        let mut inner = self.nested();
        body_f(&mut inner);
        self.next_local = inner.next_local;
        self.stmts.push(Stmt::While {
            cond: cond.into(),
            body: inner.stmts,
        });
    }

    /// Counted loop: declares a fresh counter local iterating `from..to`
    /// (exclusive upper bound) and passes it to the body closure.
    pub fn for_range(
        &mut self,
        name: &str,
        from: impl Into<Expr>,
        to: impl Into<Expr>,
        body_f: impl FnOnce(&mut BodyBuilder, LocalId),
    ) {
        let counter = self.local(name);
        self.assign(counter, from);
        let to = to.into();
        let mut inner = self.nested();
        body_f(&mut inner, counter);
        inner.assign(counter, crate::expr::add(counter, 1));
        self.next_local = inner.next_local;
        self.stmts.push(Stmt::While {
            cond: crate::expr::lt(counter, to),
            body: inner.stmts,
        });
    }

    /// Push an arbitrary statement (escape hatch for tests and generators).
    pub fn raw(&mut self, stmt: Stmt) {
        self.stmts.push(stmt);
    }

    /// Statements built so far (used by tests).
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{eq, lt};
    use crate::instr::{Instr, Op};

    #[test]
    fn build_requires_main() {
        let p = ProgramBuilder::new("no-main");
        assert!(matches!(p.build(), Err(IrError::MissingMain)));
    }

    #[test]
    fn locals_are_counted_across_nested_blocks() {
        let mut p = ProgramBuilder::new("locals");
        p.main(|b| {
            let a = b.local("a");
            b.if_(eq(a, 0), |b| {
                let c = b.local("c");
                b.assign(c, 1);
            });
            let d = b.local("d");
            b.assign(d, 2);
        });
        let prog = p.build().unwrap();
        assert_eq!(prog.templates[0].locals, 3);
    }

    #[test]
    fn for_range_compiles_to_a_bounded_loop() {
        let mut p = ProgramBuilder::new("loop");
        let x = p.global("x", 0);
        p.main(|b| {
            b.for_range("i", 0, 3, |b, _i| {
                b.store(x, 1);
            });
        });
        let prog = p.build().unwrap();
        let body = &prog.templates[0].body;
        // assign, branch, store, assign(incr), goto, halt
        assert_eq!(body.len(), 6);
        assert!(matches!(body[1], Instr::Branch { .. }));
        assert!(matches!(body[4], Instr::Goto { .. }));
    }

    #[test]
    fn dsl_helpers_produce_expected_ops() {
        let mut p = ProgramBuilder::new("ops");
        let x = p.global("x", 0);
        let arr = p.global_array("arr", vec![0, 0, 0]);
        let m = p.mutex("m");
        let cv = p.condvar("cv");
        let s = p.sem("s", 1);
        let bar = p.barrier("bar", 2);
        let t = p.thread("worker", |b| {
            b.barrier_wait(bar);
            b.sem_wait(s);
            b.sem_post(s);
        });
        p.main(|b| {
            let r = b.local("r");
            let h = b.local("h");
            b.lock(m);
            b.load(x, r);
            b.store(arr.at(1), 7);
            b.atomic_store(x, 1);
            b.fetch_add_into(x, 1, r);
            b.cas(x, 2, 3, r);
            b.wait(cv, m);
            b.signal(cv);
            b.broadcast(cv);
            b.unlock(m);
            b.spawn_into(t, h);
            b.join(h);
            b.yield_();
            b.assert_cond(lt(r, 100), "r < 100");
        });
        let prog = p.build().unwrap();
        assert!(prog.validate().is_ok());
        let main = &prog.templates[prog.main.index()];
        let mnemonics: Vec<&str> = main
            .body
            .iter()
            .filter_map(|i| i.op().map(Op::mnemonic))
            .collect();
        assert_eq!(
            mnemonics,
            vec![
                "lock",
                "load",
                "store",
                "store",
                "rmw",
                "cas",
                "wait",
                "signal",
                "broadcast",
                "unlock",
                "spawn",
                "join",
                "yield",
                "assert"
            ]
        );
    }

    #[test]
    fn indexed_references_carry_expressions() {
        let mut p = ProgramBuilder::new("indexed");
        let forks = p.mutex_array("forks", 5);
        p.main(|b| {
            let i = b.local("i");
            b.lock(forks.at(i));
            b.unlock(forks.at(i));
        });
        let prog = p.build().unwrap();
        let main = &prog.templates[prog.main.index()];
        match main.body[0].op().unwrap() {
            Op::Lock { mutex } => assert!(mutex.index.is_some()),
            other => panic!("expected lock, got {other:?}"),
        }
    }

    #[test]
    fn local_init_assigns_before_use() {
        let mut p = ProgramBuilder::new("local-init");
        p.main(|b| {
            let v = b.local_init("v", 41);
            b.assert_cond(eq(v, 41), "init");
        });
        let prog = p.build().unwrap();
        assert_eq!(prog.templates[0].locals, 1);
        assert!(matches!(
            prog.templates[0].body[0].op().unwrap(),
            Op::Assign { .. }
        ));
    }
}

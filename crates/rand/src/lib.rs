//! A minimal, dependency-free stand-in for the parts of the `rand` crate API
//! this workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`seq::SliceRandom`].
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this shim under the crate name `rand` (the study code imports
//! `rand::rngs::SmallRng` etc. unchanged). The generator is xoshiro256++
//! seeded through SplitMix64 — the same construction the real `SmallRng`
//! uses on 64-bit platforms — so sequences are deterministic across
//! platforms and runs, which is all the exploration layer relies on
//! (fixed-seed reproducibility, not cryptographic quality).

use std::ops::Range;

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open, `start < end` required).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Expand `state` into a full generator seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); width == 0 cannot happen
                // because the asserted ranges here never span the full domain.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (width as u128);
                let mut lo = m as u64;
                if lo < width {
                    let t = width.wrapping_neg() % width;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (width as u128);
                        lo = m as u64;
                    }
                }
                self.start.wrapping_add((m >> 64) as $t)
            }
        }
    )*};
}

impl_sample_range!(usize, u32, u64, i64);

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// Deterministically fork an independent child generator off this
        /// one, advancing `self` by exactly one draw. The child is seeded
        /// through the full SplitMix64 expansion of that draw, so the parent
        /// stream and every child stream are statistically decorrelated, and
        /// the whole split *tree* is a pure function of the root seed — the
        /// property parallel hand-offs (one stream per stolen subtree or
        /// worker) need for reproducible runs at any worker count.
        pub fn split(&mut self) -> SmallRng {
            SmallRng::seed_from_u64(self.next_u64())
        }

        /// [`split`](SmallRng::split) `n` ways at once: the children of one
        /// parent, in order. Equivalent to calling `split` `n` times.
        pub fn split_n(&mut self, n: usize) -> Vec<SmallRng> {
            (0..n).map(|_| self.split()).collect()
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// The subset of `rand::seq::SliceRandom` the workspace uses.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` when empty).
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn fixed_seed_reproduces_the_same_sequence() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<usize> = (0..16).map(|_| a.gen_range(0..1_000_000)).collect();
        let ys: Vec<usize> = (0..16).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(10..15usize);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "a 20-element shuffle virtually never fixes all");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn split_streams_are_deterministic_functions_of_the_root_seed() {
        // Two identical parents must produce identical child trees: same
        // child sequences, and the same parent continuation afterwards.
        let mut p1 = SmallRng::seed_from_u64(1234);
        let mut p2 = SmallRng::seed_from_u64(1234);
        let mut c1 = p1.split();
        let mut c2 = p2.split();
        let mut g1 = c1.split(); // grandchild: the tree recurses
        let mut g2 = c2.split();
        for _ in 0..50 {
            assert_eq!(
                c1.gen_range(0..1_000_000usize),
                c2.gen_range(0..1_000_000usize)
            );
            assert_eq!(
                g1.gen_range(0..1_000_000usize),
                g2.gen_range(0..1_000_000usize)
            );
            assert_eq!(
                p1.gen_range(0..1_000_000usize),
                p2.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn split_streams_diverge_from_the_parent_and_each_other() {
        let mut parent = SmallRng::seed_from_u64(77);
        let mut children = parent.split_n(3);
        let mut draws: Vec<Vec<u64>> = children
            .iter_mut()
            .map(|c| (0..16).map(|_| c.next_u64()).collect())
            .collect();
        draws.push((0..16).map(|_| parent.next_u64()).collect());
        for i in 0..draws.len() {
            for j in i + 1..draws.len() {
                assert_ne!(draws[i], draws[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn split_n_equals_repeated_split() {
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        let mut many = a.split_n(4);
        for child in many.iter_mut() {
            let mut single = b.split();
            for _ in 0..8 {
                assert_eq!(child.next_u64(), single.next_u64());
            }
        }
        assert_eq!(a.next_u64(), b.next_u64(), "parents advanced identically");
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}

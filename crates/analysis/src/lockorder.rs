//! Goodlock-style lock-order graph and cycle detection.
//!
//! An edge `a -> b` records that some live template may acquire `b` while
//! already holding `a`. A cycle in this graph is the static signature of an
//! ABBA deadlock: two threads can interleave their acquisitions so that each
//! holds a lock the other needs. Condvar `Wait` contributes its
//! *re-acquisition* edges — every other lock held across the wait is ordered
//! before the wait mutex — which is exactly the window a woken waiter blocks
//! in.

use crate::conc::Concurrency;
use crate::lockset::{resolve_node, LockNode, TemplateFacts};
use sct_ir::{Loc, MutexId, Op, Program, TemplateId};
use std::collections::{BTreeMap, BTreeSet};

/// One acquisition-under-lock fact: at `at`, `to` is acquired while `from`
/// may be held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockEdge {
    /// Lock that may already be held.
    pub from: LockNode,
    /// Lock being acquired.
    pub to: LockNode,
    /// Acquisition site.
    pub at: Loc,
}

/// Build the lock-order edges of all live templates.
pub fn lock_order_edges(
    program: &Program,
    facts: &[TemplateFacts],
    conc: &Concurrency,
    imprecise: &BTreeSet<MutexId>,
) -> Vec<LockEdge> {
    let mut edges: BTreeSet<LockEdge> = BTreeSet::new();
    for (ti, t) in program.templates.iter().enumerate() {
        if !conc.live(ti) {
            continue;
        }
        for (pc, instr) in t.body.iter().enumerate() {
            if !facts[ti].cfg.is_reachable(pc) {
                continue;
            }
            let at = Loc {
                template: TemplateId(ti as u32),
                pc: pc as u32,
            };
            match instr.op() {
                Some(Op::Lock { mutex }) => {
                    let to = resolve_node(program, imprecise, mutex);
                    for &from in &facts[ti].may[pc] {
                        edges.insert(LockEdge { from, to, at });
                    }
                }
                Some(Op::Wait { mutex, .. }) => {
                    // The waiter releases `mutex`, blocks, and re-acquires it
                    // while every *other* held lock stays held.
                    let to = resolve_node(program, imprecise, mutex);
                    for &from in &facts[ti].may[pc] {
                        if from != to {
                            edges.insert(LockEdge { from, to, at });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    edges.into_iter().collect()
}

/// Strongly-connected components of the edge set that contain a cycle
/// (size > 1, or a self-loop). Each component is returned as a sorted list
/// of its nodes; the component list itself is sorted for stable output.
pub fn lock_cycles(edges: &[LockEdge]) -> Vec<Vec<LockNode>> {
    let mut adj: BTreeMap<LockNode, BTreeSet<LockNode>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from).or_default().insert(e.to);
        adj.entry(e.to).or_default();
    }
    // Transitive closure per node (graphs here are tiny).
    let mut closure: BTreeMap<LockNode, BTreeSet<LockNode>> = BTreeMap::new();
    for &n in adj.keys() {
        let mut seen: BTreeSet<LockNode> = BTreeSet::new();
        let mut stack: Vec<LockNode> = adj[&n].iter().copied().collect();
        while let Some(m) = stack.pop() {
            if seen.insert(m) {
                stack.extend(adj[&m].iter().copied());
            }
        }
        closure.insert(n, seen);
    }
    let mut cycles: BTreeSet<Vec<LockNode>> = BTreeSet::new();
    for &n in adj.keys() {
        if !closure[&n].contains(&n) {
            continue; // not on any cycle
        }
        let component: Vec<LockNode> = closure[&n]
            .iter()
            .copied()
            .filter(|m| closure[m].contains(&n))
            .collect();
        cycles.insert(component);
    }
    cycles.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use sct_ir::prelude::*;

    #[test]
    fn abba_ordering_is_a_cycle() {
        let mut p = ProgramBuilder::new("t");
        let a = p.mutex("a");
        let b = p.mutex("b");
        let t = p.thread("worker", move |bb| {
            bb.lock(b);
            bb.lock(a);
            bb.unlock(a);
            bb.unlock(b);
        });
        p.main(move |bb| {
            bb.spawn(t);
            bb.lock(a);
            bb.lock(b);
            bb.unlock(b);
            bb.unlock(a);
        });
        let report = analyze(&p.build().unwrap());
        assert_eq!(report.lock_cycles.len(), 1);
        assert_eq!(
            report.lock_cycles[0],
            vec![LockNode::Instance(0), LockNode::Instance(1)]
        );
    }

    #[test]
    fn consistent_ordering_has_no_cycle() {
        let mut p = ProgramBuilder::new("t");
        let a = p.mutex("a");
        let b = p.mutex("b");
        let t = p.thread("worker", move |bb| {
            bb.lock(a);
            bb.lock(b);
            bb.unlock(b);
            bb.unlock(a);
        });
        p.main(move |bb| {
            bb.spawn(t);
            bb.lock(a);
            bb.lock(b);
            bb.unlock(b);
            bb.unlock(a);
        });
        let report = analyze(&p.build().unwrap());
        assert!(!report.lock_edges.is_empty());
        assert!(report.lock_cycles.is_empty());
    }

    #[test]
    fn self_acquisition_is_a_self_loop_cycle() {
        let mut p = ProgramBuilder::new("t");
        let a = p.mutex("a");
        let t = p.thread("worker", move |bb| {
            bb.lock(a);
            bb.lock(a); // self-deadlock
            bb.unlock(a);
        });
        p.main(move |bb| {
            bb.spawn(t);
        });
        let report = analyze(&p.build().unwrap());
        assert_eq!(report.lock_cycles, vec![vec![LockNode::Instance(0)]]);
    }
}

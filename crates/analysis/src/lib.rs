//! Static lockset and lock-order analysis over compiled [`sct_ir::Program`]s.
//!
//! The dynamic study (PAPER.md §5) spends 10 uncontrolled executions per
//! benchmark discovering racy locations before systematic exploration can
//! start. This crate computes a sound over-approximation of that set without
//! executing anything, plus a deadlock prediction and a lint catalogue, from
//! four purely static ingredients:
//!
//! 1. **CFGs** ([`mod@cfg`]) — per-template basic blocks and may-reach over the
//!    flat instruction stream.
//! 2. **Locksets** ([`lockset`]) — a must-held (intersection) and may-held
//!    (union) mutex dataflow, with condvar `Wait` modeled as
//!    release + re-acquire.
//! 3. **May-happen-in-parallel** ([`conc`]) — which template pairs can
//!    overlap, driven by spawn sites and spawn loops.
//! 4. **Passes** — Eraser-style race candidates ([`races`]), a Goodlock-style
//!    lock-order graph with cycle detection ([`lockorder`]), and a lint
//!    catalogue plus blocking-site inventory ([`lints`]).
//!
//! Everything over-approximates in the same direction: the race-candidate
//! set must contain every race the dynamic detector can report, and
//! [`AnalysisReport::flags_deadlock`] must fire on every benchmark whose
//! exploration finds a `Bug::Deadlock`. `tests/integration.rs` enforces both
//! differentially against the whole SCTBench registry.

#![warn(missing_docs)]

pub mod cfg;
pub mod conc;
pub mod lints;
pub mod lockorder;
pub mod lockset;
pub mod races;

pub use cfg::Cfg;
pub use conc::Concurrency;
pub use lints::{BlockingKind, BlockingSite, Lint};
pub use lockorder::LockEdge;
pub use lockset::{LockNode, TemplateFacts};
pub use races::RaceCandidate;

use sct_ir::{pretty, Loc, Program};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Everything the static analyses derive from one program.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Program (benchmark) name.
    pub name: String,
    /// Static race candidates, sorted.
    pub candidates: Vec<RaceCandidate>,
    /// Lock-order graph edges.
    pub lock_edges: Vec<LockEdge>,
    /// Lock-order cycles (each a sorted strongly-connected component).
    pub lock_cycles: Vec<Vec<LockNode>>,
    /// Reachable potentially-blocking operations (condvar / semaphore /
    /// barrier waits).
    pub blocking: Vec<BlockingSite>,
    /// Lint catalogue.
    pub lints: Vec<Lint>,
}

impl AnalysisReport {
    /// The set of instruction locations involved in any race candidate.
    /// This is the static replacement for the dynamic race phase's racy
    /// location set: feed it to `ExecConfig::with_racy_locations`.
    pub fn candidate_locations(&self) -> BTreeSet<Loc> {
        self.candidates
            .iter()
            .flat_map(|c| [c.first, c.second])
            .collect()
    }

    /// Candidate pairs as unordered `(low, high)` location pairs.
    pub fn candidate_pairs(&self) -> BTreeSet<(Loc, Loc)> {
        self.candidates
            .iter()
            .map(|c| (c.first, c.second))
            .collect()
    }

    /// Whether the static analyses see any way for an execution to deadlock:
    /// a lock-order cycle, a potentially-blocking wait, or a template that
    /// can exit while holding a lock. Conservative by design — the
    /// integration oracle requires this to fire on every benchmark whose
    /// exploration reaches a `Bug::Deadlock`.
    pub fn flags_deadlock(&self) -> bool {
        !self.lock_cycles.is_empty()
            || !self.blocking.is_empty()
            || self
                .lints
                .iter()
                .any(|l| matches!(l, Lint::LockLeak { .. }))
    }

    /// Render the report for human consumption (the `sct-table lint`
    /// subcommand). Names come from the program's declarations via
    /// [`sct_ir::pretty`].
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {}: {} race candidate(s), {} lock-order cycle(s), {} lint(s), deadlock risk: {}",
            self.name,
            self.candidates.len(),
            self.lock_cycles.len(),
            self.lints.len(),
            if self.flags_deadlock() { "yes" } else { "no" }
        );
        for cycle in &self.lock_cycles {
            let nodes: Vec<String> = cycle.iter().map(|n| n.render(program)).collect();
            let _ = writeln!(out, "  lock-order cycle: {{{}}}", nodes.join(", "));
        }
        for c in &self.candidates {
            let _ = writeln!(
                out,
                "  race candidate on {}: {} [{}] <-> {} [{}]",
                program.globals[c.var.index()].name,
                c.first,
                render_op_at(program, c.first),
                c.second,
                render_op_at(program, c.second),
            );
        }
        for l in &self.lints {
            let _ = writeln!(out, "  lint: {}", render_lint(program, l));
        }
        for b in &self.blocking {
            let kind = match b.kind {
                BlockingKind::CondvarWait => "condvar wait",
                BlockingKind::SemWait => "semaphore wait",
                BlockingKind::BarrierWait => "barrier wait",
            };
            let _ = writeln!(
                out,
                "  blocking site: {} [{}] ({kind})",
                b.loc,
                render_op_at(program, b.loc)
            );
        }
        out
    }
}

fn render_op_at(program: &Program, loc: Loc) -> String {
    program
        .templates
        .get(loc.template.index())
        .and_then(|t| t.body.get(loc.pc as usize))
        .and_then(|i| i.op())
        .map(|op| pretty::op_to_string(program, op))
        .unwrap_or_else(|| "?".into())
}

fn render_lint(program: &Program, lint: &Lint) -> String {
    match lint {
        Lint::UnlockUnheld {
            loc,
            mutex,
            on_every_path,
        } => {
            let when = if *on_every_path {
                "never held there"
            } else {
                "not held on every path"
            };
            format!("unlock of {} at {loc} is {when}", mutex.render(program))
        }
        Lint::LockLeak { template, held } => {
            let held: Vec<String> = held.iter().map(|n| n.render(program)).collect();
            format!(
                "template {} can exit still holding {{{}}}",
                program.templates[template.index()].name,
                held.join(", ")
            )
        }
        Lint::MixedAtomicity {
            var,
            atomic_at,
            non_atomic_at,
        } => format!(
            "{} is accessed atomically at {atomic_at} and non-atomically at {non_atomic_at}",
            program.globals[var.index()].name
        ),
        Lint::WaitUnsignalled { loc, condvar } => format!(
            "wait at {loc} on {} has no reachable signal/broadcast",
            program.condvars[condvar.index()].name
        ),
        Lint::SemWaitNeverPosted { loc, sem } => format!(
            "semaphore down at {loc} on {} has no reachable up",
            program.sems[sem.index()].name
        ),
    }
}

/// Run every static analysis over a program.
pub fn analyze(program: &Program) -> AnalysisReport {
    let imprecise = lockset::imprecise_bases(program);
    let facts = lockset::program_facts(program, &imprecise);
    let conc = Concurrency::build(program, &facts);
    let candidates = races::race_candidates(program, &facts, &conc);
    let lock_edges = lockorder::lock_order_edges(program, &facts, &conc, &imprecise);
    let lock_cycles = lockorder::lock_cycles(&lock_edges);
    let blocking = lints::blocking_sites(program, &facts, &conc);
    let lints = lints::collect_lints(program, &facts, &conc, &imprecise);
    AnalysisReport {
        name: program.name.clone(),
        candidates,
        lock_edges,
        lock_cycles,
        blocking,
        lints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::prelude::*;

    #[test]
    fn report_renders_with_stable_markers() {
        let mut p = ProgramBuilder::new("demo");
        let g = p.global("x", 0);
        let a = p.mutex("a");
        let b = p.mutex("b");
        let t = p.thread("worker", move |bb| {
            bb.lock(b);
            bb.lock(a);
            bb.unlock(a);
            bb.unlock(b);
            bb.store(g, 1);
        });
        p.main(move |bb| {
            bb.spawn(t);
            bb.lock(a);
            bb.lock(b);
            bb.unlock(b);
            bb.unlock(a);
            bb.store(g, 2);
        });
        let program = p.build().unwrap();
        let report = analyze(&program);
        assert!(report.flags_deadlock());
        assert_eq!(report.candidates.len(), 1);
        let text = report.render(&program);
        assert!(text.contains("lock-order cycle"), "{text}");
        assert!(text.contains("race candidate on x"), "{text}");
        assert!(text.contains("deadlock risk: yes"), "{text}");
    }

    #[test]
    fn clean_program_is_clean() {
        let mut p = ProgramBuilder::new("clean");
        let g = p.global("x", 0);
        let m = p.mutex("m");
        let t = p.thread("worker", move |bb| {
            bb.lock(m);
            bb.fetch_add(g, 1);
            bb.unlock(m);
        });
        p.main(move |bb| {
            bb.spawn(t);
            bb.lock(m);
            bb.fetch_add(g, 1);
            bb.unlock(m);
        });
        let program = p.build().unwrap();
        let report = analyze(&program);
        assert!(report.candidates.is_empty());
        assert!(report.lock_cycles.is_empty());
        assert!(report.lints.is_empty());
        assert!(!report.flags_deadlock());
        assert!(report.render(&program).contains("deadlock risk: no"));
    }

    #[test]
    fn registry_smoke_runs_on_every_benchmark() {
        for spec in sctbench::all_benchmarks() {
            let program = spec.program();
            let report = analyze(&program);
            // Rendering must never panic and always carries the header.
            assert!(report
                .render(&program)
                .starts_with(&format!("== {}", spec.name)));
        }
    }
}

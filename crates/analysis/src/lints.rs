//! Lint catalogue and blocking-site inventory.
//!
//! These are heuristics layered on the same dataflow facts as the race and
//! deadlock analyses: cheap, purely static, and deliberately conservative in
//! what they assert. Together with the lock-order cycles they drive
//! [`crate::AnalysisReport::flags_deadlock`], whose contract (checked by the
//! integration oracle) is *no false negatives* against explored
//! `Bug::Deadlock`s — lost wakeups and semaphore self-blocks show up via the
//! blocking-site inventory even though they involve no lock cycle.

use crate::conc::Concurrency;
use crate::lockset::{resolve_node, LockNode, TemplateFacts};
use crate::races::collect_accesses;
use sct_ir::{CondvarId, Expr, Loc, MutexId, Op, Program, SemId, TemplateId, VarId};
use std::collections::BTreeSet;

/// A statically detected code smell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// A mutex is released at a point where it is not (or not certainly)
    /// held.
    UnlockUnheld {
        /// The releasing instruction.
        loc: Loc,
        /// The mutex being released.
        mutex: LockNode,
        /// `true`: not held on *any* path (double unlock / unlock before
        /// lock). `false`: held on some paths but not all.
        on_every_path: bool,
    },
    /// A template can reach thread exit while possibly holding locks.
    LockLeak {
        /// The leaking template.
        template: TemplateId,
        /// Locks possibly still held at exit.
        held: Vec<LockNode>,
    },
    /// One variable is accessed both atomically and non-atomically.
    MixedAtomicity {
        /// The variable.
        var: VarId,
        /// One atomic access site.
        atomic_at: Loc,
        /// One non-atomic access site.
        non_atomic_at: Loc,
    },
    /// A condvar wait with no reachable signal/broadcast on an aliasing
    /// condvar anywhere in the live program.
    WaitUnsignalled {
        /// The wait site.
        loc: Loc,
        /// The condvar waited on.
        condvar: CondvarId,
    },
    /// A semaphore down with no reachable up on an aliasing semaphore.
    SemWaitNeverPosted {
        /// The down site.
        loc: Loc,
        /// The semaphore.
        sem: SemId,
    },
}

/// The kind of a potentially-blocking operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlockingKind {
    /// Condition wait — can block forever on a lost wakeup.
    CondvarWait,
    /// Semaphore down — can block forever when no matching up runs.
    SemWait,
    /// Barrier wait — can block forever when a participant is missing.
    BarrierWait,
}

/// A reachable instruction that can block indefinitely on a condition other
/// than a mutex acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlockingSite {
    /// The instruction.
    pub loc: Loc,
    /// What it blocks on.
    pub kind: BlockingKind,
}

/// Instance index of an indexed sync-object reference, when constant.
/// `None` in the returned option means "statically unknown instance".
fn const_index(index: &Option<Expr>) -> Option<i64> {
    match index {
        None => Some(0),
        Some(e) if e.is_constant() => Some(e.eval(&[])),
        Some(_) => None,
    }
}

/// Two (base, instance) references may denote the same object.
fn alias<I: PartialEq>(a: &(I, Option<i64>), b: &(I, Option<i64>)) -> bool {
    a.0 == b.0
        && match (&a.1, &b.1) {
            (Some(x), Some(y)) => x == y,
            _ => true,
        }
}

fn reachable_live_ops<'p>(
    program: &'p Program,
    facts: &'p [TemplateFacts],
    conc: &'p Concurrency,
) -> impl Iterator<Item = (Loc, &'p Op)> {
    program
        .templates
        .iter()
        .enumerate()
        .filter(move |(ti, _)| conc.live(*ti))
        .flat_map(move |(ti, t)| {
            t.body
                .iter()
                .enumerate()
                .filter(move |(pc, _)| facts[ti].cfg.is_reachable(*pc))
                .filter_map(move |(pc, instr)| {
                    instr.op().map(|op| {
                        (
                            Loc {
                                template: TemplateId(ti as u32),
                                pc: pc as u32,
                            },
                            op,
                        )
                    })
                })
        })
}

/// Collect the full lint catalogue for a program.
pub fn collect_lints(
    program: &Program,
    facts: &[TemplateFacts],
    conc: &Concurrency,
    imprecise: &BTreeSet<MutexId>,
) -> Vec<Lint> {
    let mut lints: BTreeSet<Lint> = BTreeSet::new();

    // Wake/post inventory for the lost-wakeup lints.
    let mut signals: Vec<(CondvarId, Option<i64>)> = Vec::new();
    let mut posts: Vec<(SemId, Option<i64>)> = Vec::new();
    for (_, op) in reachable_live_ops(program, facts, conc) {
        match op {
            Op::Signal { condvar } | Op::Broadcast { condvar } => {
                signals.push((condvar.base, const_index(&condvar.index)));
            }
            Op::SemPost { sem } => posts.push((sem.base, const_index(&sem.index))),
            _ => {}
        }
    }

    for (loc, op) in reachable_live_ops(program, facts, conc) {
        let (ti, pc) = (loc.template.index(), loc.pc as usize);
        match op {
            Op::Unlock { mutex } => {
                let node = resolve_node(program, imprecise, mutex);
                if !facts[ti].may[pc].contains(&node) {
                    lints.insert(Lint::UnlockUnheld {
                        loc,
                        mutex: node,
                        on_every_path: true,
                    });
                } else if let LockNode::Instance(i) = node {
                    if !facts[ti].must[pc].contains(&i) {
                        lints.insert(Lint::UnlockUnheld {
                            loc,
                            mutex: node,
                            on_every_path: false,
                        });
                    }
                }
            }
            Op::Wait { condvar, .. } => {
                let key = (condvar.base, const_index(&condvar.index));
                if !signals.iter().any(|s| alias(s, &key)) {
                    lints.insert(Lint::WaitUnsignalled {
                        loc,
                        condvar: condvar.base,
                    });
                }
            }
            Op::SemWait { sem } => {
                let key = (sem.base, const_index(&sem.index));
                if !posts.iter().any(|s| alias(s, &key)) {
                    lints.insert(Lint::SemWaitNeverPosted { loc, sem: sem.base });
                }
            }
            _ => {}
        }
    }

    // Lock leaks: exit may-set non-empty.
    for (ti, f) in facts.iter().enumerate() {
        if conc.live(ti) && !f.exit_may.is_empty() {
            lints.insert(Lint::LockLeak {
                template: TemplateId(ti as u32),
                held: f.exit_may.iter().copied().collect(),
            });
        }
    }

    // Mixed atomicity: one lint per variable, anchored at the first
    // offending pair in location order.
    let accesses = collect_accesses(program, facts, conc);
    let mut flagged: BTreeSet<VarId> = BTreeSet::new();
    for (i, a) in accesses.iter().enumerate() {
        if flagged.contains(&a.var) {
            continue;
        }
        for b in &accesses[i + 1..] {
            if a.var != b.var || a.atomic == b.atomic {
                continue;
            }
            let cells_alias = match (a.cell, b.cell) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            };
            if !cells_alias {
                continue;
            }
            let (at, nat) = if a.atomic { (a, b) } else { (b, a) };
            lints.insert(Lint::MixedAtomicity {
                var: a.var,
                atomic_at: at.loc,
                non_atomic_at: nat.loc,
            });
            flagged.insert(a.var);
            break;
        }
    }

    lints.into_iter().collect()
}

/// Inventory every reachable instruction that can block on a condition
/// other than a lock acquisition.
pub fn blocking_sites(
    program: &Program,
    facts: &[TemplateFacts],
    conc: &Concurrency,
) -> Vec<BlockingSite> {
    let mut out = Vec::new();
    for (loc, op) in reachable_live_ops(program, facts, conc) {
        let kind = match op {
            Op::Wait { .. } => BlockingKind::CondvarWait,
            Op::SemWait { .. } => BlockingKind::SemWait,
            Op::BarrierWait { .. } => BlockingKind::BarrierWait,
            _ => continue,
        };
        out.push(BlockingSite { loc, kind });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use sct_ir::prelude::*;

    #[test]
    fn double_unlock_and_some_path_unlock() {
        let mut p = ProgramBuilder::new("t");
        let m = p.mutex("m");
        let n = p.mutex("n");
        p.main(move |b| {
            b.unlock(m); // never held
            let c = b.local("c");
            b.if_else(
                c,
                |b| {
                    b.lock(n);
                },
                |_| {},
            );
            b.unlock(n); // held on one path only
        });
        let report = analyze(&p.build().unwrap());
        let unheld: Vec<&Lint> = report
            .lints
            .iter()
            .filter(|l| matches!(l, Lint::UnlockUnheld { .. }))
            .collect();
        assert_eq!(unheld.len(), 2, "{:?}", report.lints);
        assert!(unheld.iter().any(|l| matches!(
            l,
            Lint::UnlockUnheld {
                on_every_path: true,
                mutex: LockNode::Instance(0),
                ..
            }
        )));
        assert!(unheld.iter().any(|l| matches!(
            l,
            Lint::UnlockUnheld {
                on_every_path: false,
                mutex: LockNode::Instance(1),
                ..
            }
        )));
    }

    #[test]
    fn wait_without_signal_and_sem_without_post() {
        let mut p = ProgramBuilder::new("t");
        let m = p.mutex("m");
        let cv = p.condvar("cv");
        let s = p.sem("s", 0);
        let t = p.thread("worker", move |b| {
            b.lock(m);
            b.wait(cv, m);
            b.unlock(m);
            b.sem_wait(s);
        });
        p.main(move |b| {
            b.spawn(t);
        });
        let report = analyze(&p.build().unwrap());
        assert!(report
            .lints
            .iter()
            .any(|l| matches!(l, Lint::WaitUnsignalled { .. })));
        assert!(report
            .lints
            .iter()
            .any(|l| matches!(l, Lint::SemWaitNeverPosted { .. })));
        assert_eq!(report.blocking.len(), 2);
        assert!(report.flags_deadlock());
    }

    #[test]
    fn signalled_wait_is_clean() {
        let mut p = ProgramBuilder::new("t");
        let m = p.mutex("m");
        let cv = p.condvar("cv");
        let g = p.global("flag", 0);
        let t = p.thread("worker", move |b| {
            b.lock(m);
            let f = b.local("f");
            b.load(g, f);
            b.if_else(
                f,
                |_| {},
                |b| {
                    b.wait(cv, m);
                },
            );
            b.unlock(m);
        });
        p.main(move |b| {
            b.spawn(t);
            b.lock(m);
            b.store(g, 1);
            b.signal(cv);
            b.unlock(m);
        });
        let report = analyze(&p.build().unwrap());
        assert!(
            !report
                .lints
                .iter()
                .any(|l| matches!(l, Lint::WaitUnsignalled { .. })),
            "{:?}",
            report.lints
        );
    }

    #[test]
    fn mixed_atomicity_is_one_lint_per_var() {
        let mut p = ProgramBuilder::new("t");
        let g = p.global("x", 0);
        p.main(move |b| {
            b.atomic_store(g, 1);
            b.store(g, 2);
            b.store(g, 3);
        });
        let report = analyze(&p.build().unwrap());
        let mixed: Vec<&Lint> = report
            .lints
            .iter()
            .filter(|l| matches!(l, Lint::MixedAtomicity { .. }))
            .collect();
        assert_eq!(mixed.len(), 1, "{:?}", report.lints);
    }
}

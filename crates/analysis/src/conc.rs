//! May-happen-in-parallel model over templates and spawn sites.
//!
//! Threads are instantiated from templates by `Spawn` instructions, so the
//! static picture of "which code can run concurrently" is driven by spawn
//! sites: an instruction of template `B` can overlap an instruction at
//! `(A, pc)` if some spawn site able to (transitively) create a `B` instance
//! either lives in a third template, or lives in `A` at a site from which
//! `pc` is still reachable. Two instructions of the *same* template overlap
//! only when two instances of that template can be alive at once (two spawn
//! sites, a spawn site on a loop, or a spawn site in a template that is
//! itself multiply instantiated).
//!
//! Everything here over-approximates: join edges, barriers and semaphore
//! hand-offs are ignored, which only ever *adds* may-happen-in-parallel
//! pairs. That is the direction soundness needs — the race-candidate set
//! must cover everything the dynamic detector can observe.

use crate::lockset::TemplateFacts;
use sct_ir::{Loc, Op, Program};

/// A spawn site: `pc` within `template` (both as raw indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpawnSite {
    /// Template the spawn instruction lives in.
    pub template: usize,
    /// Instruction index of the spawn.
    pub pc: usize,
}

/// The may-happen-in-parallel relation.
#[derive(Debug, Clone)]
pub struct Concurrency {
    /// `live[t]`: an instance of template `t` can exist in some execution.
    live: Vec<bool>,
    /// `multi[t]`: two instances of template `t` can be alive at once.
    multi: Vec<bool>,
    /// `sites[t]`: reachable spawn sites whose transitive spawn closure
    /// contains `t`.
    sites: Vec<Vec<SpawnSite>>,
}

fn reachable_spawns(program: &Program, facts: &[TemplateFacts], t: usize) -> Vec<(usize, usize)> {
    program.templates[t]
        .body
        .iter()
        .enumerate()
        .filter(|(pc, _)| facts[t].cfg.is_reachable(*pc))
        .filter_map(|(pc, instr)| match instr.op() {
            Some(Op::Spawn { template, .. }) => Some((pc, template.index())),
            _ => None,
        })
        .collect()
}

impl Concurrency {
    /// Build the relation for a program whose per-template facts are already
    /// computed.
    pub fn build(program: &Program, facts: &[TemplateFacts]) -> Concurrency {
        let n = program.templates.len();
        let main = program.main.index();

        // Templates reachable from main through reachable spawn sites.
        let mut live = vec![false; n];
        live[main] = true;
        let mut stack = vec![main];
        while let Some(t) = stack.pop() {
            for (_, target) in reachable_spawns(program, facts, t) {
                if !live[target] {
                    live[target] = true;
                    stack.push(target);
                }
            }
        }

        // closure[t]: templates transitively instantiable once a `t` thread
        // starts (including `t` itself).
        let mut closure: Vec<Vec<bool>> = Vec::with_capacity(n);
        for d in 0..n {
            let mut c = vec![false; n];
            c[d] = true;
            let mut stack = vec![d];
            while let Some(t) = stack.pop() {
                for (_, target) in reachable_spawns(program, facts, t) {
                    if !c[target] {
                        c[target] = true;
                        stack.push(target);
                    }
                }
            }
            closure.push(c);
        }

        // sites[b]: spawn sites in live templates able to create a `b`.
        let mut sites: Vec<Vec<SpawnSite>> = vec![Vec::new(); n];
        for (c, c_live) in live.iter().enumerate() {
            if !c_live {
                continue;
            }
            for (pc, target) in reachable_spawns(program, facts, c) {
                for (b, site_list) in sites.iter_mut().enumerate() {
                    if closure[target][b] {
                        site_list.push(SpawnSite { template: c, pc });
                    }
                }
            }
        }

        // multi[b]: two instances at once. Fixpoint because a multiply-
        // instantiated spawner multiplies everything it spawns.
        let mut multi = vec![false; n];
        loop {
            let mut changed = false;
            for b in 0..n {
                if multi[b] || !live[b] {
                    continue;
                }
                let m = sites[b].len() >= 2
                    || sites[b]
                        .iter()
                        .any(|s| facts[s.template].cfg.may_reach_after(s.pc, s.pc))
                    || sites[b].iter().any(|s| multi[s.template]);
                if m {
                    multi[b] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        Concurrency { live, multi, sites }
    }

    /// Whether template `t` can be instantiated at all.
    pub fn live(&self, t: usize) -> bool {
        self.live[t]
    }

    /// Whether two instances of template `t` can be alive at once.
    pub fn multi(&self, t: usize) -> bool {
        self.multi[t]
    }

    /// May the instructions at `l1` and `l2` execute concurrently?
    pub fn mhp(&self, facts: &[TemplateFacts], l1: Loc, l2: Loc) -> bool {
        let (a, p1) = (l1.template.index(), l1.pc as usize);
        let (b, p2) = (l2.template.index(), l2.pc as usize);
        if !self.live[a] || !self.live[b] {
            return false;
        }
        if a == b {
            return self.multi[a];
        }
        // The pair overlaps if a `b` instance can exist while `a` is at
        // `p1` (a site able to create one lies outside `a`, or inside `a`
        // at a point from which `p1` is still reachable, or a sibling `a`
        // instance can do the spawn) — or symmetrically. A disjunction: the
        // initial thread, for instance, has no spawn sites of its own, yet
        // everything it spawns runs concurrently with its post-spawn code.
        let b_during_a = self.multi[a]
            || self.sites[b]
                .iter()
                .any(|s| s.template != a || facts[a].cfg.may_reach_after(s.pc, p1));
        let a_during_b = self.multi[b]
            || self.sites[a]
                .iter()
                .any(|s| s.template != b || facts[b].cfg.may_reach_after(s.pc, p2));
        b_during_a || a_during_b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockset::{imprecise_bases, program_facts};
    use sct_ir::prelude::*;
    use sct_ir::{Loc, TemplateId};

    fn loc(t: TemplateId, pc: u32) -> Loc {
        Loc { template: t, pc }
    }

    fn first_pc(program: &sct_ir::Program, t: TemplateId, pred: impl Fn(&Op) -> bool) -> u32 {
        program.templates[t.index()]
            .body
            .iter()
            .position(|i| i.op().is_some_and(&pred))
            .expect("op present") as u32
    }

    #[test]
    fn accesses_after_spawn_overlap_the_child() {
        let mut p = ProgramBuilder::new("t");
        let g = p.global("x", 0);
        let child = p.thread("child", |b| {
            b.store(g, 1);
        });
        let main = p.main(move |b| {
            b.store(g, 2); // before the spawn: cannot overlap the child
            b.spawn(child);
            b.store(g, 3); // after the spawn: can overlap
        });
        let program = p.build().unwrap();
        let facts = program_facts(&program, &imprecise_bases(&program));
        let conc = Concurrency::build(&program, &facts);

        let child_store = loc(
            child,
            first_pc(&program, child, |o| matches!(o, Op::Store { .. })),
        );
        let stores: Vec<u32> = program.templates[main.index()]
            .body
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i.op(), Some(Op::Store { .. })))
            .map(|(pc, _)| pc as u32)
            .collect();
        assert!(!conc.mhp(&facts, loc(main, stores[0]), child_store));
        assert!(conc.mhp(&facts, loc(main, stores[1]), child_store));
        assert!(!conc.multi(child.index()));
    }

    #[test]
    fn spawn_in_loop_makes_template_self_concurrent() {
        let mut p = ProgramBuilder::new("t");
        let g = p.global("x", 0);
        let child = p.thread("child", |b| {
            b.store(g, 1);
        });
        p.main(move |b| {
            b.for_range("i", 0, 3, |b, _| {
                b.spawn(child);
            });
        });
        let program = p.build().unwrap();
        let facts = program_facts(&program, &imprecise_bases(&program));
        let conc = Concurrency::build(&program, &facts);
        assert!(conc.multi(child.index()));
        let s = loc(
            child,
            first_pc(&program, child, |o| matches!(o, Op::Store { .. })),
        );
        assert!(conc.mhp(&facts, s, s), "two instances of the same template");
    }

    #[test]
    fn unspawned_template_is_dead() {
        let mut p = ProgramBuilder::new("t");
        let g = p.global("x", 0);
        let orphan = p.thread("orphan", |b| {
            b.store(g, 1);
        });
        p.main(|b| {
            b.store(g, 2);
        });
        let program = p.build().unwrap();
        let facts = program_facts(&program, &imprecise_bases(&program));
        let conc = Concurrency::build(&program, &facts);
        assert!(!conc.live(orphan.index()));
    }
}

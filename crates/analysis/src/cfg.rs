//! Per-template control-flow graphs over the flat [`Instr`] stream.
//!
//! The compiler lowers structured control flow to `Goto`/`Branch`
//! instructions whose targets are instruction indices, so a CFG is recovered
//! by splitting the body at branch targets and post-branch positions. The
//! graph answers the reachability queries the dataflow passes and the
//! may-happen-in-parallel model need:
//!
//! * [`Cfg::is_reachable`] — is a pc reachable from the template entry?
//! * [`Cfg::reaches`] — can control flow from one pc to another (zero or
//!   more steps)?
//! * [`Cfg::may_reach_after`] — can control *continue past* a pc and later
//!   arrive at another (one or more steps)? Used to decide whether a spawn
//!   site can still run code afterwards, and whether a spawn sits on a loop.

use sct_ir::Instr;

/// A maximal straight-line run of instructions: `start..end`, with edges out
/// of the last instruction to the `succs` blocks.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// First instruction index in the block.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block indices (empty for exit blocks).
    pub succs: Vec<usize>,
}

/// Control-flow graph of one template body.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Block index of each instruction.
    block_of: Vec<usize>,
    /// `reach[b]` holds every block reachable from `b` via one or more edges.
    reach: Vec<Vec<bool>>,
    /// Instruction-level successors (targets past the end of the body, i.e.
    /// thread exit, are omitted).
    succ: Vec<Vec<usize>>,
    /// Reachable from the template entry.
    reachable: Vec<bool>,
}

fn instr_succs(body: &[Instr], pc: usize) -> Vec<usize> {
    let len = body.len();
    let mut out = Vec::new();
    match &body[pc] {
        Instr::Op { .. } => {
            if pc + 1 < len {
                out.push(pc + 1);
            }
        }
        Instr::Goto { target } => {
            if *target < len {
                out.push(*target);
            }
        }
        Instr::Branch { target, .. } => {
            if pc + 1 < len {
                out.push(pc + 1);
            }
            if *target < len && !out.contains(target) {
                out.push(*target);
            }
        }
        Instr::Halt => {}
    }
    out
}

impl Cfg {
    /// Build the CFG of one template body.
    pub fn build(body: &[Instr]) -> Cfg {
        let len = body.len();
        let succ: Vec<Vec<usize>> = (0..len).map(|pc| instr_succs(body, pc)).collect();

        // Leaders: entry, every branch target, and every instruction after a
        // control transfer.
        let mut leader = vec![false; len];
        if len > 0 {
            leader[0] = true;
        }
        for pc in 0..len {
            match &body[pc] {
                Instr::Goto { target } | Instr::Branch { target, .. } => {
                    if *target < len {
                        leader[*target] = true;
                    }
                    if pc + 1 < len {
                        leader[pc + 1] = true;
                    }
                }
                Instr::Halt => {
                    if pc + 1 < len {
                        leader[pc + 1] = true;
                    }
                }
                Instr::Op { .. } => {}
            }
        }

        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of = vec![0usize; len];
        for pc in 0..len {
            if leader[pc] {
                blocks.push(BasicBlock {
                    start: pc,
                    end: pc + 1,
                    succs: Vec::new(),
                });
            } else {
                blocks.last_mut().expect("entry is a leader").end = pc + 1;
            }
            block_of[pc] = blocks.len() - 1;
        }
        for block in &mut blocks {
            let last = block.end - 1;
            // Every instruction-level successor of a block terminator is a
            // leader, so the mapping to block indices is exact.
            block.succs = succ[last].iter().map(|&t| block_of[t]).collect();
            block.succs.dedup();
        }

        // Transitive closure over >= 1 block edge, one DFS per block.
        let nb = blocks.len();
        let mut reach = vec![vec![false; nb]; nb];
        for (b, row) in reach.iter_mut().enumerate() {
            let mut stack: Vec<usize> = blocks[b].succs.clone();
            while let Some(c) = stack.pop() {
                if !row[c] {
                    row[c] = true;
                    stack.extend(blocks[c].succs.iter().copied());
                }
            }
        }

        // A block is entered at its start, so every pc of a block reachable
        // from the entry block (or in it) is reachable.
        let mut reachable = vec![false; len];
        if len > 0 {
            for pc in 0..len {
                let b = block_of[pc];
                reachable[pc] = b == 0 || reach[0][b];
            }
        }

        Cfg {
            blocks,
            block_of,
            reach,
            succ,
            reachable,
        }
    }

    /// The basic blocks, in instruction order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Instruction-level successors of `pc` (exits omitted).
    pub fn succs(&self, pc: usize) -> &[usize] {
        &self.succ[pc]
    }

    /// Whether `pc` is reachable from the template entry.
    pub fn is_reachable(&self, pc: usize) -> bool {
        self.reachable.get(pc).copied().unwrap_or(false)
    }

    /// Whether control at `from` can reach `to` in zero or more steps.
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        let (fb, tb) = (self.block_of[from], self.block_of[to]);
        (fb == tb && to >= from) || self.reach[fb][tb]
    }

    /// Whether control can *continue past* `from` (take one of its
    /// successors) and then reach `to`. `may_reach_after(pc, pc)` is true
    /// exactly when `pc` sits on a cycle.
    pub fn may_reach_after(&self, from: usize, to: usize) -> bool {
        self.succ[from].iter().any(|&s| self.reaches(s, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::Expr;

    fn goto(target: usize) -> Instr {
        Instr::Goto { target }
    }

    fn branch(target: usize) -> Instr {
        Instr::Branch {
            cond: Expr::Const(1),
            target,
        }
    }

    fn yield_op() -> Instr {
        Instr::Op {
            op: sct_ir::Op::Yield,
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let body = vec![yield_op(), yield_op(), Instr::Halt];
        let cfg = Cfg::build(&body);
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.reaches(0, 2));
        assert!(!cfg.reaches(2, 0));
        assert!(cfg.is_reachable(2));
        assert!(!cfg.may_reach_after(2, 2));
    }

    #[test]
    fn branch_splits_blocks_and_loops_are_cycles() {
        // 0: branch -> 3
        // 1: yield
        // 2: goto 0
        // 3: halt
        let body = vec![branch(3), yield_op(), goto(0), Instr::Halt];
        let cfg = Cfg::build(&body);
        assert!(cfg.reaches(0, 3));
        assert!(cfg.reaches(1, 0), "loop back-edge");
        assert!(cfg.may_reach_after(0, 0), "pc 0 sits on a cycle");
        assert!(!cfg.may_reach_after(3, 3));
        assert!(cfg.is_reachable(1));
    }

    #[test]
    fn code_after_unconditional_transfer_is_unreachable() {
        // 0: goto 2
        // 1: yield   <- dead
        // 2: halt
        let body = vec![goto(2), yield_op(), Instr::Halt];
        let cfg = Cfg::build(&body);
        assert!(cfg.is_reachable(0));
        assert!(!cfg.is_reachable(1));
        assert!(cfg.is_reachable(2));
    }

    #[test]
    fn empty_body() {
        let cfg = Cfg::build(&[]);
        assert!(cfg.blocks().is_empty());
        assert!(!cfg.is_reachable(0));
    }
}

//! Eraser-style static race candidates.
//!
//! A pair of shared-memory accesses is a *race candidate* when every static
//! argument for their ordering fails: they may alias, at least one writes, at
//! least one is non-atomic, the instructions may happen in parallel, and
//! their must-locksets share no mutex instance. The set over-approximates
//! the dynamic detector's reports — see the soundness oracle in
//! `tests/integration.rs` — and is what `--static-phase` promotes to visible
//! operations in place of the paper's 10-run dynamic race phase.

use crate::conc::Concurrency;
use crate::lockset::TemplateFacts;
use sct_ir::{Loc, Op, Program, TemplateId, VarId, VarRef};
use std::collections::BTreeSet;

/// A static race candidate: two may-parallel accesses to the same variable
/// with no common lock, at least one write, at least one non-atomic.
/// `first <= second` in location order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RaceCandidate {
    /// The variable both locations access.
    pub var: VarId,
    /// Lower location of the pair.
    pub first: Loc,
    /// Higher location of the pair (equal to `first` only for a
    /// self-concurrent access in a multiply-instantiated template).
    pub second: Loc,
    /// Whether `first` writes.
    pub first_is_write: bool,
    /// Whether `second` writes.
    pub second_is_write: bool,
}

/// One shared-memory access site.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Access {
    pub loc: Loc,
    pub var: VarId,
    /// Flattened global-cell offset when the index is a compile-time
    /// constant in bounds; `None` means "some cell of `var`".
    pub cell: Option<usize>,
    pub write: bool,
    pub atomic: bool,
}

fn resolve_cell(program: &Program, var: &VarRef) -> Option<usize> {
    let off = program.global_offset(var.var);
    let len = i64::from(program.globals[var.var.index()].len);
    match &var.index {
        None => Some(off),
        Some(e) if e.is_constant() => {
            let i = e.eval(&[]);
            (0..len).contains(&i).then(|| off + i as usize)
        }
        Some(_) => None,
    }
}

/// Every reachable shared-memory access in every live template.
pub(crate) fn collect_accesses(
    program: &Program,
    facts: &[TemplateFacts],
    conc: &Concurrency,
) -> Vec<Access> {
    let mut out = Vec::new();
    for (ti, t) in program.templates.iter().enumerate() {
        if !conc.live(ti) {
            continue;
        }
        for (pc, instr) in t.body.iter().enumerate() {
            if !facts[ti].cfg.is_reachable(pc) {
                continue;
            }
            let Some(op) = instr.op() else { continue };
            let (var, write, atomic) = match op {
                Op::Load { var, atomic, .. } => (var, false, *atomic),
                Op::Store { var, atomic, .. } => (var, true, *atomic),
                Op::Rmw { var, .. } | Op::Cas { var, .. } => (var, true, true),
                _ => continue,
            };
            out.push(Access {
                loc: Loc {
                    template: TemplateId(ti as u32),
                    pc: pc as u32,
                },
                var: var.var,
                cell: resolve_cell(program, var),
                write,
                atomic,
            });
        }
    }
    out
}

fn may_alias(a: &Access, b: &Access) -> bool {
    a.var == b.var
        && match (a.cell, b.cell) {
            (Some(x), Some(y)) => x == y,
            _ => true,
        }
}

/// Enumerate all static race candidates.
pub fn race_candidates(
    program: &Program,
    facts: &[TemplateFacts],
    conc: &Concurrency,
) -> Vec<RaceCandidate> {
    let accesses = collect_accesses(program, facts, conc);
    let mut out: BTreeSet<RaceCandidate> = BTreeSet::new();
    for (i, a) in accesses.iter().enumerate() {
        for b in &accesses[i..] {
            if !may_alias(a, b) {
                continue;
            }
            if !(a.write || b.write) {
                continue;
            }
            // The dynamic detector never reports a pair whose *both* sides
            // are atomic (atomics synchronise on their cell), but it does
            // report atomic/non-atomic pairs — keep those.
            if a.atomic && b.atomic {
                continue;
            }
            if !conc.mhp(facts, a.loc, b.loc) {
                continue;
            }
            let must_a = &facts[a.loc.template.index()].must[a.loc.pc as usize];
            let must_b = &facts[b.loc.template.index()].must[b.loc.pc as usize];
            if must_a.intersection(must_b).next().is_some() {
                continue;
            }
            let (first, second) = if a.loc <= b.loc { (a, b) } else { (b, a) };
            out.insert(RaceCandidate {
                var: a.var,
                first: first.loc,
                second: second.loc,
                first_is_write: first.write,
                second_is_write: second.write,
            });
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use crate::analyze;
    use sct_ir::prelude::*;

    #[test]
    fn unlocked_concurrent_writes_are_candidates() {
        let mut p = ProgramBuilder::new("t");
        let g = p.global("x", 0);
        let t = p.thread("worker", |b| {
            b.store(g, 1);
        });
        p.main(move |b| {
            b.spawn(t);
            b.store(g, 2);
        });
        let report = analyze(&p.build().unwrap());
        assert_eq!(report.candidates.len(), 1);
        let c = &report.candidates[0];
        assert!(c.first_is_write && c.second_is_write);
        assert_eq!(c.var, g);
    }

    #[test]
    fn consistent_locking_discipline_suppresses_the_pair() {
        let mut p = ProgramBuilder::new("t");
        let g = p.global("x", 0);
        let m = p.mutex("m");
        let t = p.thread("worker", move |b| {
            b.lock(m);
            b.store(g, 1);
            b.unlock(m);
        });
        p.main(move |b| {
            b.spawn(t);
            b.lock(m);
            b.store(g, 2);
            b.unlock(m);
        });
        let report = analyze(&p.build().unwrap());
        assert!(report.candidates.is_empty(), "{:?}", report.candidates);
    }

    #[test]
    fn atomic_atomic_pairs_are_not_candidates_but_mixed_pairs_are() {
        let mut p = ProgramBuilder::new("t");
        let g = p.global("x", 0);
        let h = p.global("y", 0);
        let t = p.thread("worker", |b| {
            b.atomic_store(g, 1);
            b.atomic_store(h, 1);
        });
        p.main(move |b| {
            b.spawn(t);
            b.atomic_store(g, 2); // atomic/atomic: ordered by the cell
            let l = b.local("l");
            b.load(h, l); // non-atomic read vs atomic write: candidate
        });
        let report = analyze(&p.build().unwrap());
        assert_eq!(report.candidates.len(), 1, "{:?}", report.candidates);
        assert_eq!(report.candidates[0].var, h);
    }

    #[test]
    fn distinct_constant_cells_do_not_alias() {
        let mut p = ProgramBuilder::new("t");
        let arr = p.global_array("a", vec![0, 0]);
        let t = p.thread("worker", |b| {
            b.store(arr.at(0), 1);
        });
        p.main(move |b| {
            b.spawn(t);
            b.store(arr.at(1), 2);
        });
        let report = analyze(&p.build().unwrap());
        assert!(report.candidates.is_empty(), "{:?}", report.candidates);
    }
}

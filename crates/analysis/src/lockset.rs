//! Lockset dataflow: which mutexes are held at each program point.
//!
//! Two analyses run over each template CFG in one worklist pass:
//!
//! * **Must-locksets** — the intersection over all paths of the mutex
//!   *instances* certainly held before each instruction. These feed the
//!   Eraser-style race-candidate check: two accesses whose must-locksets
//!   share an instance are consistently protected and cannot race.
//! * **May-locksets** — the union over all paths of the locks possibly held.
//!   These feed the lock-order graph (which locks might be held when another
//!   is acquired), the double-unlock lint, and the lock-leak lint.
//!
//! `Wait` is modeled as release + block + re-acquire. For the *must* analysis
//! it is an identity transfer: the runtime re-acquires the wait mutex before
//! the waiter continues (and the dynamic detector sees that re-acquisition),
//! so the mutex really does protect the post-wait code. The re-acquisition
//! still matters for lock *order*: `lockorder` treats `Wait` as an
//! acquisition of the wait mutex under every other held lock.

use crate::cfg::Cfg;
use sct_ir::{Instr, MutexId, MutexRef, Op, Program};
use std::collections::{BTreeSet, VecDeque};

/// A node in the lock universe.
///
/// Mutexes declared as arrays and addressed with non-constant indices cannot
/// be pinned to a single instance statically; such references collapse to
/// [`LockNode::AnyOf`] over the whole declaration. A declaration is
/// *canonicalized* — all its references rendered as `AnyOf` — as soon as any
/// reference to it anywhere in the program is non-constant, so that node
/// equality is meaningful within the may-sets and the lock-order graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockNode {
    /// A single mutex instance, as a flattened offset into the program's
    /// mutex table (see [`Program::mutex_offset`]).
    Instance(usize),
    /// Some instance of the given declaration; which one is not statically
    /// known.
    AnyOf(MutexId),
}

impl LockNode {
    /// Human-readable name, e.g. `forks[2]` or `lock[*]`.
    pub fn render(&self, program: &Program) -> String {
        match self {
            LockNode::Instance(off) => {
                let mut rem = *off;
                for m in &program.mutexes {
                    if rem < m.len as usize {
                        return if m.len > 1 {
                            format!("{}[{rem}]", m.name)
                        } else {
                            m.name.clone()
                        };
                    }
                    rem -= m.len as usize;
                }
                format!("mutex#{off}")
            }
            LockNode::AnyOf(id) => {
                let name = program
                    .mutexes
                    .get(id.index())
                    .map(|m| m.name.as_str())
                    .unwrap_or("?");
                format!("{name}[*]")
            }
        }
    }
}

/// Resolve a mutex reference to a single flattened instance offset, or
/// `None` when the index is non-constant or out of bounds.
pub fn resolve_instance(program: &Program, r: &MutexRef) -> Option<usize> {
    let off = program.mutex_offset(r.base);
    let len = i64::from(program.mutexes[r.base.index()].len);
    match &r.index {
        None => Some(off),
        Some(e) if e.is_constant() => {
            let i = e.eval(&[]);
            (0..len).contains(&i).then(|| off + i as usize)
        }
        Some(_) => None,
    }
}

/// Mutex declarations with at least one statically unresolvable reference
/// anywhere in the program. References to these bases are canonicalized to
/// [`LockNode::AnyOf`] so that set membership and graph node identity agree.
pub fn imprecise_bases(program: &Program) -> BTreeSet<MutexId> {
    let mut bases = BTreeSet::new();
    for t in &program.templates {
        for instr in &t.body {
            let Some(op) = instr.op() else { continue };
            let r = match op {
                Op::Lock { mutex }
                | Op::Unlock { mutex }
                | Op::MutexDestroy { mutex }
                | Op::Wait { mutex, .. } => mutex,
                _ => continue,
            };
            if resolve_instance(program, r).is_none() {
                bases.insert(r.base);
            }
        }
    }
    bases
}

/// Resolve a mutex reference to its canonical lock node.
pub fn resolve_node(program: &Program, imprecise: &BTreeSet<MutexId>, r: &MutexRef) -> LockNode {
    if imprecise.contains(&r.base) {
        return LockNode::AnyOf(r.base);
    }
    match resolve_instance(program, r) {
        Some(off) => LockNode::Instance(off),
        None => LockNode::AnyOf(r.base),
    }
}

/// Per-template CFG plus the lockset facts at every instruction.
#[derive(Debug, Clone)]
pub struct TemplateFacts {
    /// The template's control-flow graph.
    pub cfg: Cfg,
    /// Mutex instances certainly held immediately *before* each instruction.
    /// Unreachable instructions carry the full universe (vacuous truth).
    pub must: Vec<BTreeSet<usize>>,
    /// Lock nodes possibly held immediately *before* each instruction.
    pub may: Vec<BTreeSet<LockNode>>,
    /// Union of the may-locksets at every thread exit, after applying the
    /// exit instruction's own transfer. Non-empty means the template can
    /// terminate while still holding a lock.
    pub exit_may: BTreeSet<LockNode>,
}

fn must_transfer(program: &Program, op: &Op, set: &mut BTreeSet<usize>) {
    match op {
        Op::Lock { mutex } => {
            if let Some(i) = resolve_instance(program, mutex) {
                set.insert(i);
            }
        }
        Op::Unlock { mutex } | Op::MutexDestroy { mutex } => match resolve_instance(program, mutex)
        {
            Some(i) => {
                set.remove(&i);
            }
            None => {
                // Unknown instance of this declaration: conservatively drop
                // every instance of the base.
                let lo = program.mutex_offset(mutex.base);
                let hi = lo + program.mutexes[mutex.base.index()].len as usize;
                set.retain(|&i| !(lo..hi).contains(&i));
            }
        },
        // Release + re-acquire nets out to identity for must-held.
        Op::Wait { .. } => {}
        _ => {}
    }
}

fn may_transfer(
    program: &Program,
    imprecise: &BTreeSet<MutexId>,
    op: &Op,
    set: &mut BTreeSet<LockNode>,
) {
    match op {
        Op::Lock { mutex } => {
            set.insert(resolve_node(program, imprecise, mutex));
        }
        Op::Unlock { mutex } | Op::MutexDestroy { mutex } => {
            // Canonicalization makes this exact: every reference to the same
            // base resolves to the same node.
            set.remove(&resolve_node(program, imprecise, mutex));
        }
        Op::Wait { .. } => {}
        _ => {}
    }
}

/// Run the combined must/may lockset dataflow over one template body.
pub fn template_facts(
    program: &Program,
    imprecise: &BTreeSet<MutexId>,
    body: &[Instr],
) -> TemplateFacts {
    let cfg = Cfg::build(body);
    let n = body.len();
    let mut must_in: Vec<Option<BTreeSet<usize>>> = vec![None; n];
    let mut may_in: Vec<Option<BTreeSet<LockNode>>> = vec![None; n];

    if n > 0 {
        must_in[0] = Some(BTreeSet::new());
        may_in[0] = Some(BTreeSet::new());
        let mut work: VecDeque<usize> = VecDeque::from([0]);
        while let Some(pc) = work.pop_front() {
            let mut must_out = must_in[pc].clone().expect("queued pcs have facts");
            let mut may_out = may_in[pc].clone().expect("queued pcs have facts");
            if let Some(op) = body[pc].op() {
                must_transfer(program, op, &mut must_out);
                may_transfer(program, imprecise, op, &mut may_out);
            }
            for &s in cfg.succs(pc) {
                let mut changed = false;
                match &mut must_in[s] {
                    slot @ None => {
                        *slot = Some(must_out.clone());
                        changed = true;
                    }
                    Some(cur) => {
                        let meet: BTreeSet<usize> = cur.intersection(&must_out).copied().collect();
                        if meet.len() != cur.len() {
                            *cur = meet;
                            changed = true;
                        }
                    }
                }
                match &mut may_in[s] {
                    slot @ None => {
                        *slot = Some(may_out.clone());
                        changed = true;
                    }
                    Some(cur) => {
                        let before = cur.len();
                        cur.extend(may_out.iter().copied());
                        changed |= cur.len() != before;
                    }
                }
                if changed {
                    work.push_back(s);
                }
            }
        }
    }

    // Exit may-locksets: pcs with no successor (Halt, or fall-through past
    // the end of the body), with the exit instruction's transfer applied.
    let mut exit_may = BTreeSet::new();
    for pc in 0..n {
        if !cfg.succs(pc).is_empty() {
            continue;
        }
        let Some(may) = &may_in[pc] else { continue };
        let mut out = may.clone();
        if let Some(op) = body[pc].op() {
            may_transfer(program, imprecise, op, &mut out);
        }
        exit_may.extend(out);
    }

    let universe: BTreeSet<usize> = (0..program.mutex_instances()).collect();
    let must = must_in
        .into_iter()
        .map(|m| m.unwrap_or_else(|| universe.clone()))
        .collect();
    let may = may_in.into_iter().map(Option::unwrap_or_default).collect();
    TemplateFacts {
        cfg,
        must,
        may,
        exit_may,
    }
}

/// Facts for every template of a program.
pub fn program_facts(program: &Program, imprecise: &BTreeSet<MutexId>) -> Vec<TemplateFacts> {
    program
        .templates
        .iter()
        .map(|t| template_facts(program, imprecise, &t.body))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::prelude::*;

    #[test]
    fn must_lockset_is_path_intersection() {
        let mut p = ProgramBuilder::new("t");
        let g = p.global("x", 0);
        let m = p.mutex("m");
        let worker = p.thread("worker", |b| {
            let c = b.local("c");
            b.if_else(
                c,
                |b| {
                    b.lock(m);
                },
                |_| {},
            );
            b.store(g, 1); // held on one path only
            b.lock(m);
            b.store(g, 2); // held on every path
            b.unlock(m);
        });
        p.main(move |b| {
            b.spawn(worker);
        });
        let program = p.build().unwrap();
        let imprecise = imprecise_bases(&program);
        assert!(imprecise.is_empty());
        let facts = template_facts(
            &program,
            &imprecise,
            &program.templates[worker.index()].body,
        );

        let store_pcs: Vec<usize> = program.templates[worker.index()]
            .body
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i.op(), Some(Op::Store { .. })))
            .map(|(pc, _)| pc)
            .collect();
        assert_eq!(store_pcs.len(), 2);
        assert!(
            facts.must[store_pcs[0]].is_empty(),
            "first store is only conditionally protected"
        );
        assert_eq!(
            facts.must[store_pcs[1]],
            BTreeSet::from([0]),
            "second store is protected on every path"
        );
        assert!(facts.exit_may.is_empty(), "lock released before exit");
    }

    #[test]
    fn non_constant_index_collapses_to_any_of() {
        let mut p = ProgramBuilder::new("t");
        let locks = p.mutex_array("locks", 3);
        let t = p.thread("worker", |b| {
            let i = b.local("i");
            b.assign(i, 1);
            b.lock(locks.at(i));
            b.unlock(locks.at(i));
        });
        p.main(move |b| {
            b.spawn(t);
        });
        let program = p.build().unwrap();
        let imprecise = imprecise_bases(&program);
        assert_eq!(imprecise.len(), 1);
        let facts = template_facts(&program, &imprecise, &program.templates[t.index()].body);
        let unlock_pc = program.templates[t.index()]
            .body
            .iter()
            .position(|i| matches!(i.op(), Some(Op::Unlock { .. })))
            .unwrap();
        assert!(
            facts.must[unlock_pc].is_empty(),
            "AnyOf locks never enter the must-set"
        );
        assert_eq!(facts.may[unlock_pc].len(), 1);
        assert!(matches!(
            facts.may[unlock_pc].iter().next(),
            Some(LockNode::AnyOf(_))
        ));
        assert!(
            facts.exit_may.is_empty(),
            "canonical unlock removes the node"
        );
    }

    #[test]
    fn leaked_lock_shows_in_exit_may() {
        let mut p = ProgramBuilder::new("t");
        let m = p.mutex("m");
        let t = p.thread("worker", move |b| {
            b.lock(m);
        });
        p.main(move |b| {
            b.spawn(t);
        });
        let program = p.build().unwrap();
        let imprecise = imprecise_bases(&program);
        let facts = template_facts(&program, &imprecise, &program.templates[t.index()].body);
        assert_eq!(facts.exit_may, BTreeSet::from([LockNode::Instance(0)]));
    }
}

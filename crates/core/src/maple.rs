//! A simplified re-implementation of the *Maple algorithm* (Yu et al.,
//! OOPSLA'12), the default non-systematic mode of the Maple tool which the
//! study compares against as "MapleAlg".
//!
//! The real Maple records *interleaving idioms* (patterns of inter-thread
//! dependencies through shared memory) during profiling runs and then
//! performs active runs that try to force untested idioms. This stand-in
//! keeps the same two-phase character with the simplest non-trivial idiom
//! (idiom-1: an ordered pair of accesses to the same cell from two threads):
//!
//! 1. **profiling**: a handful of random executions record, for every shared
//!    cell, the ordered pairs `(loc_a → loc_b)` of accesses from different
//!    threads with at least one write;
//! 2. **active**: for every pair observed in only one direction, one targeted
//!    execution tries to force the *flipped* order by refusing to schedule the
//!    thread that is about to perform the first-observed access until some
//!    other thread has performed the other one.
//!
//! Like the original, the algorithm terminates on its own (when all candidate
//! flips have been attempted) rather than at a schedule limit, and explores
//! far fewer schedules than systematic techniques. It is a behavioural
//! approximation, not a line-faithful port; see DESIGN.md.

use crate::scheduler::Scheduler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sct_ir::Loc;
use sct_runtime::{ExecutionOutcome, SchedulingPoint, ThreadId};
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Profiling,
    Active,
    Done,
}

/// Simplified Maple-style idiom-driven scheduler.
#[derive(Debug)]
pub struct MapleLikeScheduler {
    rng: SmallRng,
    profiling_runs: u64,
    profiling_done: u64,
    phase: Phase,
    /// Ordered pairs (first, second) of locations observed on the same cell
    /// from different threads (at least one write).
    observed: BTreeSet<(Loc, Loc)>,
    /// Flipped pairs still to force.
    candidates: Vec<(Loc, Loc)>,
    /// The pair the current active run is trying to force (`want_first`
    /// should execute before `want_second`).
    target: Option<(Loc, Loc)>,
    /// Whether `want_first` has executed yet in the current run.
    first_done: bool,
    /// Per-execution: last access (loc, thread) per cell.
    last_access: HashMap<usize, (Loc, ThreadId, bool)>,
    executions: u64,
}

impl MapleLikeScheduler {
    /// Create the scheduler with the given number of profiling runs.
    pub fn new(profiling_runs: u64, seed: u64) -> Self {
        MapleLikeScheduler {
            rng: SmallRng::seed_from_u64(seed),
            profiling_runs: profiling_runs.max(1),
            profiling_done: 0,
            phase: Phase::Profiling,
            observed: BTreeSet::new(),
            candidates: Vec::new(),
            target: None,
            first_done: false,
            last_access: HashMap::new(),
            executions: 0,
        }
    }

    /// Number of executions performed so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Number of candidate orderings still untested (available once the
    /// profiling phase has ended).
    pub fn remaining_candidates(&self) -> usize {
        self.candidates.len()
    }

    fn note_access(&mut self, chosen: ThreadId, point: &SchedulingPoint) {
        let Some(pending) = point.pending.iter().find(|p| p.thread == chosen) else {
            return;
        };
        if self.target.is_some() && Some(pending.loc) == self.target.map(|t| t.0) {
            self.first_done = true;
        }
        let Some(addr) = pending.addr else { return };
        if let Some(&(prev_loc, prev_thread, prev_write)) = self.last_access.get(&addr) {
            if prev_thread != chosen && (prev_write || pending.is_write) {
                self.observed.insert((prev_loc, pending.loc));
            }
        }
        self.last_access
            .insert(addr, (pending.loc, chosen, pending.is_write));
    }
}

impl Scheduler for MapleLikeScheduler {
    fn begin_execution(&mut self) -> bool {
        self.last_access.clear();
        self.first_done = false;
        match self.phase {
            Phase::Profiling => {
                if self.profiling_done < self.profiling_runs {
                    self.profiling_done += 1;
                    self.executions += 1;
                    return true;
                }
                // Build the candidate list: flips not yet observed.
                let flips: Vec<(Loc, Loc)> = self
                    .observed
                    .iter()
                    .filter(|(a, b)| !self.observed.contains(&(*b, *a)))
                    .map(|&(a, b)| (b, a))
                    .collect();
                self.candidates = flips;
                self.phase = Phase::Active;
                self.begin_execution()
            }
            Phase::Active => match self.candidates.pop() {
                Some(target) => {
                    self.target = Some(target);
                    self.executions += 1;
                    true
                }
                None => {
                    self.phase = Phase::Done;
                    false
                }
            },
            Phase::Done => false,
        }
    }

    fn choose(&mut self, point: &SchedulingPoint) -> ThreadId {
        let chosen = match (self.phase, self.target, self.first_done) {
            (Phase::Active, Some((_, second)), false) => {
                // Avoid scheduling threads that are about to perform the
                // access we want to come second.
                let preferred: Vec<ThreadId> = point
                    .pending
                    .iter()
                    .filter(|p| p.loc != second)
                    .map(|p| p.thread)
                    .collect();
                if preferred.is_empty() {
                    point.enabled[self.rng.gen_range(0..point.enabled.len())]
                } else {
                    preferred[self.rng.gen_range(0..preferred.len())]
                }
            }
            _ => point.enabled[self.rng.gen_range(0..point.enabled.len())],
        };
        self.note_access(chosen, point);
        chosen
    }

    fn end_execution(&mut self, _outcome: &ExecutionOutcome) {}

    fn name(&self) -> String {
        "MapleAlg".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_with, ExploreLimits};
    use sct_ir::prelude::*;
    use sct_runtime::ExecConfig;

    /// An order violation: the consumer asserts that it sees the producer's
    /// write, which fails when the consumer runs first.
    fn order_violation() -> Program {
        let mut p = ProgramBuilder::new("order-violation");
        let data = p.global("data", 0);
        let producer = p.thread("producer", |b| {
            b.store(data, 1);
        });
        let consumer = p.thread("consumer", |b| {
            let r = b.local("r");
            b.load(data, r);
            b.assert_cond(eq(r, 1), "consumer saw producer's write");
        });
        p.main(|b| {
            b.spawn(producer);
            b.spawn(consumer);
        });
        p.build().unwrap()
    }

    #[test]
    fn terminates_on_its_own_and_explores_few_schedules() {
        let prog = order_violation();
        let mut sched = MapleLikeScheduler::new(4, 3);
        let stats = explore_with(
            &prog,
            &ExecConfig::all_visible(),
            &mut sched,
            &ExploreLimits::with_schedule_limit(10_000),
        );
        assert!(stats.schedules < 100, "MapleAlg should stop early");
        assert!(!stats.hit_schedule_limit);
        assert_eq!(sched.remaining_candidates(), 0);
    }

    #[test]
    fn finds_an_order_violation_by_flipping_the_observed_order() {
        // With enough profiling runs plus targeted flips the bug is exposed.
        let prog = order_violation();
        let mut sched = MapleLikeScheduler::new(6, 1);
        let stats = explore_with(
            &prog,
            &ExecConfig::all_visible(),
            &mut sched,
            &ExploreLimits::with_schedule_limit(10_000),
        );
        assert!(
            stats.found_bug(),
            "expected the idiom scheduler to expose the order violation"
        );
    }

    #[test]
    fn name_and_execution_count_are_reported() {
        let prog = order_violation();
        let mut sched = MapleLikeScheduler::new(2, 9);
        assert_eq!(sched.name(), "MapleAlg");
        let _ = explore_with(
            &prog,
            &ExecConfig::all_visible(),
            &mut sched,
            &ExploreLimits::with_schedule_limit(10_000),
        );
        assert!(sched.executions() >= 2);
    }
}

//! Structured exploration telemetry: a typed event stream with zero cost
//! when disabled.
//!
//! The exploration stack is observable through a single cloneable handle,
//! [`Telemetry`], threaded through [`ExploreLimits`] and the harness
//! pipeline. When no recorder is attached the handle is a `None` and every
//! emission site reduces to one branch — the closure that would build the
//! [`Event`] is never invoked, so the serial≡parallel bit-identical
//! invariant (and the hot-loop budget) survives untouched.
//!
//! Recorders implement [`Recorder`] and receive every event:
//!
//! * [`JsonlRecorder`] serializes events as line-delimited JSON
//!   (`--trace <path>` on both CLIs). The schema is validated by
//!   [`validate_trace_line`], which is self-contained (no external JSON
//!   tooling) and is what `sct-table validate-trace` and CI run.
//! * [`Heartbeat`] prints a rate-limited (≥1s) progress line to stderr
//!   (benchmark, technique, schedules/sec, executions/sec, cache hit rate,
//!   worker utilization), suppressible with `--quiet`.
//! * [`CountingRecorder`] and [`BufferRecorder`] capture events in memory
//!   for tests.
//!
//! Events are observations, never inputs: nothing in the exploration stack
//! reads telemetry state, so tracing on vs off cannot change a single
//! statistic or digest.
//!
//! [`ExploreLimits`]: crate::explore::ExploreLimits

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One telemetry event. Serialized to JSON with a `"type"` discriminator
/// equal to [`Event::kind`]; see the README "Observability" section for the
/// full schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A study (one run of the harness pipeline) began.
    StudyStart {
        /// Number of benchmarks selected by the filter.
        benchmarks: u64,
        /// Number of techniques per benchmark.
        techniques: u64,
        /// Terminal-schedule budget per technique.
        schedule_limit: u64,
        /// Outer benchmark/technique worker count.
        workers: u64,
        /// Within-technique steal worker count.
        steal_workers: u64,
    },
    /// The study finished.
    StudyFinish {
        /// Number of benchmarks explored.
        benchmarks: u64,
        /// Total wall-clock time.
        wall_nanos: u64,
    },
    /// One benchmark's pipeline (race phase + every technique) began.
    BenchmarkStart {
        /// Registry name, e.g. `CS.reorder_3`.
        benchmark: String,
    },
    /// The benchmark's pipeline finished.
    BenchmarkFinish {
        /// Registry name.
        benchmark: String,
        /// Wall-clock time for the whole benchmark.
        wall_nanos: u64,
    },
    /// Phase 1 finished: the dynamic race-detection runs (or the static
    /// analysis standing in for them under `--static-phase`).
    RacePhase {
        /// Registry name.
        benchmark: String,
        /// Number of race-detection executions (0 under `--static-phase`).
        runs: u64,
        /// Distinct races observed.
        races: u64,
        /// Static locations promoted to visible operations.
        racy_locations: u64,
        /// Whether the static analysis replaced the dynamic runs.
        static_phase: bool,
        /// Wall-clock time of the phase.
        wall_nanos: u64,
    },
    /// One technique is about to explore one benchmark.
    TechniqueStart {
        /// Registry name.
        benchmark: String,
        /// Technique label ("IPB", "IDB", "DFS", ...).
        technique: String,
    },
    /// The technique finished.
    TechniqueFinish {
        /// Registry name.
        benchmark: String,
        /// Technique label.
        technique: String,
        /// Terminal schedules explored.
        schedules: u64,
        /// Program executions performed.
        executions: u64,
        /// Schedules served from the cache without executing.
        cache_hits: u64,
        /// Whether a bug was found.
        found_bug: bool,
        /// Wall-clock exploration time.
        wall_nanos: u64,
    },
    /// Iterative bounding finished one bound level; counters are deltas
    /// relative to the previous level.
    BoundLevel {
        /// Program name.
        program: String,
        /// Technique label.
        technique: String,
        /// The bound that was just exhausted.
        bound: u64,
        /// Terminal schedules added at this level.
        schedules: u64,
        /// Executions added at this level.
        executions: u64,
        /// Cache hits added at this level.
        cache_hits: u64,
        /// Schedules whose cost equals this bound ("new schedules").
        new_at_bound: u64,
    },
    /// Throttled liveness beacon from a long-running driver (at most one per
    /// progress interval, default 1s). Counters are absolute so far.
    Progress {
        /// Program name.
        program: String,
        /// Technique label.
        technique: String,
        /// Terminal schedules so far.
        schedules: u64,
        /// Executions so far.
        executions: u64,
        /// Cache hits so far.
        cache_hits: u64,
    },
    /// A work-stealing victim donated its shallowest unexplored subtree.
    StealDonate {
        /// Program name.
        program: String,
        /// Donating worker index.
        worker: u64,
        /// Task id assigned to the donated subtree.
        task: u64,
        /// Decision depth of the donated prefix.
        depth: u64,
    },
    /// A work-stealing thief claimed a donated subtree.
    StealTheft {
        /// Program name.
        program: String,
        /// Claiming worker index.
        worker: u64,
        /// Task id of the claimed subtree.
        task: u64,
    },
    /// A steal worker went idle (waiting for work) or became busy again.
    WorkerIdle {
        /// Program name.
        program: String,
        /// Worker index.
        worker: u64,
        /// `true` on entering the idle wait, `false` on leaving it.
        idle: bool,
    },
    /// Per-technique schedule-cache summary (emitted when caching is on).
    CacheSummary {
        /// Program name.
        program: String,
        /// Technique label.
        technique: String,
        /// Schedules served from the cache.
        hits: u64,
        /// Estimated bytes held by the trie.
        bytes: u64,
        /// Whether the byte cap was reached.
        full: bool,
    },
    /// The schedule cache hit its byte cap and degraded to pass-through
    /// (emitted at most once per technique).
    CacheDegraded {
        /// Program name.
        program: String,
        /// Technique label.
        technique: String,
        /// Bytes held when the cap engaged.
        bytes: u64,
        /// The configured cap.
        max_bytes: u64,
    },
    /// A persisted corpus trie was loaded for this benchmark (`--resume`).
    CorpusLoaded {
        /// Registry name.
        benchmark: String,
        /// Bytes of the loaded trie.
        bytes: u64,
        /// Buggy schedules already recorded in it.
        buggy_schedules: u64,
    },
    /// The corpus trie and bug corpus were saved (`--corpus-dir`).
    CorpusSaved {
        /// Registry name.
        benchmark: String,
        /// Bytes of the saved trie.
        bytes: u64,
        /// Bug records in the saved bug corpus.
        bugs: u64,
    },
    /// A corpus bug prefix was replayed (`sct-table replay`).
    CorpusReplay {
        /// Registry name.
        benchmark: String,
        /// Display form of the expected bug.
        bug: String,
        /// Length of the replayed decision prefix.
        decisions: u64,
        /// Whether one execution reproduced the recorded bug.
        reproduced: bool,
    },
    /// A driver found its first bug.
    BugFound {
        /// Program name.
        program: String,
        /// Technique label.
        technique: String,
        /// Display form of the bug.
        bug: String,
        /// 1-based index of the first buggy schedule.
        schedule: u64,
    },
    /// A harvested bug was recorded into the corpus with its minimized
    /// decision prefix.
    BugRecorded {
        /// Registry name.
        benchmark: String,
        /// Display form of the bug.
        bug: String,
        /// Length of the minimized prefix.
        decisions: u64,
        /// The minimized decision prefix (thread ids).
        prefix: Vec<u64>,
    },
    /// A technique stopped at its wall-clock deadline with partial results
    /// (`--time-budget` / `--benchmark-deadline`).
    DeadlineExceeded {
        /// Registry name.
        benchmark: String,
        /// Technique label.
        technique: String,
        /// Schedules completed before the deadline fired.
        schedules: u64,
        /// The wall-clock budget that expired, in nanoseconds.
        budget_nanos: u64,
    },
    /// An engine panicked inside a benchmark×technique unit; the harness
    /// isolated the panic and the study continued.
    EnginePanic {
        /// Registry name.
        benchmark: String,
        /// Technique label.
        technique: String,
        /// Display form of the panic payload.
        panic: String,
    },
    /// A mid-run corpus checkpoint was written (crash-safe autosave).
    CheckpointSaved {
        /// Registry name.
        benchmark: String,
        /// Bytes of the checkpointed trie.
        bytes: u64,
        /// Schedules explored when the checkpoint was taken.
        schedules: u64,
    },
}

impl Event {
    /// The `"type"` discriminator used in the JSON serialization.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::StudyStart { .. } => "study_start",
            Event::StudyFinish { .. } => "study_finish",
            Event::BenchmarkStart { .. } => "benchmark_start",
            Event::BenchmarkFinish { .. } => "benchmark_finish",
            Event::RacePhase { .. } => "race_phase",
            Event::TechniqueStart { .. } => "technique_start",
            Event::TechniqueFinish { .. } => "technique_finish",
            Event::BoundLevel { .. } => "bound_level",
            Event::Progress { .. } => "progress",
            Event::StealDonate { .. } => "steal_donate",
            Event::StealTheft { .. } => "steal_theft",
            Event::WorkerIdle { .. } => "worker_idle",
            Event::CacheSummary { .. } => "cache_summary",
            Event::CacheDegraded { .. } => "cache_degraded",
            Event::CorpusLoaded { .. } => "corpus_loaded",
            Event::CorpusSaved { .. } => "corpus_saved",
            Event::CorpusReplay { .. } => "corpus_replay",
            Event::BugFound { .. } => "bug_found",
            Event::BugRecorded { .. } => "bug_recorded",
            Event::DeadlineExceeded { .. } => "deadline_exceeded",
            Event::EnginePanic { .. } => "engine_panic",
            Event::CheckpointSaved { .. } => "checkpoint_saved",
        }
    }

    /// Serialize as one line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let w = JsonObject::new(self.kind());
        match self {
            Event::StudyStart {
                benchmarks,
                techniques,
                schedule_limit,
                workers,
                steal_workers,
            } => w
                .u64("benchmarks", *benchmarks)
                .u64("techniques", *techniques)
                .u64("schedule_limit", *schedule_limit)
                .u64("workers", *workers)
                .u64("steal_workers", *steal_workers)
                .finish(),
            Event::StudyFinish {
                benchmarks,
                wall_nanos,
            } => w
                .u64("benchmarks", *benchmarks)
                .u64("wall_nanos", *wall_nanos)
                .finish(),
            Event::BenchmarkStart { benchmark } => w.str("benchmark", benchmark).finish(),
            Event::BenchmarkFinish {
                benchmark,
                wall_nanos,
            } => w
                .str("benchmark", benchmark)
                .u64("wall_nanos", *wall_nanos)
                .finish(),
            Event::RacePhase {
                benchmark,
                runs,
                races,
                racy_locations,
                static_phase,
                wall_nanos,
            } => w
                .str("benchmark", benchmark)
                .u64("runs", *runs)
                .u64("races", *races)
                .u64("racy_locations", *racy_locations)
                .bool("static_phase", *static_phase)
                .u64("wall_nanos", *wall_nanos)
                .finish(),
            Event::TechniqueStart {
                benchmark,
                technique,
            } => w
                .str("benchmark", benchmark)
                .str("technique", technique)
                .finish(),
            Event::TechniqueFinish {
                benchmark,
                technique,
                schedules,
                executions,
                cache_hits,
                found_bug,
                wall_nanos,
            } => w
                .str("benchmark", benchmark)
                .str("technique", technique)
                .u64("schedules", *schedules)
                .u64("executions", *executions)
                .u64("cache_hits", *cache_hits)
                .bool("found_bug", *found_bug)
                .u64("wall_nanos", *wall_nanos)
                .finish(),
            Event::BoundLevel {
                program,
                technique,
                bound,
                schedules,
                executions,
                cache_hits,
                new_at_bound,
            } => w
                .str("program", program)
                .str("technique", technique)
                .u64("bound", *bound)
                .u64("schedules", *schedules)
                .u64("executions", *executions)
                .u64("cache_hits", *cache_hits)
                .u64("new_at_bound", *new_at_bound)
                .finish(),
            Event::Progress {
                program,
                technique,
                schedules,
                executions,
                cache_hits,
            } => w
                .str("program", program)
                .str("technique", technique)
                .u64("schedules", *schedules)
                .u64("executions", *executions)
                .u64("cache_hits", *cache_hits)
                .finish(),
            Event::StealDonate {
                program,
                worker,
                task,
                depth,
            } => w
                .str("program", program)
                .u64("worker", *worker)
                .u64("task", *task)
                .u64("depth", *depth)
                .finish(),
            Event::StealTheft {
                program,
                worker,
                task,
            } => w
                .str("program", program)
                .u64("worker", *worker)
                .u64("task", *task)
                .finish(),
            Event::WorkerIdle {
                program,
                worker,
                idle,
            } => w
                .str("program", program)
                .u64("worker", *worker)
                .bool("idle", *idle)
                .finish(),
            Event::CacheSummary {
                program,
                technique,
                hits,
                bytes,
                full,
            } => w
                .str("program", program)
                .str("technique", technique)
                .u64("hits", *hits)
                .u64("bytes", *bytes)
                .bool("full", *full)
                .finish(),
            Event::CacheDegraded {
                program,
                technique,
                bytes,
                max_bytes,
            } => w
                .str("program", program)
                .str("technique", technique)
                .u64("bytes", *bytes)
                .u64("max_bytes", *max_bytes)
                .finish(),
            Event::CorpusLoaded {
                benchmark,
                bytes,
                buggy_schedules,
            } => w
                .str("benchmark", benchmark)
                .u64("bytes", *bytes)
                .u64("buggy_schedules", *buggy_schedules)
                .finish(),
            Event::CorpusSaved {
                benchmark,
                bytes,
                bugs,
            } => w
                .str("benchmark", benchmark)
                .u64("bytes", *bytes)
                .u64("bugs", *bugs)
                .finish(),
            Event::CorpusReplay {
                benchmark,
                bug,
                decisions,
                reproduced,
            } => w
                .str("benchmark", benchmark)
                .str("bug", bug)
                .u64("decisions", *decisions)
                .bool("reproduced", *reproduced)
                .finish(),
            Event::BugFound {
                program,
                technique,
                bug,
                schedule,
            } => w
                .str("program", program)
                .str("technique", technique)
                .str("bug", bug)
                .u64("schedule", *schedule)
                .finish(),
            Event::BugRecorded {
                benchmark,
                bug,
                decisions,
                prefix,
            } => w
                .str("benchmark", benchmark)
                .str("bug", bug)
                .u64("decisions", *decisions)
                .u64_array("prefix", prefix)
                .finish(),
            Event::DeadlineExceeded {
                benchmark,
                technique,
                schedules,
                budget_nanos,
            } => w
                .str("benchmark", benchmark)
                .str("technique", technique)
                .u64("schedules", *schedules)
                .u64("budget_nanos", *budget_nanos)
                .finish(),
            Event::EnginePanic {
                benchmark,
                technique,
                panic,
            } => w
                .str("benchmark", benchmark)
                .str("technique", technique)
                .str("panic", panic)
                .finish(),
            Event::CheckpointSaved {
                benchmark,
                bytes,
                schedules,
            } => w
                .str("benchmark", benchmark)
                .u64("bytes", *bytes)
                .u64("schedules", *schedules)
                .finish(),
        }
    }

    /// One specimen of every variant, used to keep the serializer and the
    /// [`validate_trace_line`] schema in lockstep (see the unit tests and
    /// the integration suite).
    pub fn specimens() -> Vec<Event> {
        vec![
            Event::StudyStart {
                benchmarks: 3,
                techniques: 6,
                schedule_limit: 10_000,
                workers: 1,
                steal_workers: 2,
            },
            Event::StudyFinish {
                benchmarks: 3,
                wall_nanos: 42,
            },
            Event::BenchmarkStart {
                benchmark: "CS.reorder_3".into(),
            },
            Event::BenchmarkFinish {
                benchmark: "CS.reorder_3".into(),
                wall_nanos: 42,
            },
            Event::RacePhase {
                benchmark: "CS.reorder_3".into(),
                runs: 10,
                races: 2,
                racy_locations: 4,
                static_phase: false,
                wall_nanos: 42,
            },
            Event::TechniqueStart {
                benchmark: "CS.reorder_3".into(),
                technique: "IDB".into(),
            },
            Event::TechniqueFinish {
                benchmark: "CS.reorder_3".into(),
                technique: "IDB".into(),
                schedules: 100,
                executions: 90,
                cache_hits: 10,
                found_bug: true,
                wall_nanos: 42,
            },
            Event::BoundLevel {
                program: "reorder_3".into(),
                technique: "IDB".into(),
                bound: 1,
                schedules: 10,
                executions: 9,
                cache_hits: 1,
                new_at_bound: 7,
            },
            Event::Progress {
                program: "reorder_3".into(),
                technique: "DFS".into(),
                schedules: 50,
                executions: 50,
                cache_hits: 0,
            },
            Event::StealDonate {
                program: "reorder_3".into(),
                worker: 0,
                task: 3,
                depth: 2,
            },
            Event::StealTheft {
                program: "reorder_3".into(),
                worker: 1,
                task: 3,
            },
            Event::WorkerIdle {
                program: "reorder_3".into(),
                worker: 1,
                idle: true,
            },
            Event::CacheSummary {
                program: "reorder_3".into(),
                technique: "IDB".into(),
                hits: 10,
                bytes: 4096,
                full: false,
            },
            Event::CacheDegraded {
                program: "reorder_3".into(),
                technique: "IDB".into(),
                bytes: 4096,
                max_bytes: 4096,
            },
            Event::CorpusLoaded {
                benchmark: "CS.reorder_3".into(),
                bytes: 4096,
                buggy_schedules: 2,
            },
            Event::CorpusSaved {
                benchmark: "CS.reorder_3".into(),
                bytes: 4096,
                bugs: 1,
            },
            Event::CorpusReplay {
                benchmark: "CS.reorder_3".into(),
                bug: "assertion failure".into(),
                decisions: 5,
                reproduced: true,
            },
            Event::BugFound {
                program: "reorder_3".into(),
                technique: "IDB".into(),
                bug: "assertion failure: \"ok\"".into(),
                schedule: 12,
            },
            Event::BugRecorded {
                benchmark: "CS.reorder_3".into(),
                bug: "assertion failure".into(),
                decisions: 3,
                prefix: vec![0, 1, 0],
            },
            Event::DeadlineExceeded {
                benchmark: "CS.reorder_3".into(),
                technique: "IDB".into(),
                schedules: 57,
                budget_nanos: 1_000_000_000,
            },
            Event::EnginePanic {
                benchmark: "CS.reorder_3".into(),
                technique: "IDB".into(),
                panic: "injected fault (sct_core::fault)".into(),
            },
            Event::CheckpointSaved {
                benchmark: "CS.reorder_3".into(),
                bytes: 4096,
                schedules: 57,
            },
        ]
    }
}

/// A sink for telemetry events. Implementations must be cheap and
/// thread-safe: events are recorded from exploration worker threads.
pub trait Recorder: Send + Sync {
    /// Record one event. Must not panic.
    fn record(&self, event: &Event);
}

impl<R: Recorder> Recorder for Arc<R> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }
}

struct Inner {
    recorders: Vec<Box<dyn Recorder>>,
    /// Millis-since-`epoch` of the last `progress` emission (`u64::MAX`
    /// means never), used to throttle [`Event::Progress`].
    progress_gate: AtomicU64,
    progress_interval_millis: u64,
    epoch: Instant,
}

impl Inner {
    fn record(&self, event: &Event) {
        for r in &self.recorders {
            r.record(event);
        }
    }

    /// At-most-once-per-interval gate, shared across threads. Losing a race
    /// just drops one beacon — progress events are lossy by design.
    fn progress_due(&self) -> bool {
        let now = self.epoch.elapsed().as_millis() as u64;
        let last = self.progress_gate.load(Ordering::Relaxed);
        if last != u64::MAX && now.saturating_sub(last) < self.progress_interval_millis {
            return false;
        }
        self.progress_gate
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }
}

/// The cloneable telemetry handle threaded through the exploration stack.
///
/// [`Telemetry::off`] (the default) carries no recorder: [`Telemetry::emit`]
/// is then a single `None` check and the event-building closure is never
/// invoked, so disabled telemetry has no observable cost and no effect on
/// exploration results.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The disabled handle: records nothing, costs one branch per site.
    pub fn off() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A handle fanning out to `recorders` (disabled when empty), with the
    /// default 1s progress throttle.
    pub fn new(recorders: Vec<Box<dyn Recorder>>) -> Telemetry {
        Telemetry::with_progress_interval(recorders, Duration::from_secs(1))
    }

    /// Like [`Telemetry::new`] with an explicit [`Event::Progress`] throttle
    /// interval (tests use `Duration::ZERO` to see every beacon).
    pub fn with_progress_interval(
        recorders: Vec<Box<dyn Recorder>>,
        interval: Duration,
    ) -> Telemetry {
        if recorders.is_empty() {
            return Telemetry::off();
        }
        Telemetry {
            inner: Some(Arc::new(Inner {
                recorders,
                progress_gate: AtomicU64::new(u64::MAX),
                progress_interval_millis: interval.as_millis() as u64,
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether any recorder is attached.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit an event. The closure runs only when telemetry is on.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            inner.record(&make());
        }
    }

    /// Emit a throttled [`Event::Progress`] beacon: at most one per
    /// progress interval across all threads. The closure runs only when
    /// telemetry is on *and* the interval has elapsed.
    #[inline]
    pub fn progress(&self, make: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            if inner.progress_due() {
                inner.record(&make());
            }
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Telemetry(on, {} recorders)", inner.recorders.len()),
            None => f.write_str("Telemetry(off)"),
        }
    }
}

/// Serializes every event as one line of JSON to a file or writer; the
/// backend of `--trace <path>`. Lines are flushed per event so a killed run
/// still leaves a valid (truncated) trace.
pub struct JsonlRecorder {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlRecorder {
    /// Create (truncate) `path` and write events to it.
    pub fn create(path: &Path) -> io::Result<JsonlRecorder> {
        let file = File::create(path)?;
        Ok(JsonlRecorder::to_writer(Box::new(BufWriter::new(file))))
    }

    /// Write events to an arbitrary writer.
    pub fn to_writer(out: Box<dyn Write + Send>) -> JsonlRecorder {
        JsonlRecorder {
            out: Mutex::new(out),
        }
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &Event) {
        let mut out = self.out.lock().expect("trace writer poisoned");
        // Trace I/O errors must not kill an exploration worker mid-fold;
        // a short trace is the best we can do on a full disk.
        let _ = writeln!(out, "{}", event.to_json());
        let _ = out.flush();
    }
}

/// Counts events by kind; a test recorder (share via `Arc` to read counts
/// after the run).
#[derive(Default)]
pub struct CountingRecorder {
    counts: Mutex<BTreeMap<&'static str, u64>>,
}

impl CountingRecorder {
    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.lock().unwrap().values().sum()
    }

    /// Events recorded per kind.
    pub fn by_kind(&self) -> BTreeMap<&'static str, u64> {
        self.counts.lock().unwrap().clone()
    }
}

impl Recorder for CountingRecorder {
    fn record(&self, event: &Event) {
        *self.counts.lock().unwrap().entry(event.kind()).or_insert(0) += 1;
    }
}

/// Captures the serialized JSONL lines in memory; a test recorder (share
/// via `Arc` to read lines after the run).
#[derive(Default)]
pub struct BufferRecorder {
    lines: Mutex<Vec<String>>,
}

impl BufferRecorder {
    /// The serialized lines recorded so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }
}

impl Recorder for BufferRecorder {
    fn record(&self, event: &Event) {
        self.lines.lock().unwrap().push(event.to_json());
    }
}

/// The rate-limited stderr progress heartbeat (`≥1s` between lines),
/// suppressed by `--quiet`. It aggregates counters across concurrent
/// benchmarks/techniques from the event stream and reports window rates:
///
/// ```text
/// [sct] CS.reorder_4/IDB · 1234 schedules (482.1/s) · 1890 exec (701.2/s) · cache 12.4% · workers 3/4 busy
/// ```
pub struct Heartbeat {
    interval: Duration,
    state: Mutex<HeartbeatState>,
}

struct HeartbeatState {
    started: Instant,
    last_print: Option<Instant>,
    /// Cumulative totals at the last print (schedules, executions).
    window_base: (u64, u64),
    /// Last-seen absolute counters per in-flight (context, technique) key,
    /// so absolute per-technique beacons fold into global monotone totals.
    in_flight: BTreeMap<(String, String), (u64, u64, u64)>,
    schedules: u64,
    executions: u64,
    cache_hits: u64,
    label: String,
    workers_seen: BTreeSet<u64>,
    workers_idle: BTreeSet<u64>,
}

impl Heartbeat {
    /// A heartbeat printing to stderr at most once per `interval`.
    pub fn new(interval: Duration) -> Heartbeat {
        Heartbeat {
            interval,
            state: Mutex::new(HeartbeatState {
                started: Instant::now(),
                last_print: None,
                window_base: (0, 0),
                in_flight: BTreeMap::new(),
                schedules: 0,
                executions: 0,
                cache_hits: 0,
                label: String::new(),
                workers_seen: BTreeSet::new(),
                workers_idle: BTreeSet::new(),
            }),
        }
    }
}

impl HeartbeatState {
    /// Fold an absolute per-(context, technique) counter triple into the
    /// global cumulative totals.
    fn observe(&mut self, key: (String, String), now: (u64, u64, u64), done: bool) {
        let last = self.in_flight.get(&key).copied().unwrap_or((0, 0, 0));
        self.schedules += now.0.saturating_sub(last.0);
        self.executions += now.1.saturating_sub(last.1);
        self.cache_hits += now.2.saturating_sub(last.2);
        if done {
            self.in_flight.remove(&key);
        } else {
            self.in_flight.insert(key, now);
        }
    }

    fn render(&self, elapsed: Duration, window: Duration) -> String {
        let secs = window.as_secs_f64().max(1e-9);
        let sched_rate = (self.schedules - self.window_base.0) as f64 / secs;
        let exec_rate = (self.executions - self.window_base.1) as f64 / secs;
        let served = self.cache_hits + self.executions;
        let hit_rate = if served == 0 {
            0.0
        } else {
            100.0 * self.cache_hits as f64 / served as f64
        };
        let workers = if self.workers_seen.is_empty() {
            String::from("1/1")
        } else {
            format!(
                "{}/{}",
                self.workers_seen.len() - self.workers_idle.len(),
                self.workers_seen.len()
            )
        };
        format!(
            "[sct {:>6.1}s] {} · {} schedules ({:.1}/s) · {} exec ({:.1}/s) · cache {:.1}% · workers {} busy",
            elapsed.as_secs_f64(),
            if self.label.is_empty() { "…" } else { &self.label },
            self.schedules,
            sched_rate,
            self.executions,
            exec_rate,
            hit_rate,
            workers,
        )
    }
}

impl Recorder for Heartbeat {
    fn record(&self, event: &Event) {
        let mut s = self.state.lock().expect("heartbeat state poisoned");
        match event {
            Event::TechniqueStart {
                benchmark,
                technique,
            } => {
                s.label = format!("{benchmark}/{technique}");
                s.in_flight
                    .insert((benchmark.clone(), technique.clone()), (0, 0, 0));
            }
            Event::TechniqueFinish {
                benchmark,
                technique,
                schedules,
                executions,
                cache_hits,
                ..
            } => {
                s.observe(
                    (benchmark.clone(), technique.clone()),
                    (*schedules, *executions, *cache_hits),
                    true,
                );
            }
            Event::Progress {
                program,
                technique,
                schedules,
                executions,
                cache_hits,
            } => {
                s.label = format!("{program}/{technique}");
                s.observe(
                    (program.clone(), technique.clone()),
                    (*schedules, *executions, *cache_hits),
                    false,
                );
            }
            Event::WorkerIdle { worker, idle, .. } => {
                s.workers_seen.insert(*worker);
                if *idle {
                    s.workers_idle.insert(*worker);
                } else {
                    s.workers_idle.remove(worker);
                }
            }
            _ => {}
        }
        let now = Instant::now();
        let due = match s.last_print {
            None => true,
            Some(last) => now.duration_since(last) >= self.interval,
        };
        if due {
            let window = match s.last_print {
                None => now.duration_since(s.started),
                Some(last) => now.duration_since(last),
            };
            eprintln!("{}", s.render(now.duration_since(s.started), window));
            s.last_print = Some(now);
            s.window_base = (s.schedules, s.executions);
        }
    }
}

// ---------------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------------

/// Escape `s` as a JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Tiny builder for one-line JSON objects with ordered fields.
struct JsonObject {
    buf: String,
}

impl JsonObject {
    fn new(kind: &str) -> JsonObject {
        JsonObject {
            buf: format!("{{\"type\":{}", json_string(kind)),
        }
    }

    fn str(mut self, key: &str, value: &str) -> JsonObject {
        self.buf
            .push_str(&format!(",{}:{}", json_string(key), json_string(value)));
        self
    }

    fn u64(mut self, key: &str, value: u64) -> JsonObject {
        self.buf
            .push_str(&format!(",{}:{}", json_string(key), value));
        self
    }

    fn bool(mut self, key: &str, value: bool) -> JsonObject {
        self.buf
            .push_str(&format!(",{}:{}", json_string(key), value));
        self
    }

    fn u64_array(mut self, key: &str, values: &[u64]) -> JsonObject {
        self.buf.push_str(&format!(",{}:[", json_string(key)));
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
        self
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Schema validation (self-contained: no external JSON tooling)
// ---------------------------------------------------------------------------

/// A parsed JSON value, produced by the self-contained parser behind
/// [`validate_trace_line`].
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates in traces we emit never occur; map
                            // unpaired ones to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // char boundary arithmetic is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parse one JSON document, requiring it to span the whole input.
fn parse_json(line: &str) -> Result<Json, String> {
    let mut p = Parser::new(line);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON value"));
    }
    Ok(v)
}

/// Expected type of a schema field.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FieldType {
    Str,
    U64,
    Bool,
    U64Array,
}

impl FieldType {
    fn matches(self, v: &Json) -> bool {
        match (self, v) {
            (FieldType::Str, Json::Str(_)) => true,
            (FieldType::Bool, Json::Bool(_)) => true,
            (FieldType::U64, Json::Num(n)) => n.fract() == 0.0 && *n >= 0.0,
            (FieldType::U64Array, Json::Arr(items)) => {
                items.iter().all(|i| FieldType::U64.matches(i))
            }
            _ => false,
        }
    }

    fn name(self) -> &'static str {
        match self {
            FieldType::Str => "string",
            FieldType::U64 => "unsigned integer",
            FieldType::Bool => "bool",
            FieldType::U64Array => "array of unsigned integers",
        }
    }
}

/// The required fields (beyond `"type"`) of every event kind.
fn event_schema(kind: &str) -> Option<&'static [(&'static str, FieldType)]> {
    use FieldType::{Bool, Str, U64Array, U64};
    Some(match kind {
        "study_start" => &[
            ("benchmarks", U64),
            ("techniques", U64),
            ("schedule_limit", U64),
            ("workers", U64),
            ("steal_workers", U64),
        ],
        "study_finish" => &[("benchmarks", U64), ("wall_nanos", U64)],
        "benchmark_start" => &[("benchmark", Str)],
        "benchmark_finish" => &[("benchmark", Str), ("wall_nanos", U64)],
        "race_phase" => &[
            ("benchmark", Str),
            ("runs", U64),
            ("races", U64),
            ("racy_locations", U64),
            ("static_phase", Bool),
            ("wall_nanos", U64),
        ],
        "technique_start" => &[("benchmark", Str), ("technique", Str)],
        "technique_finish" => &[
            ("benchmark", Str),
            ("technique", Str),
            ("schedules", U64),
            ("executions", U64),
            ("cache_hits", U64),
            ("found_bug", Bool),
            ("wall_nanos", U64),
        ],
        "bound_level" => &[
            ("program", Str),
            ("technique", Str),
            ("bound", U64),
            ("schedules", U64),
            ("executions", U64),
            ("cache_hits", U64),
            ("new_at_bound", U64),
        ],
        "progress" => &[
            ("program", Str),
            ("technique", Str),
            ("schedules", U64),
            ("executions", U64),
            ("cache_hits", U64),
        ],
        "steal_donate" => &[
            ("program", Str),
            ("worker", U64),
            ("task", U64),
            ("depth", U64),
        ],
        "steal_theft" => &[("program", Str), ("worker", U64), ("task", U64)],
        "worker_idle" => &[("program", Str), ("worker", U64), ("idle", Bool)],
        "cache_summary" => &[
            ("program", Str),
            ("technique", Str),
            ("hits", U64),
            ("bytes", U64),
            ("full", Bool),
        ],
        "cache_degraded" => &[
            ("program", Str),
            ("technique", Str),
            ("bytes", U64),
            ("max_bytes", U64),
        ],
        "corpus_loaded" => &[("benchmark", Str), ("bytes", U64), ("buggy_schedules", U64)],
        "corpus_saved" => &[("benchmark", Str), ("bytes", U64), ("bugs", U64)],
        "corpus_replay" => &[
            ("benchmark", Str),
            ("bug", Str),
            ("decisions", U64),
            ("reproduced", Bool),
        ],
        "bug_found" => &[
            ("program", Str),
            ("technique", Str),
            ("bug", Str),
            ("schedule", U64),
        ],
        "bug_recorded" => &[
            ("benchmark", Str),
            ("bug", Str),
            ("decisions", U64),
            ("prefix", U64Array),
        ],
        "deadline_exceeded" => &[
            ("benchmark", Str),
            ("technique", Str),
            ("schedules", U64),
            ("budget_nanos", U64),
        ],
        "engine_panic" => &[("benchmark", Str), ("technique", Str), ("panic", Str)],
        "checkpoint_saved" => &[("benchmark", Str), ("bytes", U64), ("schedules", U64)],
        _ => return None,
    })
}

/// Validate one line of a `--trace` JSONL file against the event schema:
/// well-formed JSON, a known `"type"`, every required field present with the
/// right type, and no unknown fields. Self-contained — the CI trace check
/// runs exactly this, no `jq` involved.
pub fn validate_trace_line(line: &str) -> Result<(), String> {
    let value = parse_json(line)?;
    let Json::Obj(fields) = value else {
        return Err("trace line is not a JSON object".into());
    };
    let mut seen = BTreeSet::new();
    for (key, _) in &fields {
        if !seen.insert(key.as_str()) {
            return Err(format!("duplicate field {key:?}"));
        }
    }
    let Some(Json::Str(kind)) = fields
        .iter()
        .find(|(k, _)| k == "type")
        .map(|(_, v)| v.clone())
    else {
        return Err("missing string field \"type\"".into());
    };
    let Some(schema) = event_schema(&kind) else {
        return Err(format!("unknown event type {kind:?}"));
    };
    for (name, ty) in schema {
        match fields.iter().find(|(k, _)| k == name) {
            None => return Err(format!("{kind}: missing field {name:?}")),
            Some((_, v)) if !ty.matches(v) => {
                return Err(format!("{kind}: field {name:?} is not a {}", ty.name()));
            }
            Some(_) => {}
        }
    }
    for (key, _) in &fields {
        if key != "type" && !schema.iter().any(|(name, _)| name == key) {
            return Err(format!("{kind}: unknown field {key:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_specimen_round_trips_through_the_validator() {
        for event in Event::specimens() {
            let line = event.to_json();
            validate_trace_line(&line).unwrap_or_else(|e| {
                panic!(
                    "specimen {:?} failed validation: {e}\nline: {line}",
                    event.kind()
                )
            });
        }
    }

    #[test]
    fn specimens_cover_every_schema_kind() {
        // If a new Event variant is added with a schema entry but no
        // specimen (or vice versa), this catches it.
        let kinds: BTreeSet<&'static str> = Event::specimens().iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds.len(),
            Event::specimens().len(),
            "duplicate specimen kinds"
        );
        for kind in &kinds {
            assert!(event_schema(kind).is_some(), "{kind} has no schema");
        }
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        let cases = [
            ("", "empty"),
            ("{", "truncated"),
            ("[1,2]", "not an object"),
            ("{\"benchmark\":\"x\"}", "no type"),
            ("{\"type\":\"no_such_event\"}", "unknown kind"),
            ("{\"type\":\"benchmark_start\"}", "missing field"),
            (
                "{\"type\":\"benchmark_start\",\"benchmark\":7}",
                "wrong type",
            ),
            (
                "{\"type\":\"benchmark_start\",\"benchmark\":\"x\",\"extra\":1}",
                "unknown field",
            ),
            (
                "{\"type\":\"study_finish\",\"benchmarks\":1,\"wall_nanos\":-3}",
                "negative u64",
            ),
            (
                "{\"type\":\"benchmark_start\",\"benchmark\":\"x\"} trailing",
                "trailing garbage",
            ),
            (
                "{\"type\":\"benchmark_start\",\"benchmark\":\"x\",\"benchmark\":\"y\"}",
                "duplicate field",
            ),
        ];
        for (line, why) in cases {
            assert!(
                validate_trace_line(line).is_err(),
                "expected rejection ({why}): {line}"
            );
        }
    }

    #[test]
    fn validator_accepts_whitespace_and_field_reordering() {
        let line = " { \"benchmark\" : \"x\" , \"type\" : \"benchmark_start\" } ";
        validate_trace_line(line).unwrap();
    }

    #[test]
    fn json_strings_escape_control_and_quote_characters() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let escaped = json_string(s);
        assert_eq!(escaped, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
        // And the parser inverts the escape.
        let parsed = parse_json(&escaped).unwrap();
        assert_eq!(parsed, Json::Str(s.to_string()));
    }

    #[test]
    fn off_telemetry_never_builds_events() {
        let t = Telemetry::off();
        t.emit(|| panic!("event closure must not run when telemetry is off"));
        t.progress(|| panic!("progress closure must not run when telemetry is off"));
        assert!(!t.is_on());
        assert!(
            !Telemetry::new(Vec::new()).is_on(),
            "no recorders means off"
        );
    }

    #[test]
    fn counting_recorder_sees_every_emission() {
        let rec = Arc::new(CountingRecorder::default());
        let t = Telemetry::new(vec![Box::new(rec.clone())]);
        assert!(t.is_on());
        t.emit(|| Event::BenchmarkStart {
            benchmark: "b".into(),
        });
        t.emit(|| Event::BenchmarkFinish {
            benchmark: "b".into(),
            wall_nanos: 1,
        });
        assert_eq!(rec.total(), 2);
        assert_eq!(rec.by_kind().get("benchmark_start"), Some(&1));
    }

    #[test]
    fn progress_beacons_are_throttled() {
        let rec = Arc::new(CountingRecorder::default());
        let t = Telemetry::with_progress_interval(
            vec![Box::new(rec.clone())],
            Duration::from_secs(3600),
        );
        for _ in 0..100 {
            t.progress(|| Event::Progress {
                program: "p".into(),
                technique: "DFS".into(),
                schedules: 1,
                executions: 1,
                cache_hits: 0,
            });
        }
        assert_eq!(rec.total(), 1, "one beacon per interval");

        let rec2 = Arc::new(CountingRecorder::default());
        let t2 = Telemetry::with_progress_interval(vec![Box::new(rec2.clone())], Duration::ZERO);
        for _ in 0..5 {
            t2.progress(|| Event::Progress {
                program: "p".into(),
                technique: "DFS".into(),
                schedules: 1,
                executions: 1,
                cache_hits: 0,
            });
        }
        assert_eq!(rec2.total(), 5, "zero interval emits every beacon");
    }

    #[test]
    fn jsonl_recorder_writes_one_valid_line_per_event() {
        #[derive(Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let bytes = Arc::new(Mutex::new(Vec::new()));
        let rec = JsonlRecorder::to_writer(Box::new(SharedBuf(bytes.clone())));
        for event in Event::specimens() {
            rec.record(&event);
        }
        let text = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), Event::specimens().len());
        for line in lines {
            validate_trace_line(line).unwrap();
        }
    }

    #[test]
    fn heartbeat_folds_absolute_beacons_into_monotone_totals() {
        let mut s = HeartbeatState {
            started: Instant::now(),
            last_print: None,
            window_base: (0, 0),
            in_flight: BTreeMap::new(),
            schedules: 0,
            executions: 0,
            cache_hits: 0,
            label: "b/IDB".into(),
            workers_seen: BTreeSet::new(),
            workers_idle: BTreeSet::new(),
        };
        let key = || ("b".to_string(), "IDB".to_string());
        s.observe(key(), (10, 8, 2), false);
        s.observe(key(), (25, 20, 5), false);
        assert_eq!((s.schedules, s.executions, s.cache_hits), (25, 20, 5));
        // A second concurrent technique adds, not overwrites.
        s.observe(("b".into(), "DFS".into()), (5, 5, 0), false);
        assert_eq!((s.schedules, s.executions, s.cache_hits), (30, 25, 5));
        // Finish removes the in-flight entry and folds the final absolutes.
        s.observe(key(), (30, 24, 6), true);
        assert_eq!((s.schedules, s.executions, s.cache_hits), (35, 29, 6));
        assert!(!s.in_flight.contains_key(&key()));

        s.workers_seen.extend([0, 1, 2, 3]);
        s.workers_idle.insert(2);
        let line = s.render(Duration::from_secs(10), Duration::from_secs(2));
        assert!(line.contains("b/IDB"), "{line}");
        assert!(line.contains("35 schedules"), "{line}");
        assert!(line.contains("3/4 busy"), "{line}");
    }
}

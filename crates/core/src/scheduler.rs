//! The scheduler abstraction: a strategy that decides, execution by execution
//! and scheduling point by scheduling point, which thread runs next.

use sct_runtime::{ExecutionOutcome, SchedulingPoint, ThreadId};

/// A scheduling strategy driven by the exploration loop in [`crate::explore`].
///
/// The contract is:
///
/// 1. the explorer calls [`Scheduler::begin_execution`]; a `false` return
///    means the strategy has nothing left to explore and the loop stops;
/// 2. during the execution, [`Scheduler::choose`] is called at every
///    scheduling point and must return one of the *enabled* threads;
/// 3. after the execution reaches a terminal state, the explorer calls
///    [`Scheduler::end_execution`] with the outcome (the recorded schedule,
///    bug information and statistics).
///
/// Systematic strategies (DFS, schedule bounding) use `end_execution` to
/// backtrack; randomised strategies typically only count runs.
pub trait Scheduler {
    /// Prepare for the next execution; `false` ends the exploration.
    fn begin_execution(&mut self) -> bool;

    /// Pick the next thread among `point.enabled` (never empty).
    fn choose(&mut self, point: &SchedulingPoint) -> ThreadId;

    /// Observe the outcome of the execution just finished.
    fn end_execution(&mut self, outcome: &ExecutionOutcome);

    /// Human-readable name used in reports ("IPB", "IDB", "DFS", "Rand", ...).
    fn name(&self) -> String;

    /// Whether this strategy, once it stops, has *provably covered* its whole
    /// search space (used to report exhaustive exploration in Table 3; random
    /// strategies always return `false`).
    fn is_exhaustive(&self) -> bool {
        false
    }

    /// Whether this strategy is *capable* of exhausting its search space at
    /// all (a capability, unlike the state query [`Scheduler::is_exhaustive`]).
    /// The exploration driver only probes for completion-at-the-limit on
    /// schedulers that can exhaust; randomised strategies return `false` and
    /// are never probed, so their execution counts stay an exact function of
    /// their schedule budget.
    fn can_exhaust(&self) -> bool {
        false
    }

    /// Partial-order-reduction counters `(slept, pruned_by_sleep)`
    /// accumulated so far; `(0, 0)` for strategies without reduction. The
    /// exploration drivers copy these into
    /// [`ExplorationStats`](crate::stats::ExplorationStats).
    fn sleep_counters(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Whether the execution that just finished was recognised as redundant
    /// (every state it visits past some point is covered by another explored
    /// schedule, as with a sleep-blocked node in sleep-set reduction).
    /// Drivers must not count a redundant execution as an explored schedule.
    /// Meaningful between [`Scheduler::end_execution`] and the next
    /// [`Scheduler::begin_execution`]; always `false` for strategies without
    /// reduction.
    fn current_execution_redundant(&self) -> bool {
        false
    }
}

/// A trivial scheduler that always follows the non-preemptive round-robin
/// deterministic scheduler and runs a single execution. This is the
/// "0 delays / 0 preemptions" schedule that IPB, IDB and DFS all execute
/// first; it is also handy in tests.
#[derive(Debug, Default)]
pub struct RoundRobinOnce {
    ran: bool,
}

impl Scheduler for RoundRobinOnce {
    fn begin_execution(&mut self) -> bool {
        !std::mem::replace(&mut self.ran, true)
    }

    fn choose(&mut self, point: &SchedulingPoint) -> ThreadId {
        point.round_robin_choice()
    }

    fn end_execution(&mut self, _outcome: &ExecutionOutcome) {}

    fn name(&self) -> String {
        "RoundRobin".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_once_runs_exactly_one_execution() {
        let mut s = RoundRobinOnce::default();
        assert!(s.begin_execution());
        assert!(!s.begin_execution());
        assert!(!s.begin_execution());
        assert_eq!(s.name(), "RoundRobin");
        assert!(!s.is_exhaustive());
    }
}

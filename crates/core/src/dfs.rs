//! Bounded depth-first search over schedules: the systematic exploration
//! strategy that DFS, preemption bounding and delay bounding are all built
//! on. Exploration is *stateless* (in the model-checking sense): every
//! schedule is explored by re-executing the program from its initial state,
//! replaying the decision prefix recorded on the search stack.
//!
//! # Sleep-set partial-order reduction
//!
//! With [`BoundedDfs::with_sleep_sets`] the search applies Godefroid-style
//! sleep sets over the [`PendingOp`] summaries of the scheduling point. Each
//! `ChoicePoint` carries a *sleep set*: threads whose subtrees at this node
//! are already covered by an earlier sibling, together with the pending
//! operation each was parked at when it was put to sleep. The rules are:
//!
//! * when the search backtracks into an alternative at a node, the
//!   previously-chosen thread is put to sleep at that node — unless the
//!   schedule bound excluded something inside the subtree just explored
//!   (tracked by a bound-prune counter snapshot per node), in which case the
//!   subtree's coverage is incomplete within the bound and the thread stays
//!   awake;
//! * a child node inherits its parent's sleep set minus the entries whose
//!   pending operation is *dependent* on the operation the parent just
//!   executed (same address with at least one write, or any sync-object /
//!   thread-lifecycle operation) — a dependent step wakes the sleeper;
//! * sleeping threads are neither chosen nor recorded as alternatives.
//!
//! Because two independent steps commute, the reduced search still explores
//! at least one interleaving of every Mazurkiewicz trace of the program, so
//! it finds every bug and reaches every non-buggy terminal state (and every
//! deadlock) the plain search reaches; only redundant interleavings of
//! commuting steps are pruned. Executions that stop *mid-trace* at an
//! assertion or crash may halt at a different — equivalent up to commuting
//! the remaining steps — intermediate state than their plain-search
//! counterparts, which is why the differential oracle in
//! `tests/integration.rs` compares bug sets exactly but fingerprints only of
//! non-buggy terminal states. A stateless search cannot abandon an execution
//! midway, so when every enabled thread at a node is asleep (the node's whole
//! subtree is covered elsewhere) the current execution is *redundant*: the
//! search completes it along the deterministic choice, records no further
//! alternatives anywhere below, and flags it via
//! [`Scheduler::current_execution_redundant`] so the exploration drivers do
//! not count it as an explored schedule.

use crate::bounds::BoundPolicy;
use crate::scheduler::Scheduler;
use sct_runtime::{ExecutionOutcome, PendingOp, SchedulingPoint, ThreadId};

/// A decision on the DFS stack.
#[derive(Debug, Clone)]
struct ChoicePoint {
    /// Thread chosen for the current execution at this depth.
    chosen: ThreadId,
    /// Bound cost of that choice.
    cost: u32,
    /// Pending-operation summary of `chosen` at this point, refreshed on
    /// every replay so it always describes the choice in force. This is what
    /// goes to sleep when the search backtracks away from `chosen`, and what
    /// child nodes test their inherited sleep entries against. `None` when
    /// sleep sets are disabled (the summary is never needed then).
    chosen_op: Option<PendingOp>,
    /// Alternatives (thread, cost) not yet explored at this depth. Stored in
    /// reverse thread order so `pop` explores lower thread ids first.
    alternatives: Vec<(ThreadId, u32)>,
    /// Sleep set at this node (empty unless sleep sets are enabled).
    sleep: Vec<PendingOp>,
    /// Value of [`BoundedDfs::bound_prunes`] when `chosen` was installed.
    /// If the counter moved by the time the search backtracks, the bound
    /// excluded something inside `chosen`'s subtree, so its coverage is
    /// incomplete within this bound and the thread must not go to sleep
    /// (wake-on-bound-conflict: keeps the reduction sound under schedule
    /// bounding).
    bound_prunes_at_entry: u64,
}

/// A frontier subtree in transit between two searches: everything a thief
/// worker needs to explore a victim's unexplored sibling subtrees exactly as
/// the serial search would have (see [`crate::steal`]).
///
/// Produced by [`BoundedDfs::donate_oldest_subtree`] on the victim and
/// consumed by [`BoundedDfs::seed_subtree`] on a fresh thief scheduler.
#[derive(Debug, Clone)]
pub struct SubtreeSeed {
    /// Decision path `(thread, cost)` from the root of the schedule tree down
    /// to — excluding — the branching node the alternatives hang off.
    pub prefix: Vec<(ThreadId, u32)>,
    /// The unexplored alternatives at the branching node, in reverse thread
    /// order (`pop` explores lower thread ids first — the exact layout the
    /// node had on the victim's stack).
    pub alternatives: Vec<(ThreadId, u32)>,
    /// Sleep set in force on entry to the first donated alternative: the
    /// victim node's sleep set plus the operation of the child the victim
    /// kept, which the serial search would have put to sleep when
    /// backtracking into the first alternative.
    pub sleep: Vec<PendingOp>,
    /// How many sleep-set insertions the boundary hand-off above accounts
    /// for (1 when sleep sets are on, else 0). The serial search performs
    /// them inside the `begin_execution` that enters the first donated
    /// alternative, so the stealing fold charges them when it crosses into
    /// this subtree's stream — the victim never performs them itself.
    pub entry_slept: u64,
}

/// Depth-first exploration of all terminal schedules whose total cost under
/// `policy` is at most `bound`.
///
/// The first schedule explored is always the non-preemptive round-robin
/// schedule (cost zero), matching the observation in §3 of the paper that
/// IPB, IDB and DFS all start from the same initial schedule.
pub struct BoundedDfs {
    policy: Box<dyn BoundPolicy>,
    bound: u32,
    label: String,
    stack: Vec<ChoicePoint>,
    /// Replay cursor within `stack` for the current execution.
    pos: usize,
    /// Bound budget consumed along the current path.
    used: u32,
    first: bool,
    complete: bool,
    /// Whether the bound excluded at least one alternative anywhere.
    pruned: bool,
    /// Number of alternatives the bound has excluded so far (the counter
    /// behind the per-node wake-on-bound-conflict snapshots).
    bound_prunes: u64,
    executions: u64,
    /// Whether sleep-set partial-order reduction is enabled.
    sleep_sets: bool,
    /// Number of threads put to sleep across the whole search.
    slept: u64,
    /// Number of in-budget alternatives not explored because the thread was
    /// asleep (including whole sleep-blocked nodes).
    pruned_by_sleep: u64,
    /// Whether the current execution hit a sleep-blocked node and is being
    /// completed only because a stateless search cannot stop midway.
    redundant: bool,
    /// Number of redundant (sleep-blocked) completions so far.
    redundant_runs: u64,
}

impl BoundedDfs {
    /// Create a bounded DFS with the given policy and bound.
    pub fn new(policy: Box<dyn BoundPolicy>, bound: u32) -> Self {
        let label = format!("{}({})", policy.name(), bound);
        BoundedDfs {
            policy,
            bound,
            label,
            stack: Vec::new(),
            pos: 0,
            used: 0,
            first: true,
            complete: false,
            pruned: false,
            bound_prunes: 0,
            executions: 0,
            sleep_sets: false,
            slept: 0,
            pruned_by_sleep: 0,
            redundant: false,
            redundant_runs: 0,
        }
    }

    /// Plain depth-first search (no bound).
    pub fn unbounded() -> Self {
        BoundedDfs::new(Box::new(crate::bounds::NoBound), u32::MAX)
    }

    /// Enable (or disable) sleep-set partial-order reduction. Must be set
    /// before the first execution. An unbounded search stays exhaustive over
    /// program states — only redundant interleavings of independent steps
    /// are pruned (see the module documentation for the soundness argument).
    /// Under a finite bound, a thread is put to sleep only when its explored
    /// subtree saw no bound exclusions (wake-on-bound-conflict), so the
    /// bounded search still covers every state it would have covered without
    /// the reduction; the pruning simply bites less at tight bounds.
    pub fn with_sleep_sets(mut self, enabled: bool) -> Self {
        debug_assert!(self.first, "toggle sleep sets before exploring");
        self.sleep_sets = enabled;
        self.label = if enabled {
            format!("{}({})+ss", self.policy.name(), self.bound)
        } else {
            format!("{}({})", self.policy.name(), self.bound)
        };
        self
    }

    /// Whether sleep-set reduction is enabled.
    pub fn sleep_sets_enabled(&self) -> bool {
        self.sleep_sets
    }

    /// Number of threads put to sleep while backtracking.
    pub fn slept(&self) -> u64 {
        self.slept
    }

    /// Number of in-budget alternatives the sleep sets pruned.
    pub fn pruned_by_sleep(&self) -> u64 {
        self.pruned_by_sleep
    }

    /// Number of sleep-blocked executions that were completed but not
    /// counted (see the module documentation).
    pub fn redundant_runs(&self) -> u64 {
        self.redundant_runs
    }

    /// Whether the search space has been exhausted.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Whether the bound pruned at least one schedule. When the search is
    /// complete *and* nothing was pruned, every terminal schedule of the
    /// program has been explored (so larger bounds cannot find more bugs).
    pub fn was_pruned(&self) -> bool {
        self.pruned
    }

    /// Number of executions started so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// The configured bound.
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Rewind the replay cursor to the root without backtracking, so the next
    /// [`Scheduler::choose`] calls re-issue the whole recorded stack from the
    /// top. Used by the cached exploration driver
    /// ([`crate::cache::run_begun_schedule`]) when a cache walk ends at a
    /// miss: the walk already consumed part of the replay, and the real
    /// execution must restart the program — and therefore the replay — from
    /// step zero. The sleep/redundant state accumulated by the walk is
    /// deliberately preserved: replaying a decision never re-runs its
    /// frontier bookkeeping.
    pub fn rewind_replay(&mut self) {
        self.pos = 0;
        self.used = 0;
    }

    /// Complete the current execution without an outcome: the schedule was
    /// served from the schedule cache, so there is no [`ExecutionOutcome`] to
    /// hand to [`Scheduler::end_execution`]. Equivalent to it in effect.
    pub fn finish_cached_execution(&mut self) {
        self.stack.truncate(self.pos);
    }

    /// Current decision-stack depth. Between executions this is the length of
    /// the last explored path; right after a successful
    /// [`Scheduler::begin_execution`] it is the depth of the decision the
    /// backtrack just changed, plus one — which is how the work-stealing
    /// engine ([`crate::steal`]) detects that the search has moved past a
    /// donated node.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Number of alternatives the bound has excluded so far (the cumulative
    /// counter behind [`BoundedDfs::was_pruned`]).
    pub fn bound_prune_count(&self) -> u64 {
        self.bound_prunes
    }

    /// Hand every unexplored alternative at the *shallowest* stack node that
    /// still has any to a thief, together with the prefix and entry sleep
    /// state the thief needs to explore them exactly as this search would
    /// have. Returns the seed and the stack index of the stripped node; once
    /// the backtracking search retreats past that index (its depth drops to
    /// the returned value or below), it has reached the point where the
    /// serial search would have entered the donated subtrees.
    ///
    /// Must only be called between executions (after
    /// [`Scheduler::end_execution`] / before the next `begin_execution`), so
    /// the stack is exactly the last explored path. The victim keeps the
    /// child it is currently under at the stripped node; because every node
    /// below the stripped one holds no alternatives, the victim's search
    /// completes once that child's subtree is exhausted.
    ///
    /// Sound only when sleep sets are off or the policy cannot prune
    /// ([`BoundPolicy::can_prune`]): under a finite bound the
    /// wake-on-bound-conflict rule makes a sibling's entry sleep set depend
    /// on what the bound excluded inside the previous sibling's subtree,
    /// which is unknown until that subtree has been fully explored — there
    /// is nothing deterministic to donate. Debug-asserted.
    pub fn donate_oldest_subtree(&mut self) -> Option<(SubtreeSeed, usize)> {
        debug_assert!(
            !self.sleep_sets || !self.policy.can_prune(),
            "donating with sleep sets under a pruning bound is unsound"
        );
        if self.first || self.complete {
            return None;
        }
        let index = self
            .stack
            .iter()
            .position(|cp| !cp.alternatives.is_empty())?;
        let prefix = self.stack[..index]
            .iter()
            .map(|cp| (cp.chosen, cp.cost))
            .collect();
        let node = &mut self.stack[index];
        let alternatives = std::mem::take(&mut node.alternatives);
        let mut sleep = node.sleep.clone();
        let mut entry_slept = 0;
        if self.sleep_sets {
            // The serial search would push the current child's operation into
            // the node's sleep set when backtracking into the first donated
            // alternative. That backtrack now happens on the thief's side of
            // the hand-off, so perform the push here and let the fold charge
            // its counter increment at the stream boundary. No
            // bound-conflict check is needed: `can_prune()` is false on this
            // path, so the snapshot comparison could never fail.
            if let Some(op) = node.chosen_op {
                sleep.push(op);
                entry_slept = 1;
            }
        }
        Some((
            SubtreeSeed {
                prefix,
                alternatives,
                sleep,
                entry_slept,
            },
            index,
        ))
    }

    /// Initialise a fresh scheduler with a donated subtree: the next
    /// `begin_execution` replays `prefix` and the first alternative, and the
    /// search then explores exactly the donated subtrees — in the order and
    /// with the sleep-set evolution the serial search would have used — and
    /// completes when they are exhausted (backtracking past the seeded node
    /// finds no further alternatives).
    pub fn seed_subtree(&mut self, seed: SubtreeSeed) {
        debug_assert!(
            self.first && self.stack.is_empty(),
            "seed a subtree before the first execution"
        );
        let SubtreeSeed {
            prefix,
            mut alternatives,
            sleep,
            entry_slept: _,
        } = seed;
        for (chosen, cost) in prefix {
            self.stack.push(ChoicePoint {
                chosen,
                cost,
                // Refreshed from the live scheduling point during replay
                // (sleep sets only); the prefix nodes never backtrack, so a
                // placeholder is safe either way.
                chosen_op: None,
                alternatives: Vec::new(),
                sleep: Vec::new(),
                bound_prunes_at_entry: 0,
            });
        }
        let (chosen, cost) = alternatives
            .pop()
            .expect("a donated subtree carries at least one alternative");
        self.stack.push(ChoicePoint {
            chosen,
            cost,
            chosen_op: None,
            alternatives,
            sleep,
            bound_prunes_at_entry: 0,
        });
    }
}

/// The runtime hands schedulers `pending` summaries index-parallel to
/// `enabled`; the sleep-set machinery relies on that pairing, so check it in
/// debug builds wherever a point enters the search.
fn debug_assert_index_parallel(point: &SchedulingPoint) {
    debug_assert!(
        point.pending.len() == point.enabled.len()
            && point
                .enabled
                .iter()
                .zip(point.pending.iter())
                .all(|(t, p)| p.thread == *t),
        "pending summaries not index-parallel to enabled at step {}",
        point.step_index
    );
}

impl Scheduler for BoundedDfs {
    fn begin_execution(&mut self) -> bool {
        if self.complete {
            return false;
        }
        if self.first {
            self.first = false;
        } else {
            // Backtrack to the deepest decision with an unexplored alternative.
            loop {
                match self.stack.last_mut() {
                    None => {
                        self.complete = true;
                        return false;
                    }
                    Some(top) => {
                        if let Some((t, cost)) = top.alternatives.pop() {
                            if self.sleep_sets {
                                // The subtree below the old choice was fully
                                // explored: the thread sleeps at this node
                                // until a dependent operation wakes it —
                                // unless the bound excluded something inside
                                // that subtree, in which case its coverage
                                // is incomplete within this bound and the
                                // thread must stay awake.
                                if self.bound_prunes == top.bound_prunes_at_entry {
                                    if let Some(op) = top.chosen_op {
                                        top.sleep.push(op);
                                        self.slept += 1;
                                    }
                                }
                                top.bound_prunes_at_entry = self.bound_prunes;
                            }
                            top.chosen = t;
                            top.cost = cost;
                            break;
                        }
                        self.stack.pop();
                    }
                }
            }
        }
        self.pos = 0;
        self.used = 0;
        self.redundant = false;
        self.executions += 1;
        true
    }

    fn choose(&mut self, point: &SchedulingPoint) -> ThreadId {
        debug_assert_index_parallel(point);
        if self.pos < self.stack.len() {
            // Replay the recorded prefix.
            let cp = &mut self.stack[self.pos];
            let chosen = cp.chosen;
            debug_assert!(
                point.is_enabled(chosen),
                "replay divergence: {chosen} not enabled at step {}",
                point.step_index
            );
            if self.sleep_sets {
                // After backtracking, `chosen` is a freshly popped
                // alternative whose pending op was unknown at pop time;
                // refresh the summary from the live point (a no-op for the
                // unchanged nodes above the backtrack point).
                if let Some(op) = point.pending.iter().find(|p| p.thread == chosen) {
                    cp.chosen_op = Some(*op);
                }
            }
            self.used += cp.cost;
            self.pos += 1;
            return chosen;
        }

        // Frontier: inherit the sleep set from the parent node. An entry
        // survives only if its thread did not just run and its pending op is
        // independent of the op the parent executed — a dependent op wakes
        // the sleeper.
        let mut sleep: Vec<PendingOp> = Vec::new();
        if self.sleep_sets && !self.redundant {
            if let Some(parent) = self.pos.checked_sub(1).map(|i| &self.stack[i]) {
                if let Some(parent_op) = parent.chosen_op {
                    sleep.extend(
                        parent
                            .sleep
                            .iter()
                            .filter(|u| u.thread != parent.chosen && u.independent_of(&parent_op))
                            .copied(),
                    );
                }
            }
        }
        fn asleep(sleep: &[PendingOp], t: ThreadId) -> bool {
            sleep.iter().any(|u| u.thread == t)
        }

        // Follow the deterministic scheduler. When its choice is asleep,
        // divert to the lowest-id awake enabled thread that still fits the
        // budget. When no such thread exists the node is *sleep-blocked*:
        // every subtree below it is covered elsewhere, so the rest of the
        // execution is redundant — a stateless search cannot stop midway, so
        // finish it along the deterministic choices, recording no further
        // alternatives, and let the driver skip its outcome.
        let mut default = point.round_robin_choice();
        if self.sleep_sets && !self.redundant && asleep(&sleep, default) {
            let diverted = point.enabled.iter().copied().find(|&t| {
                !asleep(&sleep, t)
                    && self.used.saturating_add(self.policy.cost(point, t)) <= self.bound
            });
            match diverted {
                Some(t) => default = t,
                None => {
                    self.redundant = true;
                    self.redundant_runs += 1;
                }
            }
        }
        let default_cost = self.policy.cost(point, default);
        let mut alternatives: Vec<(ThreadId, u32)> = Vec::new();
        for &t in point.enabled.iter().rev() {
            if t == default {
                continue;
            }
            let cost = self.policy.cost(point, t);
            if self.used.saturating_add(cost) > self.bound {
                // Keep detecting bound exclusions on redundant paths too, so
                // iterative bounding never claims completeness it does not
                // have.
                self.pruned = true;
                self.bound_prunes += 1;
            } else if self.sleep_sets && asleep(&sleep, t) {
                // In budget but asleep: pruned by the reduction (this is
                // where the sleep-blocked node's suppressed expansion is
                // counted too).
                self.pruned_by_sleep += 1;
            } else if self.redundant {
                // Redundant continuation: covered elsewhere.
            } else {
                alternatives.push((t, cost));
            }
        }
        // The summary of the chosen op is only needed by the reduction; keep
        // the POR-off hot path free of the scan. Looked up by thread id, the
        // same way the replay path refreshes it, so the two can never diverge
        // even if `pending` and `enabled` ever fell out of step (which the
        // index-parallel assertion above rules out in debug builds).
        let chosen_op = if self.sleep_sets {
            point.pending.iter().find(|p| p.thread == default).copied()
        } else {
            None
        };
        self.used = self.used.saturating_add(default_cost);
        self.stack.push(ChoicePoint {
            chosen: default,
            cost: default_cost,
            chosen_op,
            alternatives,
            sleep,
            bound_prunes_at_entry: self.bound_prunes,
        });
        self.pos += 1;
        default
    }

    fn end_execution(&mut self, _outcome: &ExecutionOutcome) {
        // Truncation is implicit: entries beyond the replay/frontier cursor
        // never exist because the stack only grows at the frontier. Nothing
        // to do here; backtracking happens in `begin_execution`.
        self.stack.truncate(self.pos);
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn is_exhaustive(&self) -> bool {
        self.complete
    }

    fn can_exhaust(&self) -> bool {
        true
    }

    fn sleep_counters(&self) -> (u64, u64) {
        (self.slept, self.pruned_by_sleep)
    }

    fn current_execution_redundant(&self) -> bool {
        self.redundant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{DelayBound, PreemptionBound};
    use sct_ir::prelude::*;
    use sct_runtime::{ExecConfig, Execution, NoopObserver};

    /// Drive a scheduler to completion (or a limit) and return the number of
    /// terminal schedules and the number of buggy ones.
    fn drive(program: &Program, mut sched: BoundedDfs, limit: u64) -> (u64, u64, bool) {
        let config = ExecConfig::all_visible();
        let mut total = 0;
        let mut buggy = 0;
        let mut exec = Execution::new_shared(program, &config);
        while total < limit && sched.begin_execution() {
            exec.reset();
            let outcome = exec.run(&mut |p| sched.choose(p), &mut NoopObserver);
            sched.end_execution(&outcome);
            if sched.current_execution_redundant() {
                continue;
            }
            total += 1;
            if outcome.is_buggy() {
                buggy += 1;
            }
        }
        (total, buggy, sched.is_complete())
    }

    /// Two threads, each one visible store: 2 interleavings of 2 steps each,
    /// i.e. C(2,1) = 2 terminal schedules... plus the spawning main thread
    /// whose steps are fixed relative to the workers it has spawned.
    fn two_writers() -> Program {
        let mut p = ProgramBuilder::new("two-writers");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let t1 = p.thread("t1", |b| {
            b.store(x, 1);
        });
        let t2 = p.thread("t2", |b| {
            b.store(y, 1);
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
        });
        p.build().unwrap()
    }

    /// Figure 1 of the paper.
    fn figure1() -> Program {
        let mut p = ProgramBuilder::new("figure1");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let z = p.global("z", 0);
        let t1 = p.thread("t1", |b| {
            b.store(x, 1);
            b.store(y, 1);
        });
        let t2 = p.thread("t2", |b| {
            b.store(z, 1);
        });
        let t3 = p.thread("t3", |b| {
            let rx = b.local("rx");
            let ry = b.local("ry");
            b.load(x, rx);
            b.load(y, ry);
            b.assert_cond(eq(rx, ry), "x == y");
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
            b.spawn(t3);
        });
        p.build().unwrap()
    }

    #[test]
    fn unbounded_dfs_enumerates_all_interleavings_of_independent_writers() {
        let prog = two_writers();
        let (total, buggy, complete) = drive(&prog, BoundedDfs::unbounded(), 10_000);
        assert!(complete);
        assert_eq!(buggy, 0);
        // main spawns t1 then t2 and finishes; the workers' two stores can
        // interleave in exactly 2 orders once both exist, but main's own
        // scheduling points multiply the count. The important invariants:
        // exploration terminates, is complete, and finds more than 1 schedule.
        assert!(total >= 2, "expected at least 2 schedules, got {total}");
    }

    #[test]
    fn bound_zero_explores_exactly_the_round_robin_schedule_for_delay() {
        let prog = figure1();
        let sched = BoundedDfs::new(Box::new(DelayBound), 0);
        let (total, buggy, complete) = drive(&prog, sched, 10_000);
        assert!(complete);
        assert_eq!(total, 1, "delay bound 0 must yield exactly one schedule");
        assert_eq!(buggy, 0);
    }

    #[test]
    fn figure1_needs_a_preemption_for_the_bug() {
        let prog = figure1();
        // Preemption bound 0: no bug.
        let (_, buggy0, complete0) =
            drive(&prog, BoundedDfs::new(Box::new(PreemptionBound), 0), 10_000);
        assert!(complete0);
        assert_eq!(buggy0, 0);
        // Preemption bound 1: the assertion can fail (Example 1 in the paper).
        let (_, buggy1, complete1) =
            drive(&prog, BoundedDfs::new(Box::new(PreemptionBound), 1), 10_000);
        assert!(complete1);
        assert!(buggy1 > 0);
        // Delay bound 1 also finds it.
        let (_, buggyd, _) = drive(&prog, BoundedDfs::new(Box::new(DelayBound), 1), 10_000);
        assert!(buggyd > 0);
    }

    #[test]
    fn delay_bound_one_explores_fewer_schedules_than_preemption_bound_one() {
        // Example 2 of the paper: a preemption bound of one yields 11 terminal
        // schedules for Figure 1, while a delay bound of one yields only 4.
        // Our thread structure includes the spawning main thread, so absolute
        // numbers differ, but the strict ordering must hold.
        let prog = figure1();
        let (total_pb, _, c1) = drive(&prog, BoundedDfs::new(Box::new(PreemptionBound), 1), 10_000);
        let (total_db, _, c2) = drive(&prog, BoundedDfs::new(Box::new(DelayBound), 1), 10_000);
        assert!(c1 && c2);
        assert!(
            total_db < total_pb,
            "delay bounding ({total_db}) should explore fewer schedules than preemption bounding ({total_pb})"
        );
    }

    #[test]
    fn schedules_within_smaller_bounds_are_subsets() {
        let prog = figure1();
        let mut counts = Vec::new();
        for bound in 0..3 {
            let (total, _, complete) =
                drive(&prog, BoundedDfs::new(Box::new(DelayBound), bound), 10_000);
            assert!(complete);
            counts.push(total);
        }
        assert!(counts[0] <= counts[1] && counts[1] <= counts[2]);
    }

    #[test]
    fn pruned_flag_reflects_whether_the_bound_actually_bit() {
        let prog = figure1();
        let config = ExecConfig::all_visible();
        let mut exec = Execution::new_shared(&prog, &config);
        let mut tight = BoundedDfs::new(Box::new(DelayBound), 0);
        while tight.begin_execution() {
            exec.reset();
            let outcome = exec.run(&mut |p| tight.choose(p), &mut NoopObserver);
            tight.end_execution(&outcome);
        }
        assert!(tight.was_pruned());

        let mut loose = BoundedDfs::unbounded();
        while loose.begin_execution() {
            exec.reset();
            let outcome = exec.run(&mut |p| loose.choose(p), &mut NoopObserver);
            loose.end_execution(&outcome);
        }
        assert!(!loose.was_pruned());
    }

    /// Drive a scheduler over `program` collecting the terminal-state
    /// fingerprint set, the set of distinct bugs, and the execution count.
    fn explore_sets(
        program: &Program,
        mut sched: BoundedDfs,
    ) -> (
        std::collections::BTreeSet<u64>,
        std::collections::BTreeSet<String>,
        u64,
    ) {
        let config = ExecConfig::all_visible();
        let mut exec = Execution::new_shared(program, &config);
        let mut fingerprints = std::collections::BTreeSet::new();
        let mut bugs = std::collections::BTreeSet::new();
        let mut counted = 0u64;
        while sched.begin_execution() {
            exec.reset();
            let outcome = exec.run(&mut |p| sched.choose(p), &mut NoopObserver);
            sched.end_execution(&outcome);
            if sched.current_execution_redundant() {
                continue;
            }
            counted += 1;
            if let Some(bug) = &outcome.bug {
                bugs.insert(format!("{bug:?}"));
            } else {
                // Buggy executions stop mid-trace, so only non-buggy
                // terminal states are endpoint-preserved by the reduction.
                fingerprints.insert(outcome.fingerprint);
            }
        }
        assert!(sched.is_complete());
        (fingerprints, bugs, counted)
    }

    #[test]
    fn sleep_sets_prune_commuting_interleavings_of_independent_writers() {
        let prog = two_writers();
        let (plain_fps, plain_bugs, plain_n) = explore_sets(&prog, BoundedDfs::unbounded());
        let (por_fps, por_bugs, por_n) =
            explore_sets(&prog, BoundedDfs::unbounded().with_sleep_sets(true));
        assert_eq!(plain_fps, por_fps, "terminal states must be preserved");
        assert_eq!(plain_bugs, por_bugs);
        assert!(
            por_n < plain_n,
            "two independent stores must prune: {por_n} vs {plain_n}"
        );
    }

    #[test]
    fn sleep_sets_preserve_the_figure1_bug_and_terminal_states() {
        let prog = figure1();
        let (plain_fps, plain_bugs, plain_n) = explore_sets(&prog, BoundedDfs::unbounded());
        let (por_fps, por_bugs, por_n) =
            explore_sets(&prog, BoundedDfs::unbounded().with_sleep_sets(true));
        assert_eq!(plain_fps, por_fps);
        assert_eq!(plain_bugs, por_bugs);
        assert!(!por_bugs.is_empty(), "figure1's assertion bug must survive");
        assert!(por_n < plain_n, "{por_n} vs {plain_n}");
    }

    #[test]
    fn sleep_set_counters_and_label_reflect_the_reduction() {
        let prog = figure1();
        let sched = BoundedDfs::unbounded().with_sleep_sets(true);
        assert!(sched.sleep_sets_enabled());
        assert!(sched.name().ends_with("+ss"));
        let mut sched = sched;
        let config = ExecConfig::all_visible();
        let mut exec = Execution::new_shared(&prog, &config);
        while sched.begin_execution() {
            exec.reset();
            let outcome = exec.run(&mut |p| sched.choose(p), &mut NoopObserver);
            sched.end_execution(&outcome);
        }
        assert!(sched.slept() > 0, "backtracking must put threads to sleep");
        assert!(sched.pruned_by_sleep() > 0, "figure1 has commuting stores");
        assert_eq!(
            sched.sleep_counters(),
            (sched.slept(), sched.pruned_by_sleep())
        );
        // Plain DFS reports zero on both counters.
        let plain = BoundedDfs::unbounded();
        assert_eq!(plain.sleep_counters(), (0, 0));
        assert!(!plain.name().ends_with("+ss"));
    }

    #[test]
    fn bounded_search_with_sleep_sets_stays_within_the_bound_and_finds_the_bug() {
        // The reduction composes with schedule bounding: preemption bound 1
        // still finds Figure 1's bug with strictly fewer executions, and
        // bound 0 still explores exactly the deterministic schedule.
        let prog = figure1();
        let (_, b0, c0) = drive(
            &prog,
            BoundedDfs::new(Box::new(DelayBound), 0).with_sleep_sets(true),
            10_000,
        );
        assert!(c0);
        assert_eq!(b0, 0);
        let (plain_total, plain_buggy, _) =
            drive(&prog, BoundedDfs::new(Box::new(PreemptionBound), 1), 10_000);
        let (por_total, por_buggy, complete) = drive(
            &prog,
            BoundedDfs::new(Box::new(PreemptionBound), 1).with_sleep_sets(true),
            10_000,
        );
        assert!(complete);
        assert!(plain_buggy > 0 && por_buggy > 0);
        assert!(
            por_total <= plain_total,
            "reduction must not grow the bounded space: {por_total} vs {plain_total}"
        );
    }

    #[test]
    fn dfs_does_not_repeat_terminal_schedules() {
        let prog = two_writers();
        let config = ExecConfig::all_visible();
        let mut sched = BoundedDfs::unbounded();
        let mut seen = std::collections::HashSet::new();
        let mut exec = Execution::new_shared(&prog, &config);
        while sched.begin_execution() {
            exec.reset();
            let outcome = exec.run(&mut |p| sched.choose(p), &mut NoopObserver);
            sched.end_execution(&outcome);
            let key: Vec<usize> = outcome.schedule().iter().map(|t| t.index()).collect();
            assert!(seen.insert(key), "schedule explored twice");
        }
        assert!(seen.len() >= 2);
    }
}

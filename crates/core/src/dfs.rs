//! Bounded depth-first search over schedules: the systematic exploration
//! strategy that DFS, preemption bounding and delay bounding are all built
//! on. Exploration is *stateless* (in the model-checking sense): every
//! schedule is explored by re-executing the program from its initial state,
//! replaying the decision prefix recorded on the search stack.

use crate::bounds::BoundPolicy;
use crate::scheduler::Scheduler;
use sct_runtime::{ExecutionOutcome, SchedulingPoint, ThreadId};

/// A decision on the DFS stack.
#[derive(Debug, Clone)]
struct ChoicePoint {
    /// Thread chosen for the current execution at this depth.
    chosen: ThreadId,
    /// Bound cost of that choice.
    cost: u32,
    /// Alternatives (thread, cost) not yet explored at this depth. Stored in
    /// reverse thread order so `pop` explores lower thread ids first.
    alternatives: Vec<(ThreadId, u32)>,
}

/// Depth-first exploration of all terminal schedules whose total cost under
/// `policy` is at most `bound`.
///
/// The first schedule explored is always the non-preemptive round-robin
/// schedule (cost zero), matching the observation in §3 of the paper that
/// IPB, IDB and DFS all start from the same initial schedule.
pub struct BoundedDfs {
    policy: Box<dyn BoundPolicy>,
    bound: u32,
    label: String,
    stack: Vec<ChoicePoint>,
    /// Replay cursor within `stack` for the current execution.
    pos: usize,
    /// Bound budget consumed along the current path.
    used: u32,
    first: bool,
    complete: bool,
    /// Whether the bound excluded at least one alternative anywhere.
    pruned: bool,
    executions: u64,
}

impl BoundedDfs {
    /// Create a bounded DFS with the given policy and bound.
    pub fn new(policy: Box<dyn BoundPolicy>, bound: u32) -> Self {
        let label = format!("{}({})", policy.name(), bound);
        BoundedDfs {
            policy,
            bound,
            label,
            stack: Vec::new(),
            pos: 0,
            used: 0,
            first: true,
            complete: false,
            pruned: false,
            executions: 0,
        }
    }

    /// Plain depth-first search (no bound).
    pub fn unbounded() -> Self {
        BoundedDfs::new(Box::new(crate::bounds::NoBound), u32::MAX)
    }

    /// Whether the search space has been exhausted.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Whether the bound pruned at least one schedule. When the search is
    /// complete *and* nothing was pruned, every terminal schedule of the
    /// program has been explored (so larger bounds cannot find more bugs).
    pub fn was_pruned(&self) -> bool {
        self.pruned
    }

    /// Number of executions started so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// The configured bound.
    pub fn bound(&self) -> u32 {
        self.bound
    }
}

impl Scheduler for BoundedDfs {
    fn begin_execution(&mut self) -> bool {
        if self.complete {
            return false;
        }
        if self.first {
            self.first = false;
        } else {
            // Backtrack to the deepest decision with an unexplored alternative.
            loop {
                match self.stack.last_mut() {
                    None => {
                        self.complete = true;
                        return false;
                    }
                    Some(top) => {
                        if let Some((t, cost)) = top.alternatives.pop() {
                            top.chosen = t;
                            top.cost = cost;
                            break;
                        }
                        self.stack.pop();
                    }
                }
            }
        }
        self.pos = 0;
        self.used = 0;
        self.executions += 1;
        true
    }

    fn choose(&mut self, point: &SchedulingPoint) -> ThreadId {
        if self.pos < self.stack.len() {
            // Replay the recorded prefix.
            let cp = &self.stack[self.pos];
            let chosen = cp.chosen;
            debug_assert!(
                point.is_enabled(chosen),
                "replay divergence: {chosen} not enabled at step {}",
                point.step_index
            );
            self.used += cp.cost;
            self.pos += 1;
            return chosen;
        }

        // Frontier: follow the deterministic scheduler and record in-budget
        // alternatives for later exploration.
        let default = point.round_robin_choice();
        let default_cost = self.policy.cost(point, default);
        let mut alternatives: Vec<(ThreadId, u32)> = Vec::new();
        for &t in point.enabled.iter().rev() {
            if t == default {
                continue;
            }
            let cost = self.policy.cost(point, t);
            if self.used.saturating_add(cost) <= self.bound {
                alternatives.push((t, cost));
            } else {
                self.pruned = true;
            }
        }
        self.used = self.used.saturating_add(default_cost);
        self.stack.push(ChoicePoint {
            chosen: default,
            cost: default_cost,
            alternatives,
        });
        self.pos += 1;
        default
    }

    fn end_execution(&mut self, _outcome: &ExecutionOutcome) {
        // Truncation is implicit: entries beyond the replay/frontier cursor
        // never exist because the stack only grows at the frontier. Nothing
        // to do here; backtracking happens in `begin_execution`.
        self.stack.truncate(self.pos);
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn is_exhaustive(&self) -> bool {
        self.complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{DelayBound, PreemptionBound};
    use sct_ir::prelude::*;
    use sct_runtime::{ExecConfig, Execution, NoopObserver};

    /// Drive a scheduler to completion (or a limit) and return the number of
    /// terminal schedules and the number of buggy ones.
    fn drive(program: &Program, mut sched: BoundedDfs, limit: u64) -> (u64, u64, bool) {
        let config = ExecConfig::all_visible();
        let mut total = 0;
        let mut buggy = 0;
        let mut exec = Execution::new_shared(program, &config);
        while total < limit && sched.begin_execution() {
            exec.reset();
            let outcome = exec.run(&mut |p| sched.choose(p), &mut NoopObserver);
            sched.end_execution(&outcome);
            total += 1;
            if outcome.is_buggy() {
                buggy += 1;
            }
        }
        (total, buggy, sched.is_complete())
    }

    /// Two threads, each one visible store: 2 interleavings of 2 steps each,
    /// i.e. C(2,1) = 2 terminal schedules... plus the spawning main thread
    /// whose steps are fixed relative to the workers it has spawned.
    fn two_writers() -> Program {
        let mut p = ProgramBuilder::new("two-writers");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let t1 = p.thread("t1", |b| {
            b.store(x, 1);
        });
        let t2 = p.thread("t2", |b| {
            b.store(y, 1);
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
        });
        p.build().unwrap()
    }

    /// Figure 1 of the paper.
    fn figure1() -> Program {
        let mut p = ProgramBuilder::new("figure1");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let z = p.global("z", 0);
        let t1 = p.thread("t1", |b| {
            b.store(x, 1);
            b.store(y, 1);
        });
        let t2 = p.thread("t2", |b| {
            b.store(z, 1);
        });
        let t3 = p.thread("t3", |b| {
            let rx = b.local("rx");
            let ry = b.local("ry");
            b.load(x, rx);
            b.load(y, ry);
            b.assert_cond(eq(rx, ry), "x == y");
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
            b.spawn(t3);
        });
        p.build().unwrap()
    }

    #[test]
    fn unbounded_dfs_enumerates_all_interleavings_of_independent_writers() {
        let prog = two_writers();
        let (total, buggy, complete) = drive(&prog, BoundedDfs::unbounded(), 10_000);
        assert!(complete);
        assert_eq!(buggy, 0);
        // main spawns t1 then t2 and finishes; the workers' two stores can
        // interleave in exactly 2 orders once both exist, but main's own
        // scheduling points multiply the count. The important invariants:
        // exploration terminates, is complete, and finds more than 1 schedule.
        assert!(total >= 2, "expected at least 2 schedules, got {total}");
    }

    #[test]
    fn bound_zero_explores_exactly_the_round_robin_schedule_for_delay() {
        let prog = figure1();
        let sched = BoundedDfs::new(Box::new(DelayBound), 0);
        let (total, buggy, complete) = drive(&prog, sched, 10_000);
        assert!(complete);
        assert_eq!(total, 1, "delay bound 0 must yield exactly one schedule");
        assert_eq!(buggy, 0);
    }

    #[test]
    fn figure1_needs_a_preemption_for_the_bug() {
        let prog = figure1();
        // Preemption bound 0: no bug.
        let (_, buggy0, complete0) =
            drive(&prog, BoundedDfs::new(Box::new(PreemptionBound), 0), 10_000);
        assert!(complete0);
        assert_eq!(buggy0, 0);
        // Preemption bound 1: the assertion can fail (Example 1 in the paper).
        let (_, buggy1, complete1) =
            drive(&prog, BoundedDfs::new(Box::new(PreemptionBound), 1), 10_000);
        assert!(complete1);
        assert!(buggy1 > 0);
        // Delay bound 1 also finds it.
        let (_, buggyd, _) = drive(&prog, BoundedDfs::new(Box::new(DelayBound), 1), 10_000);
        assert!(buggyd > 0);
    }

    #[test]
    fn delay_bound_one_explores_fewer_schedules_than_preemption_bound_one() {
        // Example 2 of the paper: a preemption bound of one yields 11 terminal
        // schedules for Figure 1, while a delay bound of one yields only 4.
        // Our thread structure includes the spawning main thread, so absolute
        // numbers differ, but the strict ordering must hold.
        let prog = figure1();
        let (total_pb, _, c1) = drive(&prog, BoundedDfs::new(Box::new(PreemptionBound), 1), 10_000);
        let (total_db, _, c2) = drive(&prog, BoundedDfs::new(Box::new(DelayBound), 1), 10_000);
        assert!(c1 && c2);
        assert!(
            total_db < total_pb,
            "delay bounding ({total_db}) should explore fewer schedules than preemption bounding ({total_pb})"
        );
    }

    #[test]
    fn schedules_within_smaller_bounds_are_subsets() {
        let prog = figure1();
        let mut counts = Vec::new();
        for bound in 0..3 {
            let (total, _, complete) =
                drive(&prog, BoundedDfs::new(Box::new(DelayBound), bound), 10_000);
            assert!(complete);
            counts.push(total);
        }
        assert!(counts[0] <= counts[1] && counts[1] <= counts[2]);
    }

    #[test]
    fn pruned_flag_reflects_whether_the_bound_actually_bit() {
        let prog = figure1();
        let config = ExecConfig::all_visible();
        let mut exec = Execution::new_shared(&prog, &config);
        let mut tight = BoundedDfs::new(Box::new(DelayBound), 0);
        while tight.begin_execution() {
            exec.reset();
            let outcome = exec.run(&mut |p| tight.choose(p), &mut NoopObserver);
            tight.end_execution(&outcome);
        }
        assert!(tight.was_pruned());

        let mut loose = BoundedDfs::unbounded();
        while loose.begin_execution() {
            exec.reset();
            let outcome = exec.run(&mut |p| loose.choose(p), &mut NoopObserver);
            loose.end_execution(&outcome);
        }
        assert!(!loose.was_pruned());
    }

    #[test]
    fn dfs_does_not_repeat_terminal_schedules() {
        let prog = two_writers();
        let config = ExecConfig::all_visible();
        let mut sched = BoundedDfs::unbounded();
        let mut seen = std::collections::HashSet::new();
        let mut exec = Execution::new_shared(&prog, &config);
        while sched.begin_execution() {
            exec.reset();
            let outcome = exec.run(&mut |p| sched.choose(p), &mut NoopObserver);
            sched.end_execution(&outcome);
            let key: Vec<usize> = outcome.schedule().iter().map(|t| t.index()).collect();
            assert!(seen.insert(key), "schedule explored twice");
        }
        assert!(seen.len() >= 2);
    }
}

//! Exploration statistics: the per-benchmark, per-technique numbers reported
//! in Table 3 of the paper.

use sct_runtime::{Bug, ExecutionOutcome};

/// Statistics gathered while exploring one program with one technique.
///
/// Equality deliberately ignores the wall-clock fields ([`explore_nanos`],
/// [`race_nanos`]): the serial≡parallel differential suite asserts stats are
/// bit-identical across worker counts, and wall-clock time is the one thing
/// that legitimately differs between those runs.
///
/// [`explore_nanos`]: ExplorationStats::explore_nanos
/// [`race_nanos`]: ExplorationStats::race_nanos
#[derive(Debug, Clone)]
pub struct ExplorationStats {
    /// Name of the technique ("IPB", "IDB", "DFS", "Rand", ...).
    pub technique: String,
    /// Number of terminal schedules explored.
    pub schedules: u64,
    /// Number of schedules explored up to and including the first buggy one.
    pub schedules_to_first_bug: Option<u64>,
    /// Number of buggy schedules among those explored.
    pub buggy_schedules: u64,
    /// Number of schedules whose cost equals the final bound ("# new
    /// schedules" in Table 3). Only meaningful for iterative bounding.
    pub new_schedules_at_final_bound: u64,
    /// The bound in effect when exploration stopped (for bounded techniques).
    pub final_bound: Option<u32>,
    /// The smallest bound at which a bug was found (for iterative bounding).
    pub bound_of_first_bug: Option<u32>,
    /// The first bug found.
    pub first_bug: Option<Bug>,
    /// Maximum number of simultaneously enabled threads observed.
    pub max_enabled_threads: usize,
    /// Maximum number of scheduling points (with >1 enabled thread) observed
    /// in a single execution.
    pub max_scheduling_points: usize,
    /// Maximum number of threads created in a single execution.
    pub total_threads: usize,
    /// Number of executions cut short by the step limit.
    pub diverged_schedules: u64,
    /// Number of threads put to sleep by sleep-set partial-order reduction
    /// (0 when the reduction is off or the technique has none).
    pub slept: u64,
    /// Number of in-budget alternatives sleep sets pruned from the search.
    pub pruned_by_sleep: u64,
    /// Number of times the program was actually executed. Without schedule
    /// caching this is `schedules` plus the uncounted runs (interior
    /// re-executions of iterative bounding, sleep-redundant completions);
    /// with caching it shrinks by exactly `cache_hits`.
    pub executions: u64,
    /// Number of schedules served entirely from the schedule cache, i.e.
    /// without executing the program (0 when caching is off).
    pub cache_hits: u64,
    /// Estimated bytes held by the schedule cache when exploration stopped
    /// (0 when caching is off).
    pub cache_bytes: u64,
    /// Whether the technique exhausted its entire search space.
    pub complete: bool,
    /// Whether exploration stopped because the schedule limit was reached.
    /// Not set when the search exhausted its space at exactly the limit —
    /// `complete` wins.
    pub hit_schedule_limit: bool,
    /// Whether iterative bounding ran every bound level up to its `max_bound`
    /// without finding a bug, covering the space, or hitting the schedule
    /// limit: the search *gave up on bounds*, distinguishing this row from
    /// both a truncated and a completed one.
    pub bound_exhausted: bool,
    /// Whether exploration stopped because a wall-clock budget
    /// (`ExploreLimits::time_budget` or the harness `--benchmark-deadline`)
    /// expired. Like the wall-clock stamps it reflects time, not work, so it
    /// is excluded from equality — a run where no deadline fires is still
    /// bit-identical to an unbudgeted one.
    pub deadline_exceeded: bool,
    /// Whether the exploration engine panicked and the harness synthesized
    /// this row instead of aborting the study. All counted work below is from
    /// before the panic (usually zero). Excluded from equality: a panic is an
    /// environmental failure, not a property of the search.
    pub engine_panic: bool,
    /// Wall-clock nanoseconds spent exploring (driver entry to exit).
    /// Excluded from equality — see the type-level docs.
    pub explore_nanos: u64,
    /// Wall-clock nanoseconds the benchmark's phase 1 (dynamic race
    /// detection, or the static analysis under `--static-phase`) took,
    /// stamped identically onto every technique row of the benchmark by the
    /// harness. Excluded from equality — see the type-level docs.
    pub race_nanos: u64,
}

/// Field-wise equality over everything *except* the wall-clock fields
/// (`explore_nanos`, `race_nanos`), which vary run to run. Written as an
/// exhaustive destructuring so adding a field without deciding whether it
/// participates in the differential comparisons is a compile error.
impl PartialEq for ExplorationStats {
    fn eq(&self, other: &ExplorationStats) -> bool {
        let ExplorationStats {
            technique,
            schedules,
            schedules_to_first_bug,
            buggy_schedules,
            new_schedules_at_final_bound,
            final_bound,
            bound_of_first_bug,
            first_bug,
            max_enabled_threads,
            max_scheduling_points,
            total_threads,
            diverged_schedules,
            slept,
            pruned_by_sleep,
            executions,
            cache_hits,
            cache_bytes,
            complete,
            hit_schedule_limit,
            bound_exhausted,
            deadline_exceeded: _,
            engine_panic: _,
            explore_nanos: _,
            race_nanos: _,
        } = self;
        *technique == other.technique
            && *schedules == other.schedules
            && *schedules_to_first_bug == other.schedules_to_first_bug
            && *buggy_schedules == other.buggy_schedules
            && *new_schedules_at_final_bound == other.new_schedules_at_final_bound
            && *final_bound == other.final_bound
            && *bound_of_first_bug == other.bound_of_first_bug
            && *first_bug == other.first_bug
            && *max_enabled_threads == other.max_enabled_threads
            && *max_scheduling_points == other.max_scheduling_points
            && *total_threads == other.total_threads
            && *diverged_schedules == other.diverged_schedules
            && *slept == other.slept
            && *pruned_by_sleep == other.pruned_by_sleep
            && *executions == other.executions
            && *cache_hits == other.cache_hits
            && *cache_bytes == other.cache_bytes
            && *complete == other.complete
            && *hit_schedule_limit == other.hit_schedule_limit
            && *bound_exhausted == other.bound_exhausted
    }
}

impl Eq for ExplorationStats {}

impl ExplorationStats {
    /// Fresh statistics for a technique.
    pub fn new(technique: impl Into<String>) -> Self {
        ExplorationStats {
            technique: technique.into(),
            schedules: 0,
            schedules_to_first_bug: None,
            buggy_schedules: 0,
            new_schedules_at_final_bound: 0,
            final_bound: None,
            bound_of_first_bug: None,
            first_bug: None,
            max_enabled_threads: 0,
            max_scheduling_points: 0,
            total_threads: 0,
            diverged_schedules: 0,
            slept: 0,
            pruned_by_sleep: 0,
            executions: 0,
            cache_hits: 0,
            cache_bytes: 0,
            complete: false,
            hit_schedule_limit: false,
            bound_exhausted: false,
            deadline_exceeded: false,
            engine_panic: false,
            explore_nanos: 0,
            race_nanos: 0,
        }
    }

    /// Record the outcome of one terminal schedule.
    pub fn record(&mut self, outcome: &ExecutionOutcome) {
        self.record_parts(
            outcome.is_buggy(),
            outcome.diverged,
            outcome.threads_created,
            outcome.max_enabled,
            outcome.scheduling_points,
            outcome.bug.as_ref(),
        );
    }

    /// Record one terminal schedule from its summary fields. Both [`record`]
    /// and the parallel explorer's digest fold route through this, so the
    /// serial and parallel accounting cannot drift apart.
    ///
    /// [`record`]: ExplorationStats::record
    pub fn record_parts(
        &mut self,
        buggy: bool,
        diverged: bool,
        threads_created: usize,
        max_enabled: usize,
        scheduling_points: usize,
        bug: Option<&Bug>,
    ) {
        self.schedules += 1;
        self.max_enabled_threads = self.max_enabled_threads.max(max_enabled);
        self.max_scheduling_points = self.max_scheduling_points.max(scheduling_points);
        self.total_threads = self.total_threads.max(threads_created);
        if diverged {
            self.diverged_schedules += 1;
        }
        if buggy {
            self.buggy_schedules += 1;
            if self.schedules_to_first_bug.is_none() {
                self.schedules_to_first_bug = Some(self.schedules);
                self.first_bug = bug.cloned();
            }
        }
    }

    /// Fold the statistics of another shard of the *same* technique into
    /// these, deterministically: counts are summed, high-water marks are
    /// maxed, and the first-bug bookkeeping keeps the smallest shard-local
    /// schedule index (ties keep `self`, so folding shards in a fixed order
    /// is reproducible regardless of which worker finished first).
    ///
    /// `complete` holds only when every shard exhausted its space, while
    /// `hit_schedule_limit` holds when any shard hit its budget. Bound
    /// bookkeeping keeps the deepest `final_bound` and the shallowest
    /// `bound_of_first_bug`; `new_schedules_at_final_bound` follows the
    /// shard that owns the deepest bound (summing only on equal bounds), so
    /// the pair stays consistent.
    pub fn merge(&mut self, other: &ExplorationStats) {
        match (self.schedules_to_first_bug, other.schedules_to_first_bug) {
            (None, Some(_)) => {
                self.schedules_to_first_bug = other.schedules_to_first_bug;
                self.first_bug = other.first_bug.clone();
            }
            (Some(a), Some(b)) if b < a => {
                self.schedules_to_first_bug = Some(b);
                self.first_bug = other.first_bug.clone();
            }
            _ => {}
        }
        self.schedules += other.schedules;
        self.buggy_schedules += other.buggy_schedules;
        self.diverged_schedules += other.diverged_schedules;
        self.slept += other.slept;
        self.pruned_by_sleep += other.pruned_by_sleep;
        self.executions += other.executions;
        self.cache_hits += other.cache_hits;
        self.cache_bytes += other.cache_bytes;
        match (self.final_bound, other.final_bound) {
            (Some(a), Some(b)) if a == b => {
                self.new_schedules_at_final_bound += other.new_schedules_at_final_bound;
            }
            (Some(a), Some(b)) if b > a => {
                self.final_bound = Some(b);
                self.new_schedules_at_final_bound = other.new_schedules_at_final_bound;
            }
            (None, Some(_)) => {
                self.final_bound = other.final_bound;
                self.new_schedules_at_final_bound = other.new_schedules_at_final_bound;
            }
            _ => {}
        }
        self.bound_of_first_bug = match (self.bound_of_first_bug, other.bound_of_first_bug) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max_enabled_threads = self.max_enabled_threads.max(other.max_enabled_threads);
        self.max_scheduling_points = self.max_scheduling_points.max(other.max_scheduling_points);
        self.total_threads = self.total_threads.max(other.total_threads);
        self.complete = self.complete && other.complete;
        self.hit_schedule_limit = self.hit_schedule_limit || other.hit_schedule_limit;
        self.bound_exhausted = self.bound_exhausted || other.bound_exhausted;
        self.deadline_exceeded = self.deadline_exceeded || other.deadline_exceeded;
        self.engine_panic = self.engine_panic || other.engine_panic;
        // Shards run concurrently, so wall-clock folds as a high-water mark
        // (the aggregate took as long as its slowest shard), not a sum.
        self.explore_nanos = self.explore_nanos.max(other.explore_nanos);
        self.race_nanos = self.race_nanos.max(other.race_nanos);
    }

    /// Whether at least one bug was found.
    pub fn found_bug(&self) -> bool {
        self.schedules_to_first_bug.is_some()
    }

    /// Fraction of explored schedules that were buggy (0.0 when none were
    /// explored); the "% buggy" column of Table 3.
    pub fn buggy_fraction(&self) -> f64 {
        if self.schedules == 0 {
            0.0
        } else {
            self.buggy_schedules as f64 / self.schedules as f64
        }
    }

    /// Worst-case number of schedules that might be needed to find the bug
    /// with an adversarial search order within the bound: the number of
    /// non-buggy schedules explored (plus one for the bug itself). This is
    /// the quantity plotted in Figure 4 of the paper.
    pub fn worst_case_schedules_to_bug(&self) -> Option<u64> {
        if self.found_bug() {
            Some(self.schedules - self.buggy_schedules + 1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_runtime::{Bug, StepRecord, ThreadId};

    fn outcome(buggy: bool, diverged: bool) -> ExecutionOutcome {
        ExecutionOutcome {
            bug: if buggy {
                Some(Bug::Deadlock { blocked: vec![] })
            } else if diverged {
                Some(Bug::StepLimitExceeded { limit: 1 })
            } else {
                None
            },
            steps: vec![StepRecord {
                thread: ThreadId(0),
                enabled: sct_runtime::ThreadSet::from_slice(&[ThreadId(0)]),
                last_enabled: false,
                last: None,
                num_threads: 1,
            }],
            threads_created: 3,
            max_enabled: 2,
            scheduling_points: 5,
            diverged,
            fingerprint: 0,
        }
    }

    #[test]
    fn records_first_bug_position_and_counts() {
        let mut s = ExplorationStats::new("test");
        s.record(&outcome(false, false));
        s.record(&outcome(false, false));
        s.record(&outcome(true, false));
        s.record(&outcome(true, false));
        assert_eq!(s.schedules, 4);
        assert_eq!(s.buggy_schedules, 2);
        assert_eq!(s.schedules_to_first_bug, Some(3));
        assert!(s.found_bug());
        assert!((s.buggy_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(s.worst_case_schedules_to_bug(), Some(3));
        assert_eq!(s.max_enabled_threads, 2);
        assert_eq!(s.max_scheduling_points, 5);
        assert_eq!(s.total_threads, 3);
    }

    #[test]
    fn divergence_is_counted_but_not_a_bug() {
        let mut s = ExplorationStats::new("test");
        s.record(&outcome(false, true));
        assert_eq!(s.diverged_schedules, 1);
        assert!(!s.found_bug());
        assert_eq!(s.worst_case_schedules_to_bug(), None);
        assert_eq!(s.buggy_fraction(), 0.0);
    }

    #[test]
    fn merge_sums_counts_and_keeps_the_earliest_first_bug() {
        let mut a = ExplorationStats::new("Rand");
        a.record(&outcome(false, false));
        a.record(&outcome(false, false));
        a.record(&outcome(true, false)); // first bug at shard index 3

        let mut b = ExplorationStats::new("Rand");
        b.record(&outcome(false, false));
        b.record(&outcome(true, false)); // first bug at shard index 2
        assert_eq!(b.schedules_to_first_bug, Some(2));

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.schedules, 5);
        assert_eq!(merged.buggy_schedules, 2);
        // min of the shard-local indices: 2 (from b), not 3 (from a).
        assert_eq!(merged.schedules_to_first_bug, Some(2));
        assert!(merged.found_bug());

        // Merging in the other order gives the same aggregate.
        let mut flipped = b.clone();
        flipped.merge(&a);
        assert_eq!(flipped.schedules, merged.schedules);
        assert_eq!(
            flipped.schedules_to_first_bug,
            merged.schedules_to_first_bug
        );
        assert_eq!(flipped.buggy_schedules, merged.buggy_schedules);
    }

    #[test]
    fn merge_is_associative_over_shards() {
        let shard = |buggy_at: Option<u64>, n: u64| {
            let mut s = ExplorationStats::new("Rand");
            for i in 1..=n {
                s.record(&outcome(buggy_at == Some(i), false));
            }
            s
        };
        let shards = [shard(None, 4), shard(Some(2), 4), shard(Some(1), 4)];
        let mut left = shards[0].clone();
        left.merge(&shards[1]);
        left.merge(&shards[2]);
        let mut right = shards[1].clone();
        right.merge(&shards[2]);
        let mut outer = shards[0].clone();
        outer.merge(&right);
        assert_eq!(left, outer);
        assert_eq!(left.schedules, 12);
        assert_eq!(left.schedules_to_first_bug, Some(1));
    }

    #[test]
    fn merge_combines_flags_and_bounds() {
        let mut a = ExplorationStats::new("IPB");
        a.complete = true;
        a.final_bound = Some(2);
        a.new_schedules_at_final_bound = 10;
        a.bound_of_first_bug = Some(2);
        let mut b = ExplorationStats::new("IPB");
        b.complete = false;
        b.hit_schedule_limit = true;
        b.final_bound = Some(3);
        b.new_schedules_at_final_bound = 5;
        b.bound_of_first_bug = Some(1);
        a.merge(&b);
        assert!(!a.complete, "complete only when every shard completed");
        assert!(a.hit_schedule_limit, "limit hit when any shard hit it");
        assert_eq!(a.final_bound, Some(3));
        // The "new schedules" count follows the deepest bound's owner; the
        // shallower shard's count at a different bound must not leak in.
        assert_eq!(a.new_schedules_at_final_bound, 5);
        assert_eq!(a.bound_of_first_bug, Some(1));

        // Equal bounds sum their per-bound counts.
        let mut c = ExplorationStats::new("IPB");
        c.final_bound = Some(3);
        c.new_schedules_at_final_bound = 7;
        a.merge(&c);
        assert_eq!(a.final_bound, Some(3));
        assert_eq!(a.new_schedules_at_final_bound, 12);
    }

    #[test]
    fn equality_ignores_wall_clock_fields() {
        let mut a = ExplorationStats::new("IDB");
        a.record(&outcome(true, false));
        let mut b = a.clone();
        b.explore_nanos = 123_456_789;
        b.race_nanos = 42;
        assert_eq!(a, b, "timing must not participate in differential equality");
        // Deadlines and panics are environmental outcomes, not search work:
        // they too are excluded, so a deadline-free differential pair stays
        // comparable even if one side carried a (never-firing) budget.
        b.deadline_exceeded = true;
        b.engine_panic = true;
        assert_eq!(a, b, "fault flags must not participate in equality");
        b.schedules += 1;
        assert_ne!(a, b, "non-timing fields still compare");

        // merge() ORs the fault flags like the other outcome flags.
        let mut f = a.clone();
        let mut g = a.clone();
        g.deadline_exceeded = true;
        f.merge(&g);
        assert!(f.deadline_exceeded);
        assert!(!f.engine_panic);

        // merge() keeps the slowest shard's wall clock.
        let mut m = a.clone();
        m.explore_nanos = 10;
        let mut n = a.clone();
        n.explore_nanos = 30;
        n.race_nanos = 7;
        m.merge(&n);
        assert_eq!(m.explore_nanos, 30);
        assert_eq!(m.race_nanos, 7);
    }

    #[test]
    fn empty_stats_have_sane_defaults() {
        let s = ExplorationStats::new("x");
        assert_eq!(s.schedules, 0);
        assert_eq!(s.buggy_fraction(), 0.0);
        assert!(!s.found_bug());
    }
}

//! Exploration statistics: the per-benchmark, per-technique numbers reported
//! in Table 3 of the paper.

use sct_runtime::{Bug, ExecutionOutcome};

/// Statistics gathered while exploring one program with one technique.
#[derive(Debug, Clone)]
pub struct ExplorationStats {
    /// Name of the technique ("IPB", "IDB", "DFS", "Rand", ...).
    pub technique: String,
    /// Number of terminal schedules explored.
    pub schedules: u64,
    /// Number of schedules explored up to and including the first buggy one.
    pub schedules_to_first_bug: Option<u64>,
    /// Number of buggy schedules among those explored.
    pub buggy_schedules: u64,
    /// Number of schedules whose cost equals the final bound ("# new
    /// schedules" in Table 3). Only meaningful for iterative bounding.
    pub new_schedules_at_final_bound: u64,
    /// The bound in effect when exploration stopped (for bounded techniques).
    pub final_bound: Option<u32>,
    /// The smallest bound at which a bug was found (for iterative bounding).
    pub bound_of_first_bug: Option<u32>,
    /// The first bug found.
    pub first_bug: Option<Bug>,
    /// Maximum number of simultaneously enabled threads observed.
    pub max_enabled_threads: usize,
    /// Maximum number of scheduling points (with >1 enabled thread) observed
    /// in a single execution.
    pub max_scheduling_points: usize,
    /// Maximum number of threads created in a single execution.
    pub total_threads: usize,
    /// Number of executions cut short by the step limit.
    pub diverged_schedules: u64,
    /// Whether the technique exhausted its entire search space.
    pub complete: bool,
    /// Whether exploration stopped because the schedule limit was reached.
    pub hit_schedule_limit: bool,
}

impl ExplorationStats {
    /// Fresh statistics for a technique.
    pub fn new(technique: impl Into<String>) -> Self {
        ExplorationStats {
            technique: technique.into(),
            schedules: 0,
            schedules_to_first_bug: None,
            buggy_schedules: 0,
            new_schedules_at_final_bound: 0,
            final_bound: None,
            bound_of_first_bug: None,
            first_bug: None,
            max_enabled_threads: 0,
            max_scheduling_points: 0,
            total_threads: 0,
            diverged_schedules: 0,
            complete: false,
            hit_schedule_limit: false,
        }
    }

    /// Record the outcome of one terminal schedule.
    pub fn record(&mut self, outcome: &ExecutionOutcome) {
        self.schedules += 1;
        self.max_enabled_threads = self.max_enabled_threads.max(outcome.max_enabled);
        self.max_scheduling_points = self.max_scheduling_points.max(outcome.scheduling_points);
        self.total_threads = self.total_threads.max(outcome.threads_created);
        if outcome.diverged {
            self.diverged_schedules += 1;
        }
        if outcome.is_buggy() {
            self.buggy_schedules += 1;
            if self.schedules_to_first_bug.is_none() {
                self.schedules_to_first_bug = Some(self.schedules);
                self.first_bug = outcome.bug.clone();
            }
        }
    }

    /// Whether at least one bug was found.
    pub fn found_bug(&self) -> bool {
        self.schedules_to_first_bug.is_some()
    }

    /// Fraction of explored schedules that were buggy (0.0 when none were
    /// explored); the "% buggy" column of Table 3.
    pub fn buggy_fraction(&self) -> f64 {
        if self.schedules == 0 {
            0.0
        } else {
            self.buggy_schedules as f64 / self.schedules as f64
        }
    }

    /// Worst-case number of schedules that might be needed to find the bug
    /// with an adversarial search order within the bound: the number of
    /// non-buggy schedules explored (plus one for the bug itself). This is
    /// the quantity plotted in Figure 4 of the paper.
    pub fn worst_case_schedules_to_bug(&self) -> Option<u64> {
        if self.found_bug() {
            Some(self.schedules - self.buggy_schedules + 1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_runtime::{Bug, StepRecord, ThreadId};

    fn outcome(buggy: bool, diverged: bool) -> ExecutionOutcome {
        ExecutionOutcome {
            bug: if buggy {
                Some(Bug::Deadlock { blocked: vec![] })
            } else if diverged {
                Some(Bug::StepLimitExceeded { limit: 1 })
            } else {
                None
            },
            steps: vec![StepRecord {
                thread: ThreadId(0),
                enabled: vec![ThreadId(0)],
                last_enabled: false,
                last: None,
                num_threads: 1,
            }],
            threads_created: 3,
            max_enabled: 2,
            scheduling_points: 5,
            diverged,
            fingerprint: 0,
        }
    }

    #[test]
    fn records_first_bug_position_and_counts() {
        let mut s = ExplorationStats::new("test");
        s.record(&outcome(false, false));
        s.record(&outcome(false, false));
        s.record(&outcome(true, false));
        s.record(&outcome(true, false));
        assert_eq!(s.schedules, 4);
        assert_eq!(s.buggy_schedules, 2);
        assert_eq!(s.schedules_to_first_bug, Some(3));
        assert!(s.found_bug());
        assert!((s.buggy_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(s.worst_case_schedules_to_bug(), Some(3));
        assert_eq!(s.max_enabled_threads, 2);
        assert_eq!(s.max_scheduling_points, 5);
        assert_eq!(s.total_threads, 3);
    }

    #[test]
    fn divergence_is_counted_but_not_a_bug() {
        let mut s = ExplorationStats::new("test");
        s.record(&outcome(false, true));
        assert_eq!(s.diverged_schedules, 1);
        assert!(!s.found_bug());
        assert_eq!(s.worst_case_schedules_to_bug(), None);
        assert_eq!(s.buggy_fraction(), 0.0);
    }

    #[test]
    fn empty_stats_have_sane_defaults() {
        let s = ExplorationStats::new("x");
        assert_eq!(s.schedules, 0);
        assert_eq!(s.buggy_fraction(), 0.0);
        assert!(!s.found_bug());
    }
}

//! The naive random scheduler ("Rand" in the study): at every scheduling
//! point one enabled thread is chosen uniformly at random. Nothing is learned
//! between executions, so the same schedule may be explored several times and
//! the search never "completes" — exactly the behaviour §3 of the paper
//! describes for Maple's random mode.

use crate::scheduler::Scheduler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sct_runtime::{ExecutionOutcome, SchedulingPoint, ThreadId};

/// Uniform random scheduling with a fixed number of runs.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: SmallRng,
    runs: u64,
    started: u64,
}

impl RandomScheduler {
    /// A random scheduler that performs `runs` executions using `seed`.
    pub fn new(runs: u64, seed: u64) -> Self {
        RandomScheduler {
            rng: SmallRng::seed_from_u64(seed),
            runs,
            started: 0,
        }
    }
}

impl Scheduler for RandomScheduler {
    fn begin_execution(&mut self) -> bool {
        if self.started >= self.runs {
            return false;
        }
        self.started += 1;
        true
    }

    fn choose(&mut self, point: &SchedulingPoint) -> ThreadId {
        let idx = self.rng.gen_range(0..point.enabled.len());
        point.enabled[idx]
    }

    fn end_execution(&mut self, _outcome: &ExecutionOutcome) {}

    fn name(&self) -> String {
        "Rand".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::{Loc, TemplateId};
    use sct_runtime::PendingOp;

    fn point(enabled: &[usize]) -> SchedulingPoint {
        SchedulingPoint {
            enabled: enabled.iter().map(|&i| ThreadId(i)).collect(),
            last: None,
            last_enabled: false,
            num_threads: enabled.len(),
            step_index: 0,
            pending: enabled
                .iter()
                .map(|&i| PendingOp {
                    thread: ThreadId(i),
                    loc: Loc {
                        template: TemplateId(0),
                        pc: 0,
                    },
                    addr: None,
                    is_write: false,
                })
                .collect(),
        }
    }

    #[test]
    fn respects_the_run_budget() {
        let mut s = RandomScheduler::new(3, 42);
        assert!(s.begin_execution());
        assert!(s.begin_execution());
        assert!(s.begin_execution());
        assert!(!s.begin_execution());
    }

    #[test]
    fn choices_are_always_enabled_and_eventually_cover_all_threads() {
        let mut s = RandomScheduler::new(1, 7);
        let p = point(&[1, 3, 5]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let t = s.choose(&p);
            assert!(p.is_enabled(t));
            seen.insert(t.index());
        }
        assert_eq!(seen.len(), 3, "uniform choice should hit every thread");
    }

    #[test]
    fn fixed_seed_reproduces_the_same_choices() {
        let p = point(&[0, 1, 2, 3]);
        let mut a = RandomScheduler::new(1, 99);
        let mut b = RandomScheduler::new(1, 99);
        let choices_a: Vec<_> = (0..50).map(|_| a.choose(&p)).collect();
        let choices_b: Vec<_> = (0..50).map(|_| b.choose(&p)).collect();
        assert_eq!(choices_a, choices_b);
        assert_eq!(a.name(), "Rand");
        assert!(!a.is_exhaustive());
    }
}

//! # sct-core
//!
//! Systematic concurrency testing (SCT) on top of the controlled runtime in
//! `sct-runtime`. This crate is the Rust reproduction of the techniques the
//! PPoPP'14 study "Concurrency Testing Using Schedule Bounding: an Empirical
//! Study" compares:
//!
//! * **DFS** — unbounded stateless depth-first search over schedules
//!   ([`dfs::BoundedDfs`] with [`bounds::NoBound`]);
//! * **IPB** — iterative preemption bounding ([`explore::iterative_bounding`]
//!   with [`bounds::PreemptionBound`]), the CHESS algorithm;
//! * **IDB** — iterative delay bounding ([`bounds::DelayBound`]), the
//!   delay-bounded scheduler of Emmi et al. instantiated with the
//!   non-preemptive round-robin deterministic scheduler;
//! * **Rand** — a naive random scheduler ([`random::RandomScheduler`]);
//! * **PCT** — the probabilistic concurrency testing scheduler
//!   ([`pct::PctScheduler`]), discussed as related work in the paper and used
//!   here for ablation benchmarks;
//! * **MapleLike** — a simplified re-implementation of Maple's default
//!   idiom-driven algorithm ([`maple::MapleLikeScheduler`]).
//!
//! The [`explore`] module runs a scheduler against a program with a terminal
//! schedule limit (10,000 in the study) and gathers the statistics reported
//! in Table 3 of the paper ([`stats::ExplorationStats`]).
//!
//! ```
//! use sct_core::prelude::*;
//! use sct_ir::prelude::*;
//!
//! // Figure 1 of the paper: the assertion can only fail with ≥1 preemption.
//! let mut p = ProgramBuilder::new("figure1");
//! let x = p.global("x", 0);
//! let y = p.global("y", 0);
//! let t1 = p.thread("t1", |b| { b.store(x, 1); b.store(y, 1); });
//! let t3 = p.thread("t3", |b| {
//!     let rx = b.local("rx");
//!     let ry = b.local("ry");
//!     b.load(x, rx);
//!     b.load(y, ry);
//!     b.assert_cond(eq(rx, ry), "x == y");
//! });
//! p.main(|b| { b.spawn(t1); b.spawn(t3); });
//! let program = p.build().unwrap();
//!
//! let config = sct_runtime::ExecConfig::all_visible();
//! let limits = ExploreLimits::with_schedule_limit(1_000);
//! let zero = explore::bounded_dfs(&program, &config, BoundKind::Preemption, 0, &limits);
//! assert!(!zero.found_bug());          // needs a preemption
//! let one = explore::bounded_dfs(&program, &config, BoundKind::Preemption, 1, &limits);
//! assert!(one.found_bug());            // found with preemption bound 1
//! ```

pub mod bounds;
pub mod cache;
pub mod corpus;
pub mod dfs;
pub mod explore;
pub mod fault;
pub mod maple;
pub mod parallel;
pub mod pct;
pub mod random;
pub mod scheduler;
pub mod stats;
pub mod steal;
pub mod telemetry;

pub use bounds::{BoundKind, BoundPolicy, DelayBound, NoBound, PreemptionBound};
pub use cache::{
    CacheHandle, CacheReplay, ScheduleCache, ScheduleRun, SharedCache, TerminalDigest,
};
pub use corpus::{BugCorpus, BugRecord, Corpus, CorpusError};
pub use dfs::{BoundedDfs, SubtreeSeed};
pub use explore::{explore_with, iterative_bounding, ExploreLimits, Technique};
pub use fault::{FaultGuard, FaultKind};
pub use maple::MapleLikeScheduler;
pub use parallel::{
    default_workers, explore_sharded, explore_sharded_serial, map_indexed,
    parallel_iterative_bounding, run_technique_parallel,
};
pub use pct::PctScheduler;
pub use random::RandomScheduler;
pub use scheduler::Scheduler;
pub use stats::ExplorationStats;
pub use steal::{explore_bounded_stealing, explore_bounded_stealing_digests};
pub use telemetry::{Event, Recorder, Telemetry};

/// Convenient glob import.
pub mod prelude {
    pub use crate::bounds::{BoundKind, BoundPolicy, DelayBound, NoBound, PreemptionBound};
    pub use crate::cache::{
        self, CacheHandle, CacheReplay, ScheduleCache, ScheduleRun, SharedCache, TerminalDigest,
    };
    pub use crate::corpus::{self, BugCorpus, BugRecord, Corpus, CorpusError};
    pub use crate::dfs::{BoundedDfs, SubtreeSeed};
    pub use crate::explore::{self, explore_with, iterative_bounding, ExploreLimits, Technique};
    pub use crate::fault::{self, FaultGuard, FaultKind};
    pub use crate::maple::MapleLikeScheduler;
    pub use crate::parallel::{
        self, default_workers, explore_sharded, explore_sharded_serial, map_indexed,
        parallel_iterative_bounding, run_technique_parallel,
    };
    pub use crate::pct::PctScheduler;
    pub use crate::random::RandomScheduler;
    pub use crate::scheduler::Scheduler;
    pub use crate::stats::ExplorationStats;
    pub use crate::steal::{self, explore_bounded_stealing, explore_bounded_stealing_digests};
    pub use crate::telemetry::{self, Event, Recorder, Telemetry};
}

//! Work-stealing exploration *within* one bound level.
//!
//! [`crate::parallel`] parallelises iterative bounding across bound levels,
//! but the paper's hard benchmarks put nearly all of their schedules into a
//! single level, which PR 1's driver still walks on one core. This module
//! splits the frontier of one bounded DFS itself: a shared queue of
//! unexplored decision-prefix subtrees that workers claim, explore
//! depth-first with their own reusable [`Execution`], and re-split whenever
//! another worker goes hungry — while keeping every reported statistic
//! **bit-identical to the serial search at any worker count**.
//!
//! # The donation protocol
//!
//! Between two executions, a victim's [`BoundedDfs`] stack is exactly the
//! path of the schedule it just completed, and every unexplored alternative
//! hangs off some node of that path. [`BoundedDfs::donate_oldest_subtree`]
//! strips *all* remaining alternatives from the shallowest such node and
//! ships them — with the decision prefix, bound costs, and entry sleep set —
//! as a [`SubtreeSeed`]. A thief seeds a fresh scheduler with it
//! ([`BoundedDfs::seed_subtree`]) and explores exactly the subtrees the
//! serial search would have explored there, in the same order, because the
//! backtracking search is deterministic given the node's entry state. The
//! thief's own seeded node still holds the rest of the bundle, so it
//! re-splits under the same rule when workers go hungry again.
//!
//! # Why the hand-off is sound under POR and bounding
//!
//! The entry sleep set of sibling `i + 1` is the node's sleep set after
//! sibling `i`'s subtree has been explored. Under the wake-on-bound-conflict
//! rule a thread only goes to sleep if the bound excluded nothing inside its
//! subtree — a fact that is unknown until the subtree has been fully
//! explored, so under a *pruning* bound the siblings carry a serial
//! dependency and there is nothing deterministic to donate. When the policy
//! cannot prune ([`crate::bounds::BoundPolicy::can_prune`] is `false`, i.e.
//! plain DFS), the previously chosen thread *always* goes to sleep, so every
//! sibling's entry sleep set is known a priori and donation is exact; with
//! sleep sets off the entry state is just the prefix. Hence the gate used
//! throughout: steal only when POR is off or the policy cannot prune;
//! otherwise fall back to the serial driver (bit-identity trivially holds).
//! The schedule cache needs no such gate — workers share one
//! [`ScheduleCache`] purely as a memo of the deterministic program, and the
//! reported cache counters are reconstructed serially by the caller's
//! [`crate::cache::CacheReplay`] fold, exactly as in the cross-level driver.
//!
//! # Deterministic folding
//!
//! Each task appends to an ordered stream of entries: per-execution digests,
//! plus `Spawn` markers recording *where in its own stream* a donated bundle
//! belongs. A donation at stack index `d` belongs right after the last
//! schedule of the subtree the victim was inside at node `d` — i.e. the
//! marker is emitted as soon as the victim's backtracking depth retreats to
//! `d` or above. The fold (on the calling thread) walks the root task's
//! stream and recursively expands markers, which recovers the serial DFS
//! visit order of the entire level; per-item counter deltas (sleep-set
//! insertions split into their begin-execution phase, reduction prunes,
//! bound prunes) let it reproduce the serial driver's truncation, probe and
//! drain behaviour to the counter, including mid-stream budget cut-offs.

use crate::bounds::BoundKind;
use crate::cache::{
    self, CacheHandle, ScheduleCache, ScheduleRun, SharedCache, TerminalDigest, VisitTrace,
};
use crate::dfs::{BoundedDfs, SubtreeSeed};
use crate::explore::{self, ExploreLimits};
use crate::scheduler::Scheduler;
use crate::stats::ExplorationStats;
use crate::telemetry::{Event, Telemetry};
use sct_ir::Program;
use sct_runtime::{ExecConfig, Execution};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::thread;
use std::time::Instant;

/// One completed execution, in its producing task's local order.
struct Item {
    digest: TerminalDigest,
    /// Sleep-blocked completion (uncounted by every driver).
    redundant: bool,
    /// Executed for real (`false`: served from the shared cache).
    executed: bool,
    /// Bound cost of the schedule under the level's bound kind.
    cost: u32,
    /// Sleep-set insertions performed by the `begin_execution` that installed
    /// this execution; the fold adds the boundary insertions of any subtree
    /// hand-offs the serial order crosses to reach it. Kept separate from the
    /// run-phase counters because the serial probe-at-the-limit *prepares*
    /// one execution (performing these insertions) without running it.
    begin_slept: u64,
    /// Reduction prunes recorded while the execution ran.
    ran_pruned_by_sleep: u64,
    /// Bound exclusions recorded while the execution ran.
    ran_bound_prunes: u64,
    /// Visit footprint for the caller's cache replay (cached levels only).
    trace: Option<VisitTrace>,
}

/// One entry of a task's ordered stream.
enum Entry {
    /// A completed execution (`None` once the fold has consumed it).
    Item(Option<Item>),
    /// The stream of the given task continues the serial order here.
    Spawn(usize),
}

struct TaskState {
    entries: Vec<Entry>,
    done: bool,
    /// Parked until a worker claims the task; `None` for the root task.
    seed: Option<SubtreeSeed>,
    /// Boundary sleep insertions charged when the fold enters this stream.
    entry_slept: u64,
    /// Items emitted but not yet taken by the fold — the producer parks when
    /// this exceeds [`PRODUCER_WINDOW`] so a starved fold (or a truncating
    /// schedule limit) cannot let workers run arbitrarily far ahead.
    unconsumed: usize,
}

struct EngineState {
    tasks: Vec<TaskState>,
    pending: VecDeque<usize>,
    /// Tasks not yet finished (queued or claimed).
    unfinished: usize,
}

/// Shared state of one stealing engine run.
struct Engine {
    state: Mutex<EngineState>,
    /// Workers wait here for pending tasks.
    work_cv: Condvar,
    /// The fold waits here for new entries.
    item_cv: Condvar,
    /// Raised when no further results can matter: by the fold once the
    /// serial stopping rule fired, or by a worker observing the caller's
    /// cross-level stop flag.
    stop: AtomicBool,
    /// Workers currently waiting for a task — the hunger signal that makes
    /// busy workers donate a subtree.
    idle: AtomicUsize,
    /// Mirror of `pending.len()` so the donation check stays lock-free.
    pending_len: AtomicUsize,
    /// Producers park here when their task's stream is a full
    /// [`PRODUCER_WINDOW`] ahead of the fold.
    space_cv: Condvar,
}

impl Engine {
    fn new() -> Self {
        Engine {
            state: Mutex::new(EngineState {
                tasks: vec![TaskState {
                    entries: Vec::new(),
                    done: false,
                    seed: None,
                    entry_slept: 0,
                    unconsumed: 0,
                }],
                pending: VecDeque::from([0]),
                unfinished: 1,
            }),
            work_cv: Condvar::new(),
            item_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            idle: AtomicUsize::new(0),
            pending_len: AtomicUsize::new(1),
            space_cv: Condvar::new(),
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Raise the stop flag and wake everyone so they can observe it.
    fn shut_down(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let _guard = self.state.lock().expect("engine state poisoned");
        self.work_cv.notify_all();
        self.item_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Register a donated bundle as a new pending task and return its id.
    fn spawn_task(&self, seed: SubtreeSeed) -> usize {
        let entry_slept = seed.entry_slept;
        let mut st = self.state.lock().expect("engine state poisoned");
        let id = st.tasks.len();
        st.tasks.push(TaskState {
            entries: Vec::new(),
            done: false,
            seed: Some(seed),
            entry_slept,
            unconsumed: 0,
        });
        st.pending.push_back(id);
        st.unfinished += 1;
        self.pending_len.store(st.pending.len(), Ordering::Relaxed);
        self.work_cv.notify_one();
        id
    }

    /// Append entries to a task's stream (and optionally finish it).
    fn emit(&self, task: usize, entries: Vec<Entry>, finished: bool) {
        let items = entries
            .iter()
            .filter(|e| matches!(e, Entry::Item(_)))
            .count();
        let mut st = self.state.lock().expect("engine state poisoned");
        st.tasks[task].entries.extend(entries);
        st.tasks[task].unconsumed += items;
        if finished {
            st.tasks[task].done = true;
            st.unfinished -= 1;
            if st.unfinished == 0 {
                self.work_cv.notify_all();
            }
        }
        self.item_cv.notify_all();
    }

    /// Park until the fold has taken enough of `task`'s stream to leave its
    /// backlog under [`PRODUCER_WINDOW`], returning whether parking
    /// happened — the caller re-checks cancellation and worker hunger
    /// between parks. Deadlock-free by construction: the stream the fold is
    /// currently waiting on has been consumed up to its end, so its
    /// producer never parks.
    fn wait_for_space(&self, task: usize) -> bool {
        let st = self.state.lock().expect("engine state poisoned");
        if self.stopped() || st.tasks[task].unconsumed < PRODUCER_WINDOW {
            return false;
        }
        drop(self.space_cv.wait(st).expect("engine state poisoned"));
        true
    }
}

/// Per-run configuration shared by every worker.
struct WorkerCtx<'a> {
    engine: &'a Engine,
    program: &'a Program,
    config: &'a ExecConfig,
    kind: BoundKind,
    bound: u32,
    por: bool,
    want_trace: bool,
    cache: Option<&'a RwLock<ScheduleCache>>,
    /// The caller's cross-level cancellation flag, promoted to
    /// [`Engine::stop`] when observed.
    external_stop: Option<&'a AtomicBool>,
    /// Telemetry handle for donation/theft/idle events. Events are
    /// observations only — workers never read telemetry state, so the folded
    /// results cannot depend on it.
    telemetry: &'a Telemetry,
}

impl WorkerCtx<'_> {
    fn should_stop(&self) -> bool {
        if self.engine.stopped() {
            return true;
        }
        if self
            .external_stop
            .is_some_and(|s| s.load(Ordering::Relaxed))
        {
            // Promote, so idle workers and a blocked fold wake up too.
            self.engine.shut_down();
            return true;
        }
        false
    }
}

/// How many entries a worker accumulates before handing them to the engine.
/// Bounds the fold's latency behind any one worker to a few dozen executions
/// while amortising the lock/wake cost across them.
const EMIT_BATCH: usize = 32;

/// How many emitted-but-unfolded items one task's stream may hold before its
/// producer parks. Without the cap, workers outrunning the fold — a starved
/// consumer thread, or a schedule limit about to truncate the search — would
/// explore (and then discard) arbitrarily much of the tree past the point
/// the serial order has reached.
const PRODUCER_WINDOW: usize = 4 * EMIT_BATCH;

/// Worker loop: claim tasks, explore them execution by execution, donate
/// sibling bundles when other workers starve, and stream entries back.
///
/// `who` is the worker's index within its pool, used only to label telemetry
/// events; it never influences claiming or exploration.
fn worker(ctx: &WorkerCtx<'_>, who: u64) {
    let engine = ctx.engine;
    let mut exec = Execution::new_shared(ctx.program, ctx.config);
    'tasks: loop {
        let (task_id, seed) = {
            let mut st = engine.state.lock().expect("engine state poisoned");
            loop {
                if engine.stopped() || st.unfinished == 0 {
                    return;
                }
                if let Some(id) = st.pending.pop_front() {
                    engine
                        .pending_len
                        .store(st.pending.len(), Ordering::Relaxed);
                    let seed = st.tasks[id].seed.take();
                    break (id, seed);
                }
                engine.idle.fetch_add(1, Ordering::Relaxed);
                // Recorders never touch the engine, so emitting while holding
                // its lock cannot deadlock.
                ctx.telemetry.emit(|| Event::WorkerIdle {
                    program: ctx.program.name.clone(),
                    worker: who,
                    idle: true,
                });
                st = engine.work_cv.wait(st).expect("engine state poisoned");
                engine.idle.fetch_sub(1, Ordering::Relaxed);
                ctx.telemetry.emit(|| Event::WorkerIdle {
                    program: ctx.program.name.clone(),
                    worker: who,
                    idle: false,
                });
            }
        };
        if seed.is_some() {
            // A present seed means this task was donated by another worker and
            // is now being claimed — a completed theft.
            ctx.telemetry.emit(|| Event::StealTheft {
                program: ctx.program.name.clone(),
                worker: who,
                task: task_id as u64,
            });
        }
        let mut sched = BoundedDfs::new(ctx.kind.policy(), ctx.bound).with_sleep_sets(ctx.por);
        if let Some(seed) = seed {
            sched.seed_subtree(seed);
        }
        // Donations this task made, as (stack index, task id). Indices are
        // strictly increasing: donating empties every alternative list at or
        // below its index, so the next donation is always deeper.
        let mut donated: Vec<(usize, usize)> = Vec::new();
        let (mut slept, mut pruned_by_sleep) = (0u64, 0u64);
        let mut bound_prunes = 0u64;
        // Entries accumulated locally and emitted in batches: taking the
        // engine lock and waking the fold once per execution costs more than
        // many of the executions themselves. Ordering within the task's
        // stream is unchanged; only the hand-off granularity is.
        let mut batch: Vec<Entry> = Vec::new();
        loop {
            // Between executions: observe cancellation, feed hungry workers,
            // and park while this task's stream is too far ahead of the fold
            // (re-checking the first two between parks).
            loop {
                if ctx.should_stop() {
                    // Results can no longer matter; finish the task so the
                    // engine's bookkeeping drains cleanly.
                    engine.emit(task_id, std::mem::take(&mut batch), true);
                    return;
                }
                if engine.idle.load(Ordering::Relaxed) > 0
                    && engine.pending_len.load(Ordering::Relaxed) == 0
                {
                    if let Some((seed, depth)) = sched.donate_oldest_subtree() {
                        let id = engine.spawn_task(seed);
                        ctx.telemetry.emit(|| Event::StealDonate {
                            program: ctx.program.name.clone(),
                            worker: who,
                            task: id as u64,
                            depth: depth as u64,
                        });
                        donated.push((depth, id));
                    }
                }
                if !engine.wait_for_space(task_id) {
                    break;
                }
            }
            let more = sched.begin_execution();
            // Emit the hand-off markers the serial order has reached: the
            // search retreated past (or never returns to) the donated node.
            let cut = if more { sched.depth() } else { 0 };
            while donated.last().is_some_and(|&(depth, _)| cut <= depth) {
                let (_, id) = donated.pop().expect("marker stack emptied");
                batch.push(Entry::Spawn(id));
            }
            if !more {
                engine.emit(task_id, std::mem::take(&mut batch), true);
                continue 'tasks;
            }
            let handle = match ctx.cache {
                Some(lock) => CacheHandle::Shared(lock),
                None => CacheHandle::Off,
            };
            let (run, trace) =
                cache::run_begun_schedule(&mut exec, &mut sched, handle, ctx.want_trace);
            let (slept_now, pruned_by_sleep_now) = sched.sleep_counters();
            let bound_prunes_now = sched.bound_prune_count();
            batch.push(Entry::Item(Some(Item {
                cost: run.cost(ctx.kind),
                executed: matches!(run, ScheduleRun::Executed(_)),
                digest: run.digest(),
                redundant: sched.current_execution_redundant(),
                begin_slept: slept_now - slept,
                ran_pruned_by_sleep: pruned_by_sleep_now - pruned_by_sleep,
                ran_bound_prunes: bound_prunes_now - bound_prunes,
                trace,
            })));
            (slept, pruned_by_sleep, bound_prunes) =
                (slept_now, pruned_by_sleep_now, bound_prunes_now);
            if batch.len() >= EMIT_BATCH {
                engine.emit(task_id, std::mem::take(&mut batch), false);
            }
        }
    }
}

/// Serial-order cursor over the nested task streams.
struct Fold<'a> {
    engine: &'a Engine,
    /// `(task id, next entry index)`, innermost stream last.
    cursors: Vec<(usize, usize)>,
    /// Boundary sleep insertions of expanded markers, awaiting the next item.
    carry_slept: u64,
    /// Items already drained from the streams, awaiting consumption. Taking
    /// the engine lock once per item would contend with the producers; the
    /// fold instead drains every consecutively available item per
    /// acquisition.
    ready: VecDeque<Item>,
}

impl<'a> Fold<'a> {
    fn new(engine: &'a Engine) -> Self {
        Fold {
            engine,
            cursors: vec![(0, 0)],
            carry_slept: 0,
            ready: VecDeque::new(),
        }
    }

    /// The next item in serial DFS order, blocking until it has been
    /// produced. `None` when the whole level is exhausted — or when the
    /// engine was stopped underneath the fold (cross-level cancellation);
    /// callers distinguish the two via [`Engine::stopped`].
    fn next(&mut self) -> Option<Item> {
        if self.engine.stopped() {
            return None;
        }
        if let Some(item) = self.ready.pop_front() {
            return Some(item);
        }
        let mut st = self.engine.state.lock().expect("engine state poisoned");
        // Wake parked producers once per drain, not once per taken item.
        let mut freed = false;
        loop {
            if self.engine.stopped() {
                return None;
            }
            let Some(&(task, idx)) = self.cursors.last() else {
                // Exhausted: drain the buffer before reporting the end.
                return self.ready.pop_front();
            };
            if idx < st.tasks[task].entries.len() {
                self.cursors.last_mut().expect("cursor stack emptied").1 += 1;
                match &mut st.tasks[task].entries[idx] {
                    Entry::Item(slot) => {
                        let mut item = slot.take().expect("stream entry folded twice");
                        item.begin_slept += std::mem::take(&mut self.carry_slept);
                        self.ready.push_back(item);
                        st.tasks[task].unconsumed -= 1;
                        freed = true;
                    }
                    Entry::Spawn(id) => {
                        let id = *id;
                        self.carry_slept += st.tasks[id].entry_slept;
                        self.cursors.push((id, 0));
                    }
                }
            } else if st.tasks[task].done {
                self.cursors.pop();
            } else if let Some(item) = self.ready.pop_front() {
                // Nothing more is available right now; serve what was
                // drained before sleeping on the producers.
                if freed {
                    self.engine.space_cv.notify_all();
                }
                return Some(item);
            } else {
                if std::mem::take(&mut freed) {
                    self.engine.space_cv.notify_all();
                }
                st = self.engine.item_cv.wait(st).expect("engine state poisoned");
            }
        }
    }
}

/// Whether the stealing gate allows parallel exploration for this
/// configuration (see the module docs for the argument).
fn stealing_sound(kind: BoundKind, por: bool) -> bool {
    !por || !kind.policy().can_prune()
}

/// Bounded DFS through the work-stealing engine, with the exact semantics of
/// [`explore::explore_with`] over a [`BoundedDfs`] — including the
/// completion probe and redundant-run drain at the schedule limit. Falls
/// back to the serial driver when `steal_workers <= 1` or when the
/// POR/bound combination makes donation unsound (see the module docs).
pub fn explore_bounded_stealing(
    program: &Program,
    config: &ExecConfig,
    kind: BoundKind,
    bound: u32,
    limits: &ExploreLimits,
) -> ExplorationStats {
    explore_bounded_stealing_digests(program, config, kind, bound, limits).0
}

/// [`explore_bounded_stealing`], also returning the terminal digests of the
/// counted schedules in serial DFS order. The differential tests compare
/// these (bug sets and terminal fingerprints) against a serial drive of the
/// same search, on top of the statistics equality.
pub fn explore_bounded_stealing_digests(
    program: &Program,
    config: &ExecConfig,
    kind: BoundKind,
    bound: u32,
    limits: &ExploreLimits,
) -> (ExplorationStats, Vec<TerminalDigest>) {
    let workers = limits.steal_workers.max(1);
    if workers <= 1 || !stealing_sound(kind, limits.por) {
        let mut scheduler = BoundedDfs::new(kind.policy(), bound).with_sleep_sets(limits.por);
        let mut digests = Vec::new();
        let stats = if let Some(corpus) = limits.shared_cache.clone() {
            explore::explore_dfs_corpus(
                program,
                config,
                &mut scheduler,
                limits,
                &corpus,
                Some(&mut digests),
            )
        } else {
            explore_serial_digests(program, config, &mut scheduler, limits, &mut digests)
        };
        return (stats, digests);
    }
    let started = Instant::now();
    let name = BoundedDfs::new(kind.policy(), bound)
        .with_sleep_sets(limits.por)
        .name();
    let mut stats = ExplorationStats::new(name);
    let mut digests = Vec::new();
    // Campaign mode: workers complete schedules through the shared corpus
    // trie, and the fold replays the visit stream through a mirror seeded
    // from the load-time baseline, so executions/hits/bytes match the
    // serial corpus driver bit for bit (see `explore::explore_dfs_corpus`).
    let corpus = limits.shared_cache.clone();
    let mut mirror = corpus.as_ref().map(|c| c.mirror());
    let engine = Engine::new();
    let ctx = WorkerCtx {
        engine: &engine,
        program,
        config,
        kind,
        bound,
        por: limits.por,
        want_trace: corpus.is_some(),
        cache: corpus.as_deref().map(SharedCache::live),
        external_stop: None,
        telemetry: &limits.telemetry,
    };
    thread::scope(|scope| {
        let ctx = &ctx;
        for who in 0..workers {
            scope.spawn(move || worker(ctx, who as u64));
        }
        let mut fold = Fold::new(&engine);
        // Serial-order execution accounting: without a corpus every folded
        // item was executed for real; with one, the mirror decides (a visit
        // the baseline-plus-own-stream cache covers is a hit, not a run).
        let mut charge = |stats: &mut ExplorationStats, item: &Item| match mirror.as_mut() {
            Some(m) => {
                let trace = item.trace.as_ref().expect("corpus mode requests traces");
                if !m.apply(&trace.schedule, &trace.enabled_counts) {
                    stats.executions += 1;
                }
            }
            None => stats.executions += 1,
        };
        let deadline = explore::deadline_from(started, limits);
        let mut complete = false;
        loop {
            if stats.schedules >= limits.schedule_limit {
                break;
            }
            if explore::deadline_fired(deadline) {
                // Cooperative wall-clock stop, checked once per folded
                // schedule like the serial driver checks per executed one.
                // The shut-down below cancels the workers' in-flight tail.
                stats.deadline_exceeded = true;
                break;
            }
            match fold.next() {
                None => {
                    complete = true;
                    break;
                }
                Some(item) => {
                    charge(&mut stats, &item);
                    stats.slept += item.begin_slept;
                    stats.pruned_by_sleep += item.ran_pruned_by_sleep;
                    if !item.redundant {
                        let prev = stats.schedules_to_first_bug;
                        item.digest.record_into(&mut stats);
                        explore::note_first_bug(prev, &stats, &limits.telemetry, &program.name);
                        digests.push(item.digest);
                    }
                    // The live mirror is mutably captured by `charge`, so the
                    // beacon reports hits as 0; the technique-level summary
                    // carries the real figure.
                    limits.telemetry.progress(|| Event::Progress {
                        program: program.name.clone(),
                        technique: stats.technique.clone(),
                        schedules: stats.schedules,
                        executions: stats.executions,
                        cache_hits: 0,
                    });
                }
            }
        }
        if !complete && !stats.deadline_exceeded && stats.schedules >= limits.schedule_limit {
            // The serial driver probes a scheduler that filled its budget:
            // one more `begin_execution`, plus — under POR — a drain of
            // trailing redundant completions (see `explore_with`). Replay
            // that over the stream: the probed-but-never-run execution
            // charges only its begin-phase sleep insertions.
            let mut drain_budget = limits.schedule_limit;
            loop {
                match fold.next() {
                    None => {
                        complete = true;
                        break;
                    }
                    Some(item) => {
                        if !limits.por || drain_budget == 0 {
                            // The serial driver only *prepares* this
                            // execution: charge its begin-phase sleep
                            // insertions, but neither the mirror nor the
                            // execution counter sees it.
                            stats.slept += item.begin_slept;
                            break;
                        }
                        drain_budget -= 1;
                        charge(&mut stats, &item);
                        stats.slept += item.begin_slept;
                        stats.pruned_by_sleep += item.ran_pruned_by_sleep;
                        if !item.redundant {
                            break;
                        }
                    }
                }
            }
        }
        stats.complete = complete;
        stats.hit_schedule_limit = stats.schedules >= limits.schedule_limit && !complete;
        engine.shut_down();
    });
    if let Some(m) = &mirror {
        stats.cache_hits = m.hits();
        stats.cache_bytes = m.bytes();
    }
    stats.explore_nanos = started.elapsed().as_nanos() as u64;
    (stats, digests)
}

/// The serial fallback of [`explore_bounded_stealing_digests`]: drive the
/// scheduler exactly like [`explore::explore_with`] while collecting the
/// counted digests.
fn explore_serial_digests(
    program: &Program,
    config: &ExecConfig,
    scheduler: &mut BoundedDfs,
    limits: &ExploreLimits,
    digests: &mut Vec<TerminalDigest>,
) -> ExplorationStats {
    struct Collect<'a, 'b> {
        inner: &'a mut BoundedDfs,
        digests: &'b mut Vec<TerminalDigest>,
        last_redundant: bool,
    }
    impl Scheduler for Collect<'_, '_> {
        fn begin_execution(&mut self) -> bool {
            self.inner.begin_execution()
        }
        fn choose(&mut self, point: &sct_runtime::SchedulingPoint) -> sct_runtime::ThreadId {
            self.inner.choose(point)
        }
        fn end_execution(&mut self, outcome: &sct_runtime::ExecutionOutcome) {
            self.inner.end_execution(outcome);
            self.last_redundant = self.inner.current_execution_redundant();
            if !self.last_redundant {
                self.digests.push(TerminalDigest::of(outcome));
            }
        }
        fn name(&self) -> String {
            self.inner.name()
        }
        fn is_exhaustive(&self) -> bool {
            self.inner.is_exhaustive()
        }
        fn can_exhaust(&self) -> bool {
            self.inner.can_exhaust()
        }
        fn sleep_counters(&self) -> (u64, u64) {
            self.inner.sleep_counters()
        }
        fn current_execution_redundant(&self) -> bool {
            self.inner.current_execution_redundant()
        }
    }
    let mut collect = Collect {
        inner: scheduler,
        digests,
        last_redundant: false,
    };
    let stats = explore::explore_with(program, config, &mut collect, limits);
    // The probe/drain at the limit may have run (and pushed) executions the
    // serial driver discards; the stealing driver never surfaces those, so
    // trim the collection back to the counted schedules.
    collect.digests.truncate(stats.schedules as usize);
    stats
}

/// One schedule of a stolen bound level, in serial visit order, with the
/// cumulative counter snapshots the cross-level fold stamps on counted
/// digests.
pub(crate) struct LevelItem {
    pub digest: TerminalDigest,
    /// Whether the level's iteration rules count this schedule
    /// (non-redundant, cost equal to the bound — or any cost at bound 0).
    pub counted: bool,
    /// Cumulative sleep-set counters as of this schedule, serial order.
    pub slept: u64,
    pub pruned_by_sleep: u64,
    /// Cumulative real-execution count as of this schedule. Only meaningful
    /// without caching (same caveat as the serial level driver: under a
    /// shared cache the fold recomputes executions from the visit traces).
    pub executions: u64,
    /// Visit footprint for the cache replay (cached levels only).
    pub trace: Option<VisitTrace>,
}

/// A bound level explored by the stealing engine: the serial-order prefix of
/// its schedule stream up to the budget cap, plus the completion facts the
/// cross-level fold consumes.
pub(crate) struct LevelRun {
    pub items: Vec<LevelItem>,
    /// Whether the level's search space was exhausted before the cap (and
    /// without cancellation) — the stream analogue of the serial driver
    /// learning completeness from one more `begin_execution`.
    pub complete: bool,
    /// Whether the bound excluded an alternative anywhere in the explored
    /// prefix.
    pub pruned: bool,
    /// Final counters, used by the fold only when the level applies in full.
    pub slept: u64,
    pub pruned_by_sleep: u64,
    pub executions: u64,
    /// Whether the caller's wall-clock deadline cut this level short (the
    /// explored prefix is still valid; the cross-level fold stops after it).
    pub deadline_exceeded: bool,
}

/// Explore one bound level with the work-stealing engine, producing exactly
/// the stream the serial per-level driver (`run_bound` in
/// [`crate::parallel`]) would have produced: same schedules, same serial
/// visit order, same cut-off at the budget cap, same completion facts.
/// Callers gate on [`ExploreLimits::steal_workers`] and POR (the engine is
/// only used for POR-off levels; see the module docs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_level_stealing(
    program: &Program,
    config: &ExecConfig,
    kind: BoundKind,
    bound: u32,
    limits: &ExploreLimits,
    stop: &AtomicBool,
    shared_cache: Option<&RwLock<ScheduleCache>>,
    deadline: Option<Instant>,
) -> LevelRun {
    debug_assert!(stealing_sound(kind, limits.por));
    let workers = limits.steal_workers.max(1);
    let cap = limits.schedule_limit;
    let engine = Engine::new();
    let ctx = WorkerCtx {
        engine: &engine,
        program,
        config,
        kind,
        bound,
        por: limits.por,
        want_trace: shared_cache.is_some(),
        cache: shared_cache,
        external_stop: Some(stop),
        telemetry: &limits.telemetry,
    };
    let mut items: Vec<LevelItem> = Vec::new();
    let (mut counted, mut executions) = (0u64, 0u64);
    let (mut slept, mut pruned_by_sleep) = (0u64, 0u64);
    let mut pruned = false;
    let mut complete = false;
    let mut deadline_exceeded = false;
    thread::scope(|scope| {
        let ctx = &ctx;
        for who in 0..workers {
            scope.spawn(move || worker(ctx, who as u64));
        }
        let mut fold = Fold::new(&engine);
        while counted < cap && !stop.load(Ordering::Relaxed) {
            if explore::deadline_fired(deadline) {
                deadline_exceeded = true;
                break;
            }
            match fold.next() {
                None => {
                    // Exhausted — unless the engine was stopped underneath
                    // the fold, in which case this level is cancelled and its
                    // result will be discarded anyway.
                    complete = !engine.stopped();
                    break;
                }
                Some(item) => {
                    slept += item.begin_slept;
                    pruned_by_sleep += item.ran_pruned_by_sleep;
                    if item.executed {
                        executions += 1;
                    }
                    if item.ran_bound_prunes > 0 {
                        pruned = true;
                    }
                    let is_counted = !item.redundant && (item.cost == bound || bound == 0);
                    if is_counted {
                        counted += 1;
                    }
                    items.push(LevelItem {
                        digest: item.digest,
                        counted: is_counted,
                        slept,
                        pruned_by_sleep,
                        executions,
                        trace: item.trace,
                    });
                }
            }
        }
        engine.shut_down();
    });
    LevelRun {
        items,
        complete,
        pruned,
        slept,
        pruned_by_sleep,
        executions,
        deadline_exceeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::prelude::*;

    fn figure1() -> Program {
        let mut p = ProgramBuilder::new("figure1");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let z = p.global("z", 0);
        let t1 = p.thread("t1", |b| {
            b.store(x, 1);
            b.store(y, 1);
        });
        let t2 = p.thread("t2", |b| {
            b.store(z, 1);
        });
        let t3 = p.thread("t3", |b| {
            let rx = b.local("rx");
            let ry = b.local("ry");
            b.load(x, rx);
            b.load(y, ry);
            b.assert_cond(eq(rx, ry), "x == y");
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
            b.spawn(t3);
        });
        p.build().unwrap()
    }

    fn config() -> ExecConfig {
        ExecConfig::all_visible()
    }

    fn limits(schedule_limit: u64) -> ExploreLimits {
        ExploreLimits::with_schedule_limit(schedule_limit)
    }

    fn serial_reference(
        kind: BoundKind,
        bound: u32,
        limits: &ExploreLimits,
    ) -> (ExplorationStats, Vec<TerminalDigest>) {
        let serial = ExploreLimits {
            steal_workers: 1,
            ..limits.clone()
        };
        explore_bounded_stealing_digests(&figure1(), &config(), kind, bound, &serial)
    }

    #[test]
    fn stolen_unbounded_dfs_matches_serial_at_every_worker_count() {
        for por in [false, true] {
            for schedule_limit in [3u64, 10_000] {
                let lim = limits(schedule_limit).with_por(por);
                let (serial, serial_digests) = serial_reference(BoundKind::None, u32::MAX, &lim);
                for workers in [2usize, 3, 8] {
                    let stolen = ExploreLimits {
                        steal_workers: workers,
                        ..lim.clone()
                    };
                    let (stats, digests) = explore_bounded_stealing_digests(
                        &figure1(),
                        &config(),
                        BoundKind::None,
                        u32::MAX,
                        &stolen,
                    );
                    assert_eq!(
                        serial, stats,
                        "stats diverged at {workers} workers, por={por}, limit={schedule_limit}"
                    );
                    assert_eq!(
                        serial_digests, digests,
                        "digest stream diverged at {workers} workers, por={por}, limit={schedule_limit}"
                    );
                }
            }
        }
    }

    #[test]
    fn stolen_bounded_level_matches_serial_without_por() {
        for kind in [BoundKind::Preemption, BoundKind::Delay] {
            for bound in [0u32, 1, 2] {
                let lim = limits(10_000);
                let (serial, serial_digests) = serial_reference(kind, bound, &lim);
                let stolen = ExploreLimits {
                    steal_workers: 4,
                    ..lim.clone()
                };
                let (stats, digests) =
                    explore_bounded_stealing_digests(&figure1(), &config(), kind, bound, &stolen);
                assert_eq!(serial, stats, "{kind:?} bound {bound}");
                assert_eq!(serial_digests, digests, "{kind:?} bound {bound}");
            }
        }
    }

    #[test]
    fn por_with_a_pruning_bound_falls_back_to_the_serial_driver() {
        // The gate: donation under POR + finite bound is unsound, so the
        // stealing entry point must produce the serial result by running the
        // serial driver (bit-identity trivially holds).
        let lim = ExploreLimits {
            steal_workers: 8,
            ..limits(10_000).with_por(true)
        };
        let (serial, serial_digests) = serial_reference(BoundKind::Preemption, 1, &lim);
        let (stats, digests) =
            explore_bounded_stealing_digests(&figure1(), &config(), BoundKind::Preemption, 1, &lim);
        assert_eq!(serial, stats);
        assert_eq!(serial_digests, digests);
        assert!(stats.found_bug());
    }

    #[test]
    fn donated_seed_round_trips_through_a_fresh_scheduler() {
        // Drive a search a few executions in, donate, and check the thief's
        // schedule of the first donated alternative extends the prefix.
        let prog = figure1();
        let cfg = config();
        let mut exec = Execution::new_shared(&prog, &cfg);
        let mut victim = BoundedDfs::unbounded().with_sleep_sets(true);
        for _ in 0..3 {
            assert!(victim.begin_execution());
            exec.reset();
            let outcome = exec.run(&mut |p| victim.choose(p), &mut sct_runtime::NoopObserver);
            victim.end_execution(&outcome);
        }
        let (seed, depth) = victim
            .donate_oldest_subtree()
            .expect("three executions in, some node must still have alternatives");
        assert_eq!(seed.prefix.len(), depth);
        assert!(!seed.alternatives.is_empty());
        assert_eq!(seed.entry_slept, 1, "sleep sets are on");
        let first_alternative = *seed.alternatives.last().expect("non-empty");
        let mut thief = BoundedDfs::unbounded().with_sleep_sets(true);
        let prefix = seed.prefix.clone();
        thief.seed_subtree(seed);
        assert!(thief.begin_execution());
        exec.reset();
        let outcome = exec.run(&mut |p| thief.choose(p), &mut sct_runtime::NoopObserver);
        thief.end_execution(&outcome);
        let schedule = outcome.schedule();
        for (i, (t, _)) in prefix.iter().enumerate() {
            assert_eq!(schedule[i], *t, "prefix replay diverged at step {i}");
        }
        assert_eq!(schedule[prefix.len()], first_alternative.0);
        // A second donation from the victim must sit strictly deeper.
        if let Some((_, depth2)) = victim.donate_oldest_subtree() {
            assert!(depth2 > depth);
        }
    }
}

//! Work-sharded parallel exploration.
//!
//! The study's workload — up to 10,000 terminal schedules per technique per
//! benchmark — is embarrassingly parallel, but naively splitting it across
//! threads would make results depend on which worker finishes first. This
//! module keeps every aggregate **deterministic**:
//!
//! * **Randomised techniques** (Rand, PCT, MapleLike) shard their schedule
//!   budget over N workers with seeds *derived* from the base seed
//!   ([`derive_seed`]); the per-shard statistics are folded in shard order
//!   with [`ExplorationStats::merge`], so the parallel aggregate equals the
//!   serial run of the same shard plan ([`explore_sharded_serial`]) no matter
//!   how the workers are scheduled. With one worker the plan degenerates to
//!   the classic serial exploration (`derive_seed(seed, 0) == seed`).
//! * **Iterative bounding** (IPB/IDB) runs bound levels as parallel tasks.
//!   Each task records a per-schedule digest of the schedules *new* at its
//!   bound; the main thread folds the digests in bound order, re-applying the
//!   serial driver's budget-truncation and stopping rules exactly, so the
//!   result is schedule-for-schedule identical to
//!   [`explore::iterative_bounding`]. Bounds beyond the serial stopping point
//!   are cancelled through a stop flag (their speculative work is discarded).
//!   With the schedule cache on, level workers share one
//!   [`ScheduleCache`] opportunistically (a pure memo of the deterministic
//!   program, so sharing can only skip executions, never change a result)
//!   while each level also ships visit-order records; the fold replays them
//!   through a [`CacheReplay`] mirror in bound order, so the reported
//!   `executions` / `cache_hits` / `cache_bytes` counters are the serial
//!   driver's values bit for bit.
//! * **DFS** is a single backtracking search over one schedule tree and runs
//!   serially; study-level parallelism for DFS comes from fanning out
//!   benchmarks × techniques in the harness instead.

use crate::bounds::BoundKind;
use crate::cache::{self, CacheHandle, CacheReplay, ScheduleCache, ScheduleRun, SharedCache};
use crate::dfs::BoundedDfs;
use crate::explore::{self, ExploreLimits, Technique};
use crate::scheduler::Scheduler;
use crate::stats::ExplorationStats;
use crate::telemetry::Event;
use sct_ir::Program;
use sct_runtime::{Bug, ExecConfig, Execution, ThreadId};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;
use std::thread;
use std::time::Instant;

/// Number of workers to use when the caller does not specify one.
pub fn default_workers() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Deterministically derive the RNG seed of shard `index` from `base`.
///
/// Shard 0 keeps the base seed, so a one-worker shard plan reproduces the
/// classic serial exploration bit for bit; later shards get SplitMix64-mixed
/// seeds, which keeps their streams statistically independent of each other
/// for any base seed (including adjacent ones).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    if index == 0 {
        return base;
    }
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Split `schedule_limit` into per-shard budgets for `workers` workers:
/// as even as possible, earlier shards take the remainder, zero-budget
/// shards are dropped. The budgets always sum to `schedule_limit`.
pub fn shard_budgets(schedule_limit: u64, workers: usize) -> Vec<u64> {
    let shards = (workers.max(1) as u64).min(schedule_limit.max(1));
    let base = schedule_limit / shards;
    let rem = schedule_limit % shards;
    (0..shards)
        .map(|i| base + u64::from(i < rem))
        .filter(|&b| b > 0)
        .collect()
}

/// Evaluate `f(0..n)` on up to `workers` threads and return the results in
/// index order. Work is claimed dynamically (an atomic index dispenser), so
/// uneven item costs balance across the pool, while the output stays
/// deterministic: slot `i` always holds `f(i)`.
pub fn map_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker pool left a slot unfilled")
        })
        .collect()
}

/// The technique shard `index` runs: same algorithm, derived seed.
fn shard_technique(technique: Technique, index: u64) -> Technique {
    match technique {
        Technique::Random { seed } => Technique::Random {
            seed: derive_seed(seed, index),
        },
        Technique::Pct { depth, seed } => Technique::Pct {
            depth,
            seed: derive_seed(seed, index),
        },
        Technique::MapleLike {
            profiling_runs,
            seed,
        } => Technique::MapleLike {
            profiling_runs,
            seed: derive_seed(seed, index),
        },
        systematic => systematic,
    }
}

fn fold_shards(mut shards: Vec<ExplorationStats>) -> ExplorationStats {
    let mut agg = shards.remove(0);
    for shard in &shards {
        agg.merge(shard);
    }
    agg
}

/// Explore a randomised technique with its schedule budget sharded over
/// `workers` parallel workers. The aggregate is deterministic for a fixed
/// `(seed, workers, schedule_limit)` triple — identical to
/// [`explore_sharded_serial`] with the same arguments — because shards fold
/// in plan order, not completion order. Note that `schedules_to_first_bug`
/// is the *minimum shard-local* index, the natural analogue of "schedules
/// until some worker reports the bug".
///
/// Systematic techniques are delegated: DFS to the serial driver, IPB/IDB to
/// [`parallel_iterative_bounding`].
pub fn explore_sharded(
    program: &Program,
    config: &ExecConfig,
    technique: Technique,
    limits: &ExploreLimits,
    workers: usize,
) -> ExplorationStats {
    match technique {
        Technique::Dfs
        | Technique::IterativePreemptionBounding
        | Technique::IterativeDelayBounding => {
            return run_technique_parallel(program, config, technique, limits, workers)
        }
        _ => {}
    }
    let budgets = shard_budgets(limits.schedule_limit, workers);
    if budgets.len() <= 1 {
        return explore::run_technique(program, config, technique, limits);
    }
    let shard_stats: Vec<ExplorationStats> = thread::scope(|scope| {
        let handles: Vec<_> = budgets
            .iter()
            .enumerate()
            .map(|(i, &budget)| {
                let technique = shard_technique(technique, i as u64);
                let shard_limits = ExploreLimits {
                    schedule_limit: budget,
                    ..limits.clone()
                };
                scope.spawn(move || {
                    explore::run_technique(program, config, technique, &shard_limits)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    fold_shards(shard_stats)
}

/// The serial reference for [`explore_sharded`]: the same shard plan run on
/// one thread, folded in the same order. Used by the determinism tests and
/// benchmarks; produces identical aggregates to the parallel version.
pub fn explore_sharded_serial(
    program: &Program,
    config: &ExecConfig,
    technique: Technique,
    limits: &ExploreLimits,
    workers: usize,
) -> ExplorationStats {
    match technique {
        Technique::Dfs
        | Technique::IterativePreemptionBounding
        | Technique::IterativeDelayBounding => {
            return explore::run_technique(program, config, technique, limits)
        }
        _ => {}
    }
    let budgets = shard_budgets(limits.schedule_limit, workers);
    if budgets.len() <= 1 {
        return explore::run_technique(program, config, technique, limits);
    }
    let shard_stats: Vec<ExplorationStats> = budgets
        .iter()
        .enumerate()
        .map(|(i, &budget)| {
            let technique = shard_technique(technique, i as u64);
            let shard_limits = ExploreLimits {
                schedule_limit: budget,
                ..limits.clone()
            };
            explore::run_technique(program, config, technique, &shard_limits)
        })
        .collect();
    fold_shards(shard_stats)
}

/// What [`ExplorationStats::record`] needs from one terminal schedule; the
/// bound-level tasks ship these back so the fold can replay the serial
/// driver's accounting exactly.
struct ScheduleDigest {
    buggy: bool,
    diverged: bool,
    threads_created: usize,
    max_enabled: usize,
    scheduling_points: usize,
    /// Set only for buggy schedules (the fold clones it for the first bug).
    bug: Option<Bug>,
    /// Cumulative sleep-set counters of the level's scheduler *after* the
    /// execution that produced this digest. When the budget truncates a
    /// level mid-way, the serial driver stops right after the counted
    /// schedule that filled it, so the fold charges the counters as of that
    /// schedule rather than the level's final values.
    slept: u64,
    pruned_by_sleep: u64,
    /// Cumulative count of real program executions this level's worker had
    /// performed when the digest was taken (same snapshot discipline as the
    /// sleep counters). Only meaningful without caching: under a shared
    /// cache the worker's execution count depends on scheduling, so the fold
    /// recomputes the serial value from the visit records instead.
    executions: u64,
}

impl ScheduleDigest {
    fn of_terminal(
        d: &cache::TerminalDigest,
        (slept, pruned_by_sleep): (u64, u64),
        executions: u64,
    ) -> Self {
        let buggy = d.is_buggy();
        ScheduleDigest {
            buggy,
            diverged: d.diverged,
            threads_created: d.threads_created,
            max_enabled: d.max_enabled,
            scheduling_points: d.scheduling_points,
            bug: if buggy { d.bug.clone() } else { None },
            slept,
            pruned_by_sleep,
            executions,
        }
    }

    fn of_run(run: &ScheduleRun, counters: (u64, u64), executions: u64) -> Self {
        Self::of_terminal(&run.digest(), counters, executions)
    }
}

/// One schedule visited by a bound level, in visit order: the decision path
/// and per-step enabled counts the fold needs to replay the serial cache
/// deterministically, plus the counted digest when the iteration rules count
/// the schedule at this level. Only shipped when caching is on.
struct VisitRecord {
    schedule: Box<[ThreadId]>,
    enabled_counts: Box<[u32]>,
    counted: Option<ScheduleDigest>,
}

/// Feed a digest through the same accounting as the serial driver
/// ([`ExplorationStats::record_parts`] backs both, so they cannot drift).
fn record_digest(agg: &mut ExplorationStats, d: &ScheduleDigest) {
    agg.record_parts(
        d.buggy,
        d.diverged,
        d.threads_created,
        d.max_enabled,
        d.scheduling_points,
        d.bug.as_ref(),
    );
}

/// One bound level explored to completion (or its budget cap / the stop
/// flag), with the digests of the schedules that are *new* at this bound —
/// and, when caching is on, the visit records of *every* schedule the level
/// walked, so the fold can replay the serial cache.
struct BoundRun {
    bound: u32,
    digests: Vec<ScheduleDigest>,
    /// Visit-order records of all completed schedules (counted digests
    /// embedded), shipped only when the schedule cache is enabled.
    visits: Option<Vec<VisitRecord>>,
    /// Whether the bounded DFS exhausted the bound (never true when aborted).
    complete: bool,
    pruned: bool,
    /// Final sleep-set counters of the level (used when the fold applies the
    /// level in full; truncated folds use the per-digest snapshots).
    slept: u64,
    pruned_by_sleep: u64,
    /// Real program executions the level performed (same caveat as
    /// [`ScheduleDigest::executions`]: only meaningful without caching).
    executions: u64,
    /// Whether the caller's wall-clock deadline cut this level short; the
    /// fold reports the explored prefix and stops.
    deadline_exceeded: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_bound(
    program: &Program,
    config: &ExecConfig,
    kind: BoundKind,
    bound: u32,
    limits: &ExploreLimits,
    stop: &AtomicBool,
    shared_cache: Option<&RwLock<ScheduleCache>>,
    deadline: Option<Instant>,
) -> BoundRun {
    if limits.steal_workers > 1 && !limits.por {
        // Split the level's own frontier across the stealing workers; the
        // stream comes back in serial visit order, so the conversion below is
        // a straight repackaging (POR levels under a pruning bound stay
        // serial — see the gate in [`crate::steal`]).
        return run_bound_stealing(
            program,
            config,
            kind,
            bound,
            limits,
            stop,
            shared_cache,
            deadline,
        );
    }
    let cap = limits.schedule_limit;
    let mut scheduler = BoundedDfs::new(kind.policy(), bound).with_sleep_sets(limits.por);
    let mut exec = Execution::new_shared(program, config);
    let mut digests: Vec<ScheduleDigest> = Vec::new();
    let mut visits: Option<Vec<VisitRecord>> = shared_cache.map(|_| Vec::new());
    let mut counted = 0u64;
    let mut executions = 0u64;
    let mut aborted = false;
    let mut deadline_exceeded = false;
    while counted < cap && scheduler.begin_execution() {
        if stop.load(Ordering::Relaxed) {
            // A lower bound already satisfied the serial stopping rule; this
            // speculative level will be discarded, so bail out cheaply.
            aborted = true;
            break;
        }
        if explore::deadline_fired(deadline) {
            // The technique's wall-clock budget expired: ship the explored
            // prefix; the fold reports it and stops after this level.
            aborted = true;
            deadline_exceeded = true;
            break;
        }
        let handle = match shared_cache {
            Some(mutex) => CacheHandle::Shared(mutex),
            None => CacheHandle::Off,
        };
        let (run, trace) =
            cache::run_begun_schedule(&mut exec, &mut scheduler, handle, visits.is_some());
        if matches!(run, ScheduleRun::Executed(_)) {
            executions += 1;
        }
        let counted_digest = if scheduler.current_execution_redundant() {
            None
        } else if run.cost(kind) == bound || bound == 0 {
            counted += 1;
            Some(ScheduleDigest::of_run(
                &run,
                scheduler.sleep_counters(),
                executions,
            ))
        } else {
            None
        };
        match (visits.as_mut(), counted_digest) {
            (Some(records), counted_digest) => {
                let trace = trace.expect("visit trace requested but not returned");
                records.push(VisitRecord {
                    schedule: trace.schedule.into_boxed_slice(),
                    enabled_counts: trace.enabled_counts.into_boxed_slice(),
                    counted: counted_digest,
                });
            }
            (None, Some(digest)) => digests.push(digest),
            (None, None) => {}
        }
    }
    let (slept, pruned_by_sleep) = scheduler.sleep_counters();
    BoundRun {
        bound,
        digests,
        visits,
        complete: scheduler.is_complete() && !aborted,
        pruned: scheduler.was_pruned(),
        slept,
        pruned_by_sleep,
        executions,
        deadline_exceeded,
    }
}

/// [`run_bound`] with the level's frontier split across the work-stealing
/// engine: the stolen stream is already in serial visit order with serial
/// counter snapshots, so it repackages one-to-one into the digests / visit
/// records the fold consumes.
#[allow(clippy::too_many_arguments)]
fn run_bound_stealing(
    program: &Program,
    config: &ExecConfig,
    kind: BoundKind,
    bound: u32,
    limits: &ExploreLimits,
    stop: &AtomicBool,
    shared_cache: Option<&RwLock<ScheduleCache>>,
    deadline: Option<Instant>,
) -> BoundRun {
    let level = crate::steal::run_level_stealing(
        program,
        config,
        kind,
        bound,
        limits,
        stop,
        shared_cache,
        deadline,
    );
    let mut digests: Vec<ScheduleDigest> = Vec::new();
    let mut visits: Option<Vec<VisitRecord>> = shared_cache.map(|_| Vec::new());
    for item in level.items {
        let counted_digest = item.counted.then(|| {
            ScheduleDigest::of_terminal(
                &item.digest,
                (item.slept, item.pruned_by_sleep),
                item.executions,
            )
        });
        match (visits.as_mut(), counted_digest) {
            (Some(records), counted_digest) => {
                let trace = item.trace.expect("visit trace requested but not returned");
                records.push(VisitRecord {
                    schedule: trace.schedule.into_boxed_slice(),
                    enabled_counts: trace.enabled_counts.into_boxed_slice(),
                    counted: counted_digest,
                });
            }
            (None, Some(digest)) => digests.push(digest),
            (None, None) => {}
        }
    }
    BoundRun {
        bound,
        digests,
        visits,
        complete: level.complete,
        pruned: level.pruned,
        slept: level.slept,
        pruned_by_sleep: level.pruned_by_sleep,
        executions: level.executions,
        deadline_exceeded: level.deadline_exceeded,
    }
}

/// Fold one bound level into the aggregate, replaying the serial driver's
/// budget truncation and stopping rules. Returns `true` when exploration is
/// finished (bug found / budget exhausted / space covered).
///
/// With caching (`replay` present, visit records shipped) the fold walks the
/// level's visits in order through the [`CacheReplay`] mirror, reproducing
/// the hit/insert/byte decisions — and therefore the `executions`,
/// `cache_hits` and `cache_bytes` statistics — of the serial driver exactly,
/// regardless of how the speculative level workers interleaved their use of
/// the shared cache.
fn fold_bound(
    agg: &mut ExplorationStats,
    run: &BoundRun,
    limits: &ExploreLimits,
    mut replay: Option<&mut CacheReplay>,
    program: &str,
) -> bool {
    let mut new_at_bound = 0u64;
    let mut truncated = false;
    let mut level_slept = 0u64;
    let mut level_pruned_by_sleep = 0u64;
    let mut level_executions = 0u64;
    // Telemetry bookkeeping: the fold runs on the calling thread in bound
    // order, so per-level deltas and the first-bug transition are observed
    // exactly as the serial driver would report them.
    let fold_base = (
        agg.schedules,
        agg.executions,
        replay.as_deref().map(CacheReplay::hits).unwrap_or(0),
    );
    let prev_first_bug = agg.schedules_to_first_bug;
    let cached = replay.is_some() && run.visits.is_some();
    if let (Some(replay), Some(visits)) = (replay.as_deref_mut(), run.visits.as_ref()) {
        for record in visits {
            // The serial driver checks the budget before every schedule; the
            // check's outcome only changes when a *counted* schedule lands,
            // so checking before each visit reproduces its truncation point.
            if agg.schedules >= limits.schedule_limit {
                truncated = true;
                break;
            }
            let hit = replay.apply(&record.schedule, &record.enabled_counts);
            if !hit {
                level_executions += 1;
            }
            if let Some(d) = &record.counted {
                record_digest(agg, d);
                new_at_bound += 1;
                level_slept = d.slept;
                level_pruned_by_sleep = d.pruned_by_sleep;
            }
        }
    } else {
        for d in &run.digests {
            // Same budget rule as above, over the counted digests only.
            if agg.schedules >= limits.schedule_limit {
                truncated = true;
                break;
            }
            record_digest(agg, d);
            new_at_bound += 1;
            level_slept = d.slept;
            level_pruned_by_sleep = d.pruned_by_sleep;
            level_executions = d.executions;
        }
    }
    // The serial `BoundedDfs` only learns it exhausted the bound from the
    // `begin_execution` call *after* the last execution; once the budget is
    // spent that call never happens, so the bound does not count as finished
    // even when the digest list happens to be exactly exhausted.
    let finished_bound = !truncated && agg.schedules < limits.schedule_limit && run.complete;
    // Sleep-counter accounting mirrors the serial driver: it leaves a level
    // either because the budget filled — right after the counted schedule
    // that filled it, so the counters are that schedule's snapshot — or
    // because the level's DFS was exhausted, with the level's final counters.
    // The execution count follows the same rule, except in cache mode where
    // the per-visit replay above already produced the exact serial value.
    if !truncated && agg.schedules < limits.schedule_limit {
        level_slept = run.slept;
        level_pruned_by_sleep = run.pruned_by_sleep;
        if !cached {
            level_executions = run.executions;
        }
    }
    agg.slept += level_slept;
    agg.pruned_by_sleep += level_pruned_by_sleep;
    agg.executions += level_executions;

    agg.final_bound = Some(run.bound);
    agg.new_schedules_at_final_bound = new_at_bound;
    if agg.found_bug() && agg.bound_of_first_bug.is_none() {
        agg.bound_of_first_bug = Some(run.bound);
    }
    explore::note_first_bug(prev_first_bug, agg, &limits.telemetry, program);
    let fold_hits = replay.as_deref().map(CacheReplay::hits).unwrap_or(0);
    limits.telemetry.emit(|| Event::BoundLevel {
        program: program.to_string(),
        technique: agg.technique.clone(),
        bound: run.bound as u64,
        schedules: agg.schedules - fold_base.0,
        executions: agg.executions - fold_base.1,
        cache_hits: fold_hits - fold_base.2,
        new_at_bound,
    });
    if agg.schedules >= limits.schedule_limit && !finished_bound {
        agg.hit_schedule_limit = true;
        return true;
    }
    if agg.found_bug() {
        // The paper completes the bound at which the bug was found, then
        // stops (same rule as the serial driver).
        return true;
    }
    if finished_bound && !run.pruned {
        agg.complete = true;
        return true;
    }
    if agg.schedules >= limits.schedule_limit {
        agg.hit_schedule_limit = true;
        return true;
    }
    false
}

/// Iterative schedule bounding with bound levels `0..=max_bound` explored as
/// parallel tasks, in waves of `workers` levels. Produces statistics
/// identical to the serial [`explore::iterative_bounding`] — including
/// `new_schedules_at_final_bound`, `bound_of_first_bug` and the budget /
/// completeness flags — because the per-level digests are folded in bound
/// order under the exact serial accounting rules. Levels beyond the serial
/// stopping point are speculative; once the fold stops, the remaining levels
/// of the wave are cancelled and discarded.
pub fn parallel_iterative_bounding(
    program: &Program,
    config: &ExecConfig,
    kind: BoundKind,
    limits: &ExploreLimits,
    workers: usize,
) -> ExplorationStats {
    let label = match kind {
        BoundKind::Preemption => "IPB",
        BoundKind::Delay => "IDB",
        BoundKind::None => "DFS",
    };
    let workers = workers.max(1);
    // With no bound there are no levels to parallelise: every "level" would
    // re-run the same full unbounded DFS, so delegate to the serial driver
    // (same as the one-worker case — unless the work-stealing frontier can
    // split the levels *internally*, which needs the digest-folding path
    // even at one level-worker).
    let stealing_within_levels = limits.steal_workers > 1 && !limits.por;
    if kind == BoundKind::None || (workers == 1 && !stealing_within_levels) {
        return explore::iterative_bounding(program, config, kind, limits);
    }
    let started = Instant::now();
    let mut agg = ExplorationStats::new(label);
    let mut degradation_reported = false;
    let stop = AtomicBool::new(false);
    let deadline = explore::deadline_from(started, limits);
    // With caching on, the level workers share one cache: lookups and
    // insertions are transparent memo operations on a deterministic program,
    // so sharing only changes how many executions are physically skipped —
    // never a result. The *reported* cache statistics come from `replay`,
    // which the fold drives in bound order to reproduce the serial values.
    // In corpus mode the shared cache is the loaded corpus trie and the
    // replay mirror starts from its loaded baseline, so a resumed run folds
    // pre-loaded hits exactly like the serial driver does.
    let corpus = limits.shared_cache.clone();
    let local_cache = (corpus.is_none() && limits.cache)
        .then(|| RwLock::new(ScheduleCache::new(limits.cache_max_bytes)));
    let mut replay = match &corpus {
        Some(shared) => Some(shared.mirror()),
        None => limits
            .cache
            .then(|| CacheReplay::new(limits.cache_max_bytes)),
    };
    let shared_cache: Option<&RwLock<ScheduleCache>> = corpus
        .as_deref()
        .map(SharedCache::live)
        .or(local_cache.as_ref());
    let mut bound = 0u32;
    let mut done = false;
    while !done && bound <= limits.max_bound {
        let wave_last = bound
            .saturating_add(workers as u32 - 1)
            .min(limits.max_bound);
        thread::scope(|scope| {
            let stop = &stop;
            let handles: Vec<_> = (bound..=wave_last)
                .map(|b| {
                    scope.spawn(move || {
                        run_bound(
                            program,
                            config,
                            kind,
                            b,
                            limits,
                            stop,
                            shared_cache,
                            deadline,
                        )
                    })
                })
                .collect();
            // Join in bound order and fold incrementally, so the stop flag
            // cancels higher levels as soon as the serial rule fires.
            for handle in handles {
                let run = handle.join().expect("bound-level worker panicked");
                if done {
                    continue; // drain cancelled levels
                }
                done = fold_bound(&mut agg, &run, limits, replay.as_mut(), &program.name);
                if !done && run.deadline_exceeded {
                    // The level's worker hit the wall-clock budget: its
                    // explored prefix is folded above; report the partial
                    // aggregate and cancel everything still speculative.
                    agg.deadline_exceeded = true;
                    done = true;
                }
                if !degradation_reported {
                    if let Some(r) = &replay {
                        if r.is_full() {
                            degradation_reported = true;
                            limits.telemetry.emit(|| Event::CacheDegraded {
                                program: program.name.clone(),
                                technique: agg.technique.clone(),
                                bytes: r.bytes(),
                                max_bytes: limits.cache_max_bytes,
                            });
                        }
                    }
                }
                if done {
                    stop.store(true, Ordering::Relaxed);
                }
            }
        });
        if wave_last == limits.max_bound {
            break;
        }
        bound = wave_last + 1;
    }
    // Same rule as the serial driver: running out of bound levels without
    // stopping is an explicit "gave up on bounds" outcome.
    agg.bound_exhausted = !done;
    if let Some(replay) = &replay {
        agg.cache_hits = replay.hits();
        agg.cache_bytes = replay.bytes();
    }
    agg.explore_nanos = started.elapsed().as_nanos() as u64;
    agg
}

/// Run one of the study's techniques with intra-technique parallelism over
/// `workers` threads, preserving deterministic statistics (see the module
/// docs for the exact guarantees per technique family).
pub fn run_technique_parallel(
    program: &Program,
    config: &ExecConfig,
    technique: Technique,
    limits: &ExploreLimits,
    workers: usize,
) -> ExplorationStats {
    let started = Instant::now();
    let mut stats = match technique {
        Technique::Dfs => explore::run_technique(program, config, technique, limits),
        Technique::IterativePreemptionBounding => {
            parallel_iterative_bounding(program, config, BoundKind::Preemption, limits, workers)
        }
        Technique::IterativeDelayBounding => {
            parallel_iterative_bounding(program, config, BoundKind::Delay, limits, workers)
        }
        Technique::Random { .. } | Technique::Pct { .. } | Technique::MapleLike { .. } => {
            explore_sharded(program, config, technique, limits, workers)
        }
    };
    stats.explore_nanos = started.elapsed().as_nanos() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::prelude::*;

    fn figure1() -> Program {
        let mut p = ProgramBuilder::new("figure1");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let z = p.global("z", 0);
        let t1 = p.thread("t1", |b| {
            b.store(x, 1);
            b.store(y, 1);
        });
        let t2 = p.thread("t2", |b| {
            b.store(z, 1);
        });
        let t3 = p.thread("t3", |b| {
            let rx = b.local("rx");
            let ry = b.local("ry");
            b.load(x, rx);
            b.load(y, ry);
            b.assert_cond(eq(rx, ry), "x == y");
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
            b.spawn(t3);
        });
        p.build().unwrap()
    }

    fn config() -> ExecConfig {
        ExecConfig::all_visible()
    }

    #[test]
    fn derived_seeds_keep_shard_zero_and_spread_the_rest() {
        assert_eq!(derive_seed(1234, 0), 1234);
        let s1 = derive_seed(1234, 1);
        let s2 = derive_seed(1234, 2);
        assert_ne!(s1, 1234);
        assert_ne!(s1, s2);
        // Adjacent base seeds must not collide shard streams.
        assert_ne!(derive_seed(1234, 1), derive_seed(1235, 1));
    }

    #[test]
    fn shard_budgets_partition_the_limit() {
        assert_eq!(shard_budgets(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(shard_budgets(3, 8), vec![1, 1, 1]);
        assert_eq!(shard_budgets(8, 1), vec![8]);
        assert!(shard_budgets(0, 4).is_empty());
        for (limit, workers) in [(10_000u64, 7usize), (52, 4), (1, 16)] {
            let budgets = shard_budgets(limit, workers);
            assert_eq!(budgets.iter().sum::<u64>(), limit);
        }
    }

    #[test]
    fn sharded_random_is_deterministic_and_parallel_equals_serial() {
        let prog = figure1();
        let limits = ExploreLimits::with_schedule_limit(400);
        let technique = Technique::Random { seed: 42 };
        let serial = explore_sharded_serial(&prog, &config(), technique, &limits, 4);
        let parallel = explore_sharded(&prog, &config(), technique, &limits, 4);
        let parallel_again = explore_sharded(&prog, &config(), technique, &limits, 4);
        assert_eq!(serial, parallel);
        assert_eq!(parallel, parallel_again);
        assert_eq!(parallel.schedules, 400);
        assert!(parallel.found_bug(), "figure1's bug is easy for Rand");
    }

    #[test]
    fn sharded_pct_parallel_equals_serial() {
        let prog = figure1();
        let limits = ExploreLimits::with_schedule_limit(300);
        let technique = Technique::Pct { depth: 2, seed: 5 };
        let serial = explore_sharded_serial(&prog, &config(), technique, &limits, 3);
        let parallel = explore_sharded(&prog, &config(), technique, &limits, 3);
        assert_eq!(serial, parallel);
        assert_eq!(parallel.schedules, 300);
    }

    #[test]
    fn one_worker_shard_plan_is_the_classic_serial_run() {
        let prog = figure1();
        let limits = ExploreLimits::with_schedule_limit(200);
        let technique = Technique::Random { seed: 9 };
        let classic = explore::run_technique(&prog, &config(), technique, &limits);
        let sharded = explore_sharded(&prog, &config(), technique, &limits, 1);
        assert_eq!(classic, sharded);
    }

    #[test]
    fn parallel_iterative_bounding_matches_serial_exactly() {
        let prog = figure1();
        let limits = ExploreLimits::with_schedule_limit(10_000);
        for kind in [BoundKind::Delay, BoundKind::Preemption] {
            let serial = explore::iterative_bounding(&prog, &config(), kind, &limits);
            for workers in [2, 4, 8] {
                let parallel =
                    parallel_iterative_bounding(&prog, &config(), kind, &limits, workers);
                assert_eq!(serial, parallel, "{kind:?} with {workers} workers");
            }
        }
    }

    #[test]
    fn parallel_iterative_bounding_with_sleep_sets_matches_serial() {
        // The serial≡parallel guarantee must survive the reduction: the
        // whole stats struct — including the slept / pruned_by_sleep
        // counters — folds bit-identically at any worker count, with and
        // without budget truncation.
        let prog = figure1();
        for limit in [3u64, 10_000] {
            let limits = ExploreLimits::with_schedule_limit(limit).with_por(true);
            for kind in [BoundKind::Delay, BoundKind::Preemption] {
                let serial = explore::iterative_bounding(&prog, &config(), kind, &limits);
                for workers in [2, 4, 8] {
                    let parallel =
                        parallel_iterative_bounding(&prog, &config(), kind, &limits, workers);
                    assert_eq!(
                        serial, parallel,
                        "{kind:?} with {workers} workers at limit {limit}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_iterative_bounding_respects_the_schedule_limit() {
        // A limit small enough to truncate mid-bound: the parallel fold must
        // reproduce the serial truncation (hit flag, partial counts and all).
        let prog = figure1();
        for limit in [1u64, 2, 3, 5, 8, 13] {
            let limits = ExploreLimits::with_schedule_limit(limit);
            let serial = explore::iterative_bounding(&prog, &config(), BoundKind::Delay, &limits);
            let parallel =
                parallel_iterative_bounding(&prog, &config(), BoundKind::Delay, &limits, 4);
            assert_eq!(serial, parallel, "limit {limit}");
        }
    }

    #[test]
    fn parallel_iterative_bounding_with_cache_matches_serial_exactly() {
        // The whole stats struct — including the new executions / cache_hits
        // / cache_bytes counters, whose parallel values come from the fold's
        // deterministic cache replay — must equal the serial cached driver's
        // at any worker count, with and without POR and budget truncation.
        let prog = figure1();
        for (limit, por) in [(10_000u64, false), (10_000, true), (3, false), (5, true)] {
            let limits = ExploreLimits::with_schedule_limit(limit)
                .with_por(por)
                .with_cache(true);
            for kind in [BoundKind::Delay, BoundKind::Preemption] {
                let serial = explore::iterative_bounding(&prog, &config(), kind, &limits);
                for workers in [2, 4, 8] {
                    let parallel =
                        parallel_iterative_bounding(&prog, &config(), kind, &limits, workers);
                    assert_eq!(
                        serial, parallel,
                        "{kind:?} with {workers} workers at limit {limit}, por={por}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_cached_run_reports_the_serial_cache_savings() {
        let prog = figure1();
        let limits = ExploreLimits::with_schedule_limit(10_000).with_cache(true);
        let uncached = parallel_iterative_bounding(
            &prog,
            &config(),
            BoundKind::Delay,
            &ExploreLimits::with_schedule_limit(10_000),
            4,
        );
        let cached = parallel_iterative_bounding(&prog, &config(), BoundKind::Delay, &limits, 4);
        assert!(cached.cache_hits > 0);
        assert_eq!(cached.executions + cached.cache_hits, uncached.executions);
    }

    #[test]
    fn parallel_iterative_bounding_reports_bound_exhaustion() {
        let prog = figure1();
        let limits = ExploreLimits {
            max_bound: 0,
            ..ExploreLimits::with_schedule_limit(10_000)
        };
        let serial = explore::iterative_bounding(&prog, &config(), BoundKind::Delay, &limits);
        assert!(serial.bound_exhausted);
        for workers in [2, 4] {
            let parallel =
                parallel_iterative_bounding(&prog, &config(), BoundKind::Delay, &limits, workers);
            assert_eq!(serial, parallel, "{workers} workers");
            assert!(parallel.bound_exhausted);
        }
    }

    #[test]
    fn parallel_iterative_bounding_reports_completion_on_tiny_programs() {
        let mut p = ProgramBuilder::new("single");
        let x = p.global("x", 0);
        p.main(|b| {
            b.store(x, 1);
        });
        let prog = p.build().unwrap();
        let limits = ExploreLimits::default();
        let serial = explore::iterative_bounding(&prog, &config(), BoundKind::Delay, &limits);
        let parallel = parallel_iterative_bounding(&prog, &config(), BoundKind::Delay, &limits, 4);
        assert_eq!(serial, parallel);
        assert!(parallel.complete);
        assert_eq!(parallel.schedules, 1);
    }

    #[test]
    fn run_technique_parallel_covers_every_technique() {
        let prog = figure1();
        let limits = ExploreLimits::with_schedule_limit(500);
        for technique in [
            Technique::Dfs,
            Technique::IterativePreemptionBounding,
            Technique::IterativeDelayBounding,
            Technique::Random { seed: 3 },
            Technique::Pct { depth: 2, seed: 3 },
            Technique::MapleLike {
                profiling_runs: 4,
                seed: 3,
            },
        ] {
            let stats = run_technique_parallel(&prog, &config(), technique, &limits, 4);
            assert!(stats.schedules >= 1, "{technique:?} explored nothing");
        }
    }
}

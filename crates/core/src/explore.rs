//! Exploration drivers: run a scheduling strategy against a program under a
//! terminal-schedule limit and gather Table-3-style statistics.

use crate::bounds::BoundKind;
use crate::cache::{self, CacheHandle, ScheduleCache, ScheduleRun, SharedCache};
use crate::dfs::BoundedDfs;
use crate::maple::MapleLikeScheduler;
use crate::pct::PctScheduler;
use crate::random::RandomScheduler;
use crate::scheduler::Scheduler;
use crate::stats::ExplorationStats;
use crate::telemetry::{Event, Telemetry};
use sct_ir::Program;
use sct_runtime::{ExecConfig, Execution, NoopObserver};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Limits and switches applied to an exploration.
#[derive(Debug, Clone)]
pub struct ExploreLimits {
    /// Maximum number of terminal schedules to explore (the study uses 10,000).
    pub schedule_limit: u64,
    /// Maximum bound tried by iterative bounding before giving up.
    pub max_bound: u32,
    /// Enable sleep-set partial-order reduction in the systematic searches
    /// (DFS, IPB, IDB). Randomised techniques ignore the flag.
    pub por: bool,
    /// Enable the schedule cache in iterative bounding (IPB, IDB): bound
    /// level *b + 1* serves every schedule already explored at a level ≤ *b*
    /// from a decision-prefix memo instead of re-executing it (see
    /// [`crate::cache`]). Statistics are unchanged except for the
    /// `executions` / `cache_hits` / `cache_bytes` counters. Other
    /// techniques ignore the flag (plain DFS is a single level, so there is
    /// no covered interior to skip).
    pub cache: bool,
    /// Memory cap for the schedule cache (estimated bytes); once reached the
    /// cache stops growing and misses execute for real.
    pub cache_max_bytes: u64,
    /// Worker threads for the work-stealing frontier *within* one systematic
    /// search or bound level (see [`crate::steal`]). `1` keeps exploration
    /// serial; any higher count produces bit-identical statistics. Randomised
    /// techniques ignore the flag (their parallelism is budget sharding, see
    /// [`crate::parallel`]).
    pub steal_workers: usize,
    /// Campaign mode: a schedule cache shared across the techniques of one
    /// benchmark (and, when resuming, pre-loaded from a persistent corpus —
    /// see [`crate::corpus`]). When set, the systematic searches (DFS, IPB,
    /// IDB) walk and grow this cache instead of a private per-run one, and
    /// report cache counters through a per-driver [`cache::CacheReplay`]
    /// mirror seeded from the load-time baseline, so the statistics stay
    /// deterministic no matter how concurrently-running techniques interleave
    /// on the live trie. Takes precedence over `cache`.
    pub shared_cache: Option<Arc<SharedCache>>,
    /// Telemetry handle (see [`crate::telemetry`]). Off by default; when on,
    /// the drivers emit bound-level, progress, cache and bug-discovery
    /// events. Telemetry is observation-only — it never changes statistics,
    /// digests or search order.
    pub telemetry: Telemetry,
    /// Wall-clock budget for one technique run. `None` (the default) means
    /// unbounded. The deadline is checked cooperatively at schedule
    /// boundaries in every driver; when it expires the search stops with
    /// `deadline_exceeded` set and its partial statistics intact. Unlike the
    /// schedule limit this makes the *stopping point* timing-dependent, so a
    /// run is only reproducible when the budget never actually fires — which
    /// is why `deadline_exceeded`, like the wall-clock stamps, is excluded
    /// from statistics equality.
    pub time_budget: Option<Duration>,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            schedule_limit: 10_000,
            max_bound: 64,
            por: false,
            cache: false,
            cache_max_bytes: cache::DEFAULT_CACHE_BYTES,
            steal_workers: 1,
            shared_cache: None,
            telemetry: Telemetry::off(),
            time_budget: None,
        }
    }
}

impl ExploreLimits {
    /// Limits with the given schedule budget and the default maximum bound.
    pub fn with_schedule_limit(schedule_limit: u64) -> Self {
        ExploreLimits {
            schedule_limit,
            ..Default::default()
        }
    }

    /// The same limits with sleep-set partial-order reduction switched on
    /// (or off).
    pub fn with_por(self, por: bool) -> Self {
        ExploreLimits { por, ..self }
    }

    /// The same limits with the iterative-bounding schedule cache switched
    /// on (or off).
    pub fn with_cache(self, cache: bool) -> Self {
        ExploreLimits { cache, ..self }
    }

    /// The same limits with the within-bound work-stealing frontier set to
    /// `steal_workers` threads (`1` disables it).
    pub fn with_steal_workers(self, steal_workers: usize) -> Self {
        ExploreLimits {
            steal_workers: steal_workers.max(1),
            ..self
        }
    }

    /// The same limits with campaign mode switched on: the systematic
    /// searches share (and grow) the given cache — typically loaded from a
    /// persistent corpus — instead of building private ones.
    pub fn with_shared_cache(self, shared_cache: Option<Arc<SharedCache>>) -> Self {
        ExploreLimits {
            shared_cache,
            ..self
        }
    }

    /// The same limits with the given telemetry handle attached.
    pub fn with_telemetry(self, telemetry: Telemetry) -> Self {
        ExploreLimits { telemetry, ..self }
    }

    /// The same limits with the given wall-clock budget (`None` disables it).
    pub fn with_time_budget(self, time_budget: Option<Duration>) -> Self {
        ExploreLimits {
            time_budget,
            ..self
        }
    }
}

/// The absolute deadline of a driver that started at `started` under
/// `limits`, or `None` when the run is unbounded in time. A budget too large
/// to represent as an instant can never fire, so it degrades to unbounded.
pub(crate) fn deadline_from(started: Instant, limits: &ExploreLimits) -> Option<Instant> {
    limits
        .time_budget
        .and_then(|budget| started.checked_add(budget))
}

/// Whether the (optional) deadline has passed. The single clock read per
/// schedule boundary only happens when a budget was actually set.
pub(crate) fn deadline_fired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Emit a [`Event::BugFound`] when `stats` just transitioned from no bug to
/// its first bug (`prev` is `schedules_to_first_bug` before the record).
pub(crate) fn note_first_bug(
    prev: Option<u64>,
    stats: &ExplorationStats,
    telemetry: &Telemetry,
    program: &str,
) {
    if prev.is_none() {
        if let Some(schedule) = stats.schedules_to_first_bug {
            telemetry.emit(|| Event::BugFound {
                program: program.to_string(),
                technique: stats.technique.clone(),
                bug: stats
                    .first_bug
                    .as_ref()
                    .map(|b| b.to_string())
                    .unwrap_or_default(),
                schedule,
            });
        }
    }
}

/// The techniques compared in the study (plus PCT as an ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// Unbounded depth-first search ("DFS").
    Dfs,
    /// Iterative preemption bounding ("IPB").
    IterativePreemptionBounding,
    /// Iterative delay bounding ("IDB").
    IterativeDelayBounding,
    /// Naive random scheduler ("Rand"); runs `schedule_limit` executions.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// PCT with bug-depth parameter `depth`; runs `schedule_limit` executions.
    Pct {
        /// Bug-depth parameter `d`.
        depth: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Simplified Maple algorithm; terminates by its own heuristics.
    MapleLike {
        /// Number of profiling runs before the active phase.
        profiling_runs: u64,
        /// RNG seed.
        seed: u64,
    },
}

impl Technique {
    /// The study's label for this technique.
    pub fn label(&self) -> &'static str {
        match self {
            Technique::Dfs => "DFS",
            Technique::IterativePreemptionBounding => "IPB",
            Technique::IterativeDelayBounding => "IDB",
            Technique::Random { .. } => "Rand",
            Technique::Pct { .. } => "PCT",
            Technique::MapleLike { .. } => "MapleAlg",
        }
    }

    /// The five standard techniques of the study, in Table 3 column order.
    pub fn study_suite(seed: u64) -> Vec<Technique> {
        vec![
            Technique::IterativePreemptionBounding,
            Technique::IterativeDelayBounding,
            Technique::Dfs,
            Technique::Random { seed },
            Technique::MapleLike {
                profiling_runs: 10,
                seed,
            },
        ]
    }
}

/// Run `scheduler` against `program` until it stops or the schedule limit is
/// reached.
pub fn explore_with(
    program: &Program,
    config: &ExecConfig,
    scheduler: &mut dyn Scheduler,
    limits: &ExploreLimits,
) -> ExplorationStats {
    let started = Instant::now();
    let mut stats = ExplorationStats::new(scheduler.name());
    // One execution for the whole exploration: `reset` rewinds it in place,
    // so the hot loop performs no per-schedule allocation or config clone.
    let mut exec = Execution::new_shared(program, config);
    let deadline = deadline_from(started, limits);
    while stats.schedules < limits.schedule_limit && scheduler.begin_execution() {
        if deadline_fired(deadline) {
            // Cooperative wall-clock stop: report the partial results and say
            // so. The probed execution is discarded with the scheduler, just
            // like the exhausted-at-limit probe below.
            stats.deadline_exceeded = true;
            break;
        }
        crate::fault::schedule_boundary(&program.name);
        exec.reset();
        let outcome = exec.run(&mut |p| scheduler.choose(p), &mut NoopObserver);
        scheduler.end_execution(&outcome);
        stats.executions += 1;
        if scheduler.current_execution_redundant() {
            // A sleep-blocked completion: every state it visited is covered
            // by another explored schedule, so it is not a new schedule.
            continue;
        }
        let prev = stats.schedules_to_first_bug;
        stats.record(&outcome);
        note_first_bug(prev, &stats, &limits.telemetry, &program.name);
        limits.telemetry.progress(|| Event::Progress {
            program: program.name.clone(),
            technique: stats.technique.clone(),
            schedules: stats.schedules,
            executions: stats.executions,
            cache_hits: 0,
        });
    }
    let mut complete = scheduler.is_exhaustive();
    if !complete && stats.schedules >= limits.schedule_limit && scheduler.can_exhaust() {
        // The budget filled on the very last schedule, so the loop never made
        // the `begin_execution` call from which a systematic scheduler learns
        // its stack is empty. Probe: if nothing was left to explore the
        // search is complete, not truncated. A probe that *does* find more
        // work prepares an execution that is never run, which is harmless —
        // the scheduler is dropped when this function returns. Under
        // sleep-set reduction the remaining work may consist solely of
        // *redundant* completions, which would never have counted either; a
        // search is only genuinely truncated when a countable schedule
        // remains, so drain redundant runs before concluding — but never
        // more than the schedule limit again, so the post-limit cost stays
        // bounded (an unresolved drain conservatively reports truncation).
        let mut drain_budget = limits.schedule_limit;
        loop {
            if !scheduler.begin_execution() {
                complete = scheduler.is_exhaustive();
                break;
            }
            if !limits.por || drain_budget == 0 {
                break;
            }
            drain_budget -= 1;
            exec.reset();
            let outcome = exec.run(&mut |p| scheduler.choose(p), &mut NoopObserver);
            scheduler.end_execution(&outcome);
            stats.executions += 1;
            if !scheduler.current_execution_redundant() {
                break;
            }
        }
    }
    stats.complete = complete;
    // Only flag the limit when the scheduler was not exhaustive: a search
    // that covers its whole space at exactly the limit is complete, not cut
    // short, and reporting both would make the table rows ambiguous.
    stats.hit_schedule_limit = stats.schedules >= limits.schedule_limit && !stats.complete;
    let (slept, pruned_by_sleep) = scheduler.sleep_counters();
    stats.slept = slept;
    stats.pruned_by_sleep = pruned_by_sleep;
    stats.explore_nanos = started.elapsed().as_nanos() as u64;
    stats
}

/// Depth-first search bounded by `bound` under the given bound kind. The
/// statistics' `final_bound` is set to `bound`.
pub fn bounded_dfs(
    program: &Program,
    config: &ExecConfig,
    kind: BoundKind,
    bound: u32,
    limits: &ExploreLimits,
) -> ExplorationStats {
    let mut stats = if limits.steal_workers > 1 {
        crate::steal::explore_bounded_stealing(program, config, kind, bound, limits)
    } else if let Some(corpus) = limits.shared_cache.clone() {
        let mut scheduler = BoundedDfs::new(kind.policy(), bound).with_sleep_sets(limits.por);
        explore_dfs_corpus(program, config, &mut scheduler, limits, &corpus, None)
    } else {
        let mut scheduler = BoundedDfs::new(kind.policy(), bound).with_sleep_sets(limits.por);
        explore_with(program, config, &mut scheduler, limits)
    };
    stats.final_bound = Some(bound);
    if stats.found_bug() {
        stats.bound_of_first_bug = Some(bound);
    }
    stats
}

/// [`explore_with`] in campaign mode: drive one bounded DFS through
/// [`cache::run_begun_schedule`] against the shared corpus cache, reporting
/// execution/hit/byte counters through a [`cache::CacheReplay`] mirror
/// seeded from the load-time baseline (so they are a deterministic function
/// of the baseline and this driver's own visit stream, independent of what
/// concurrent techniques do to the live trie).
///
/// The exhausted-exactly-at-limit probe and the POR redundant-run drain
/// replicate [`explore_with`] — but route through the cache, so a drained
/// schedule the corpus already knows is *served*, not re-executed (the probe
/// itself never runs the program, in either driver). `digests`, when given,
/// receives the terminal digest of every counted schedule in visit order.
pub(crate) fn explore_dfs_corpus(
    program: &Program,
    config: &ExecConfig,
    scheduler: &mut BoundedDfs,
    limits: &ExploreLimits,
    corpus: &SharedCache,
    mut digests: Option<&mut Vec<cache::TerminalDigest>>,
) -> ExplorationStats {
    let started = Instant::now();
    let mut stats = ExplorationStats::new(scheduler.name());
    let mut exec = Execution::new_shared(program, config);
    let mut mirror = corpus.mirror();
    let charge = |mirror: &mut cache::CacheReplay,
                  stats: &mut ExplorationStats,
                  trace: Option<cache::VisitTrace>| {
        let trace = trace.expect("corpus mode requests traces");
        if !mirror.apply(&trace.schedule, &trace.enabled_counts) {
            stats.executions += 1;
        }
    };
    let deadline = deadline_from(started, limits);
    while stats.schedules < limits.schedule_limit && scheduler.begin_execution() {
        if deadline_fired(deadline) {
            stats.deadline_exceeded = true;
            break;
        }
        crate::fault::schedule_boundary(&program.name);
        let (run, trace) = cache::run_begun_schedule(
            &mut exec,
            scheduler,
            CacheHandle::Shared(corpus.live()),
            true,
        );
        charge(&mut mirror, &mut stats, trace);
        if scheduler.current_execution_redundant() {
            continue;
        }
        if let Some(out) = digests.as_deref_mut() {
            out.push(run.digest());
        }
        let prev = stats.schedules_to_first_bug;
        match &run {
            ScheduleRun::Executed(outcome) => stats.record(outcome),
            ScheduleRun::Served(digest) => digest.record_into(&mut stats),
        }
        note_first_bug(prev, &stats, &limits.telemetry, &program.name);
        limits.telemetry.progress(|| Event::Progress {
            program: program.name.clone(),
            technique: stats.technique.clone(),
            schedules: stats.schedules,
            executions: stats.executions,
            cache_hits: mirror.hits(),
        });
    }
    let mut complete = scheduler.is_exhaustive();
    if !complete && stats.schedules >= limits.schedule_limit && scheduler.can_exhaust() {
        // Same one-shot probe + redundant-run drain as `explore_with`; see
        // the commentary there. The drain completes schedules through the
        // cache, so re-covered interior is served rather than re-executed.
        let mut drain_budget = limits.schedule_limit;
        loop {
            if !scheduler.begin_execution() {
                complete = scheduler.is_exhaustive();
                break;
            }
            if !limits.por || drain_budget == 0 {
                break;
            }
            drain_budget -= 1;
            let (_, trace) = cache::run_begun_schedule(
                &mut exec,
                scheduler,
                CacheHandle::Shared(corpus.live()),
                true,
            );
            charge(&mut mirror, &mut stats, trace);
            if !scheduler.current_execution_redundant() {
                break;
            }
        }
    }
    stats.complete = complete;
    stats.hit_schedule_limit = stats.schedules >= limits.schedule_limit && !stats.complete;
    let (slept, pruned_by_sleep) = scheduler.sleep_counters();
    stats.slept = slept;
    stats.pruned_by_sleep = pruned_by_sleep;
    stats.cache_hits = mirror.hits();
    stats.cache_bytes = mirror.bytes();
    stats.explore_nanos = started.elapsed().as_nanos() as u64;
    stats
}

/// Iterative schedule bounding (§2, "Iterative schedule bounding"): explore
/// all schedules with bound 0, then bound 1, and so on, until a bug is found
/// (the current bound is still completed), the schedule limit is reached, or
/// the whole schedule space has been covered. A run that climbs through
/// every bound up to `max_bound` without reaching any of those outcomes is
/// reported as `bound_exhausted` — explicitly distinct from both a truncated
/// and a completed search.
///
/// Each iteration restarts the bounded DFS from scratch, so schedules with a
/// cost below the current bound are re-visited; the `new_schedules_at_final_bound`
/// statistic counts only the schedules whose cost equals the final bound,
/// matching the "# new schedules" column of Table 3. With `limits.cache` the
/// re-visited interior is served from a decision-prefix memo instead of
/// being re-executed (see [`crate::cache`]); the statistics are identical
/// either way, except that `executions` shrinks by `cache_hits`.
pub fn iterative_bounding(
    program: &Program,
    config: &ExecConfig,
    kind: BoundKind,
    limits: &ExploreLimits,
) -> ExplorationStats {
    let label = match kind {
        BoundKind::Preemption => "IPB",
        BoundKind::Delay => "IDB",
        BoundKind::None => "DFS",
    };
    let started = Instant::now();
    let mut agg = ExplorationStats::new(label);
    let mut exec = Execution::new_shared(program, config);
    let corpus = limits.shared_cache.clone();
    let mut mirror = corpus.as_ref().map(|c| c.mirror());
    let mut cache =
        (corpus.is_none() && limits.cache).then(|| ScheduleCache::new(limits.cache_max_bytes));
    let mut stopped = false;
    let mut degradation_reported = false;
    let deadline = deadline_from(started, limits);
    for bound in 0..=limits.max_bound {
        let mut scheduler = BoundedDfs::new(kind.policy(), bound).with_sleep_sets(limits.por);
        let mut new_at_bound = 0u64;
        let level_hits_base = match (&mirror, &cache) {
            (Some(m), _) => m.hits(),
            (None, Some(c)) => c.hits(),
            (None, None) => 0,
        };
        let level_base = (agg.schedules, agg.executions);
        while agg.schedules < limits.schedule_limit && scheduler.begin_execution() {
            if deadline_fired(deadline) {
                agg.deadline_exceeded = true;
                break;
            }
            crate::fault::schedule_boundary(&program.name);
            let handle = match (corpus.as_deref(), cache.as_mut()) {
                (Some(shared), _) => CacheHandle::Shared(shared.live()),
                (None, Some(c)) => CacheHandle::Local(c),
                (None, None) => CacheHandle::Off,
            };
            let (run, trace) =
                cache::run_begun_schedule(&mut exec, &mut scheduler, handle, mirror.is_some());
            match mirror.as_mut() {
                // Campaign mode: executions/hits are what the mirror — the
                // baseline plus this driver's own visit stream — says, not
                // what the (shared, concurrently mutated) live trie did.
                Some(m) => {
                    let t = trace.expect("corpus mode requests traces");
                    if !m.apply(&t.schedule, &t.enabled_counts) {
                        agg.executions += 1;
                    }
                }
                None => {
                    if matches!(run, ScheduleRun::Executed(_)) {
                        agg.executions += 1;
                    }
                }
            }
            if scheduler.current_execution_redundant() {
                continue;
            }
            let cost = run.cost(kind);
            // Iteration `bound` only *counts* schedules whose cost is exactly
            // `bound`: schedules with a smaller cost were already explored in
            // an earlier iteration (the bounded DFS still has to traverse
            // them to reach the new ones, but they are neither re-counted nor
            // re-checked, matching §2's description of iterative bounding).
            if cost == bound || bound == 0 {
                new_at_bound += 1;
                let prev = agg.schedules_to_first_bug;
                match &run {
                    ScheduleRun::Executed(outcome) => agg.record(outcome),
                    ScheduleRun::Served(digest) => digest.record_into(&mut agg),
                }
                note_first_bug(prev, &agg, &limits.telemetry, &program.name);
            }
            limits.telemetry.progress(|| Event::Progress {
                program: program.name.clone(),
                technique: label.to_string(),
                schedules: agg.schedules,
                executions: agg.executions,
                cache_hits: match (&mirror, &cache) {
                    (Some(m), _) => m.hits(),
                    (None, Some(c)) => c.hits(),
                    (None, None) => 0,
                },
            });
        }
        let (slept, pruned_by_sleep) = scheduler.sleep_counters();
        agg.slept += slept;
        agg.pruned_by_sleep += pruned_by_sleep;
        agg.final_bound = Some(bound);
        agg.new_schedules_at_final_bound = new_at_bound;
        let level_hits = match (&mirror, &cache) {
            (Some(m), _) => m.hits(),
            (None, Some(c)) => c.hits(),
            (None, None) => 0,
        };
        limits.telemetry.emit(|| Event::BoundLevel {
            program: program.name.clone(),
            technique: label.to_string(),
            bound: bound as u64,
            schedules: agg.schedules - level_base.0,
            executions: agg.executions - level_base.1,
            cache_hits: level_hits - level_hits_base,
            new_at_bound,
        });
        if !degradation_reported && limits.telemetry.is_on() {
            let (full, bytes) = match (&mirror, &cache) {
                (Some(m), _) => (m.is_full(), m.bytes()),
                (None, Some(c)) => (c.is_full(), c.bytes()),
                (None, None) => (false, 0),
            };
            if full {
                degradation_reported = true;
                limits.telemetry.emit(|| Event::CacheDegraded {
                    program: program.name.clone(),
                    technique: label.to_string(),
                    bytes,
                    max_bytes: limits.cache_max_bytes,
                });
            }
        }
        if agg.found_bug() && agg.bound_of_first_bug.is_none() {
            agg.bound_of_first_bug = Some(bound);
        }
        if agg.deadline_exceeded {
            // The wall clock, not the search, ended this level: report the
            // partial results without claiming completion, truncation or
            // bound exhaustion.
            stopped = true;
            break;
        }
        let finished_bound = scheduler.is_complete();
        if agg.schedules >= limits.schedule_limit && !finished_bound {
            agg.hit_schedule_limit = true;
            stopped = true;
            break;
        }
        if agg.found_bug() {
            // The paper completes the bound at which the bug was found (to
            // enable the worst-case analysis of Figure 4) and then stops.
            stopped = true;
            break;
        }
        if finished_bound && !scheduler.was_pruned() {
            // Nothing was pruned: every terminal schedule has been explored.
            agg.complete = true;
            stopped = true;
            break;
        }
        if agg.schedules >= limits.schedule_limit {
            agg.hit_schedule_limit = true;
            stopped = true;
            break;
        }
    }
    // Falling out of the bound loop means every level up to `max_bound` ran
    // without a bug, without covering the space and without exhausting the
    // budget: the search gave up on bounds, not on schedules.
    agg.bound_exhausted = !stopped;
    if let Some(m) = &mirror {
        agg.cache_hits = m.hits();
        agg.cache_bytes = m.bytes();
    } else if let Some(c) = &cache {
        agg.cache_hits = c.hits();
        agg.cache_bytes = c.bytes();
    }
    agg.explore_nanos = started.elapsed().as_nanos() as u64;
    agg
}

/// Run one of the study's techniques with its standard configuration.
pub fn run_technique(
    program: &Program,
    config: &ExecConfig,
    technique: Technique,
    limits: &ExploreLimits,
) -> ExplorationStats {
    let started = Instant::now();
    let mut stats = match technique {
        Technique::Dfs => {
            if limits.steal_workers > 1 {
                crate::steal::explore_bounded_stealing(
                    program,
                    config,
                    BoundKind::None,
                    u32::MAX,
                    limits,
                )
            } else if let Some(corpus) = limits.shared_cache.clone() {
                let mut scheduler = BoundedDfs::unbounded().with_sleep_sets(limits.por);
                explore_dfs_corpus(program, config, &mut scheduler, limits, &corpus, None)
            } else {
                let mut scheduler = BoundedDfs::unbounded().with_sleep_sets(limits.por);
                explore_with(program, config, &mut scheduler, limits)
            }
        }
        Technique::IterativePreemptionBounding => {
            if limits.steal_workers > 1 {
                crate::parallel::parallel_iterative_bounding(
                    program,
                    config,
                    BoundKind::Preemption,
                    limits,
                    1,
                )
            } else {
                iterative_bounding(program, config, BoundKind::Preemption, limits)
            }
        }
        Technique::IterativeDelayBounding => {
            if limits.steal_workers > 1 {
                crate::parallel::parallel_iterative_bounding(
                    program,
                    config,
                    BoundKind::Delay,
                    limits,
                    1,
                )
            } else {
                iterative_bounding(program, config, BoundKind::Delay, limits)
            }
        }
        Technique::Random { seed } => {
            let mut scheduler = RandomScheduler::new(limits.schedule_limit, seed);
            explore_with(program, config, &mut scheduler, limits)
        }
        Technique::Pct { depth, seed } => {
            let mut scheduler = PctScheduler::new(limits.schedule_limit, depth, seed);
            explore_with(program, config, &mut scheduler, limits)
        }
        Technique::MapleLike {
            profiling_runs,
            seed,
        } => {
            let mut scheduler = MapleLikeScheduler::new(profiling_runs, seed);
            explore_with(program, config, &mut scheduler, limits)
        }
    };
    // The outermost stamp wins: it covers dispatch plus the driver, so every
    // caller of `run_technique` sees the full wall-clock cost.
    stats.explore_nanos = started.elapsed().as_nanos() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::prelude::*;

    /// Figure 1 of the paper: the bug needs one preemption (or one delay).
    fn figure1() -> Program {
        let mut p = ProgramBuilder::new("figure1");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let z = p.global("z", 0);
        let t1 = p.thread("t1", |b| {
            b.store(x, 1);
            b.store(y, 1);
        });
        let t2 = p.thread("t2", |b| {
            b.store(z, 1);
        });
        let t3 = p.thread("t3", |b| {
            let rx = b.local("rx");
            let ry = b.local("ry");
            b.load(x, rx);
            b.load(y, ry);
            b.assert_cond(eq(rx, ry), "x == y");
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
            b.spawn(t3);
        });
        p.build().unwrap()
    }

    /// Example 2 of the paper: duplicate T1's statements in a second thread
    /// so that delay bounding needs two delays while preemption bounding
    /// still needs only one preemption.
    fn figure1_adversarial() -> Program {
        let mut p = ProgramBuilder::new("figure1-adversarial");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let writer = p.thread("writer", |b| {
            b.store(x, 1);
            b.store(y, 1);
        });
        let t3 = p.thread("t3", |b| {
            let rx = b.local("rx");
            let ry = b.local("ry");
            b.load(x, rx);
            b.load(y, ry);
            b.assert_cond(eq(rx, ry), "x == y");
        });
        p.main(|b| {
            b.spawn(writer);
            b.spawn(writer);
            b.spawn(t3);
        });
        p.build().unwrap()
    }

    fn config() -> ExecConfig {
        ExecConfig::all_visible()
    }

    fn limits() -> ExploreLimits {
        ExploreLimits::with_schedule_limit(10_000)
    }

    #[test]
    fn iterative_delay_bounding_finds_figure1_at_bound_one() {
        let stats = iterative_bounding(&figure1(), &config(), BoundKind::Delay, &limits());
        assert!(stats.found_bug());
        assert_eq!(stats.bound_of_first_bug, Some(1));
        assert!(stats.new_schedules_at_final_bound > 0);
        assert!(stats.buggy_schedules >= 1);
    }

    #[test]
    fn iterative_preemption_bounding_finds_figure1_at_bound_one() {
        let stats = iterative_bounding(&figure1(), &config(), BoundKind::Preemption, &limits());
        assert!(stats.found_bug());
        assert_eq!(stats.bound_of_first_bug, Some(1));
    }

    #[test]
    fn dfs_also_finds_the_bug_eventually() {
        let stats = run_technique(&figure1(), &config(), Technique::Dfs, &limits());
        assert!(stats.found_bug());
        assert!(stats.complete, "figure1's schedule space is small");
    }

    #[test]
    fn random_finds_the_bug_within_the_budget() {
        let stats = run_technique(
            &figure1(),
            &config(),
            Technique::Random { seed: 1 },
            &ExploreLimits::with_schedule_limit(2_000),
        );
        assert!(stats.found_bug());
        assert!(stats.schedules <= 2_000);
    }

    #[test]
    fn adversarial_example_needs_two_delays_but_one_preemption() {
        // Example 2 (§2): the duplicated writer pushes the required delay
        // bound to 2 while the preemption bound stays at 1.
        let prog = figure1_adversarial();
        let pb = iterative_bounding(&prog, &config(), BoundKind::Preemption, &limits());
        let db = iterative_bounding(&prog, &config(), BoundKind::Delay, &limits());
        assert_eq!(pb.bound_of_first_bug, Some(1));
        assert_eq!(db.bound_of_first_bug, Some(2));
    }

    #[test]
    fn technique_labels_and_suite() {
        assert_eq!(Technique::Dfs.label(), "DFS");
        assert_eq!(Technique::IterativeDelayBounding.label(), "IDB");
        let suite = Technique::study_suite(3);
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[0].label(), "IPB");
        assert_eq!(suite[4].label(), "MapleAlg");
    }

    #[test]
    fn schedule_limit_is_respected() {
        let stats = run_technique(
            &figure1(),
            &config(),
            Technique::Random { seed: 9 },
            &ExploreLimits::with_schedule_limit(17),
        );
        assert_eq!(stats.schedules, 17);
        assert!(stats.hit_schedule_limit);
    }

    #[test]
    fn iterative_bounding_reports_completion_on_tiny_programs() {
        // A single-threaded program has exactly one schedule; bound 0 covers
        // everything and the search reports completeness.
        let mut p = ProgramBuilder::new("single");
        let x = p.global("x", 0);
        p.main(|b| {
            b.store(x, 1);
        });
        let prog = p.build().unwrap();
        let stats = iterative_bounding(&prog, &config(), BoundKind::Delay, &limits());
        assert!(stats.complete);
        assert!(!stats.found_bug());
        assert_eq!(stats.schedules, 1);
    }

    /// The statistics with the execution/cache counters cleared, for
    /// comparing a cached against an uncached run (those counters are the
    /// only fields the cache is *supposed* to change).
    fn sans_cache_counters(mut stats: ExplorationStats) -> ExplorationStats {
        stats.executions = 0;
        stats.cache_hits = 0;
        stats.cache_bytes = 0;
        stats
    }

    #[test]
    fn cached_iterative_bounding_matches_uncached_with_fewer_executions() {
        for prog in [figure1(), figure1_adversarial()] {
            for kind in [BoundKind::Preemption, BoundKind::Delay] {
                let uncached = iterative_bounding(&prog, &config(), kind, &limits());
                let cached = iterative_bounding(&prog, &config(), kind, &limits().with_cache(true));
                assert_eq!(
                    sans_cache_counters(uncached.clone()),
                    sans_cache_counters(cached.clone()),
                    "{kind:?}: caching changed the exploration statistics"
                );
                assert!(uncached.cache_hits == 0 && uncached.cache_bytes == 0);
                assert!(cached.cache_hits > 0, "{kind:?}: interior never hit");
                assert!(cached.cache_bytes > 0);
                assert_eq!(
                    cached.executions + cached.cache_hits,
                    uncached.executions,
                    "{kind:?}: every skipped execution must be a cache hit"
                );
                assert!(
                    cached.executions < uncached.executions,
                    "{kind:?}: caching saved nothing"
                );
            }
        }
    }

    #[test]
    fn cached_iterative_bounding_composes_with_sleep_sets() {
        let prog = figure1();
        for kind in [BoundKind::Preemption, BoundKind::Delay] {
            let uncached = iterative_bounding(&prog, &config(), kind, &limits().with_por(true));
            let cached = iterative_bounding(
                &prog,
                &config(),
                kind,
                &limits().with_por(true).with_cache(true),
            );
            assert_eq!(
                sans_cache_counters(uncached.clone()),
                sans_cache_counters(cached),
                "{kind:?}: caching changed the POR exploration statistics"
            );
        }
    }

    #[test]
    fn cached_iterative_bounding_respects_budget_truncation() {
        let prog = figure1();
        for limit in [1u64, 2, 3, 5, 8] {
            let lim = ExploreLimits::with_schedule_limit(limit);
            let uncached = iterative_bounding(&prog, &config(), BoundKind::Delay, &lim);
            let cached =
                iterative_bounding(&prog, &config(), BoundKind::Delay, &lim.with_cache(true));
            assert_eq!(
                sans_cache_counters(uncached),
                sans_cache_counters(cached),
                "limit {limit}"
            );
        }
    }

    #[test]
    fn exhausting_the_space_at_exactly_the_limit_is_complete_not_truncated() {
        // First learn the exact size of figure1's unbounded DFS space, then
        // re-run with the limit set to precisely that size: the search is
        // complete, and must not also claim it was cut short.
        let full = run_technique(&figure1(), &config(), Technique::Dfs, &limits());
        assert!(full.complete && !full.hit_schedule_limit);
        let n = full.schedules;

        let exact = run_technique(
            &figure1(),
            &config(),
            Technique::Dfs,
            &ExploreLimits::with_schedule_limit(n),
        );
        assert_eq!(exact.schedules, n);
        assert!(exact.complete, "space exhausted at exactly the limit");
        assert!(
            !exact.hit_schedule_limit,
            "a complete search must not be reported as truncated"
        );

        let truncated = run_technique(
            &figure1(),
            &config(),
            Technique::Dfs,
            &ExploreLimits::with_schedule_limit(n - 1),
        );
        assert!(!truncated.complete);
        assert!(truncated.hit_schedule_limit);
    }

    #[test]
    fn por_search_exhausted_at_exactly_the_limit_is_complete() {
        // Sleep-set reduction can leave *redundant* (uncounted) completions
        // at the tail of the backtrack order. A budget that fills on the
        // last counted schedule must still report completeness: the probe
        // drains trailing redundant runs instead of mistaking them for
        // remaining countable work.
        for prog in [figure1(), figure1_adversarial()] {
            let por = limits().with_por(true);
            let full = run_technique(&prog, &config(), Technique::Dfs, &por);
            assert!(full.complete && !full.hit_schedule_limit);
            let n = full.schedules;

            let exact = run_technique(
                &prog,
                &config(),
                Technique::Dfs,
                &ExploreLimits::with_schedule_limit(n).with_por(true),
            );
            assert_eq!(exact.schedules, n);
            assert!(
                exact.complete,
                "POR space exhausted at exactly the limit must be complete"
            );
            assert!(!exact.hit_schedule_limit);
            // The drain runs any trailing redundant completions, so the
            // execution count matches the unconstrained run exactly.
            assert_eq!(exact.executions, full.executions);
        }
    }

    #[test]
    fn non_exhaustible_schedulers_are_never_probed_at_the_limit() {
        // Rand/PCT/MapleAlg can never prove their space covered, so probing
        // them at the limit would only burn (and then discard) executions —
        // and make the execution count depend on how a budget was sharded.
        // Their executions must remain an exact function of the schedules
        // they ran, POR flag or not.
        for por in [false, true] {
            for technique in [
                Technique::Random { seed: 3 },
                Technique::Pct { depth: 2, seed: 3 },
                Technique::MapleLike {
                    profiling_runs: 2,
                    seed: 3,
                },
            ] {
                let stats = run_technique(
                    &figure1(),
                    &config(),
                    technique,
                    &ExploreLimits::with_schedule_limit(3).with_por(por),
                );
                assert_eq!(
                    stats.executions, stats.schedules,
                    "{technique:?} por={por}: probe executed discarded work"
                );
                assert!(!stats.complete);
            }
        }
    }

    #[test]
    fn running_out_of_bounds_is_reported_explicitly() {
        // figure1 needs bound 1 for its bug; capping max_bound at 0 makes
        // iterative bounding walk every level (just the one) and give up:
        // not complete, not truncated — bound-exhausted.
        let lim = ExploreLimits {
            max_bound: 0,
            ..limits()
        };
        let stats = iterative_bounding(&figure1(), &config(), BoundKind::Delay, &lim);
        assert!(!stats.found_bug());
        assert!(!stats.complete);
        assert!(!stats.hit_schedule_limit);
        assert!(stats.bound_exhausted, "gave up on bounds, and must say so");
        assert_eq!(stats.final_bound, Some(0));

        // With enough bounds the flag stays off in every stopping case.
        let found = iterative_bounding(&figure1(), &config(), BoundKind::Delay, &limits());
        assert!(found.found_bug() && !found.bound_exhausted);
    }

    #[test]
    fn pct_with_depth_two_finds_the_single_preemption_bug() {
        let stats = run_technique(
            &figure1(),
            &config(),
            Technique::Pct { depth: 2, seed: 5 },
            &ExploreLimits::with_schedule_limit(2_000),
        );
        assert!(stats.found_bug());
    }
}

//! The PCT scheduler (Burckhardt et al., ASPLOS'10), discussed as related
//! work in §7 of the paper. PCT runs the program under a randomised
//! priority-based scheduler: threads get random initial priorities, `d - 1`
//! priority *change points* are placed at random depths, and at every
//! scheduling point the highest-priority enabled thread runs. When execution
//! reaches change point `i`, the priority of the currently running thread is
//! dropped to a low value `i`, forcing a context switch.
//!
//! We include PCT because it is the natural non-systematic counterpart to
//! schedule bounding: its parameter `d` plays the role of the bug depth the
//! same way the preemption/delay bound does, which makes it a useful ablation
//! against both the naive random scheduler and IPB/IDB.

use crate::scheduler::Scheduler;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sct_runtime::{ExecutionOutcome, SchedulingPoint, ThreadId};
use std::collections::{HashMap, HashSet};

/// Randomised priority scheduler with `d - 1` priority change points.
#[derive(Debug)]
pub struct PctScheduler {
    rng: SmallRng,
    runs: u64,
    started: u64,
    /// Bug-depth parameter `d` (number of ordering constraints targeted).
    depth: usize,
    /// Estimated maximum execution length, updated after each run.
    estimated_length: usize,
    /// Initial priorities handed to threads in order of first appearance.
    initial_priorities: Vec<u32>,
    /// Current priority per thread.
    priorities: HashMap<ThreadId, u32>,
    /// Steps at which a priority change happens, mapped to the (low) priority
    /// value assigned there.
    change_points: HashMap<usize, u32>,
}

impl PctScheduler {
    /// Create a PCT scheduler performing `runs` executions with bug-depth
    /// parameter `depth` (`d ≥ 1`).
    pub fn new(runs: u64, depth: usize, seed: u64) -> Self {
        PctScheduler {
            rng: SmallRng::seed_from_u64(seed),
            runs,
            started: 0,
            depth: depth.max(1),
            estimated_length: 64,
            initial_priorities: Vec::new(),
            priorities: HashMap::new(),
            change_points: HashMap::new(),
        }
    }

    fn priority_of(&mut self, t: ThreadId) -> u32 {
        if let Some(&p) = self.priorities.get(&t) {
            return p;
        }
        let idx = self.priorities.len().min(self.initial_priorities.len() - 1);
        let p = self.initial_priorities[idx];
        self.priorities.insert(t, p);
        p
    }
}

impl Scheduler for PctScheduler {
    fn begin_execution(&mut self) -> bool {
        if self.started >= self.runs {
            return false;
        }
        self.started += 1;

        // Fresh random initial priorities, all above the change-point values.
        let max_threads = 64;
        let mut prios: Vec<u32> = (0..max_threads)
            .map(|i| self.depth as u32 + 1 + i as u32)
            .collect();
        prios.shuffle(&mut self.rng);
        self.initial_priorities = prios;
        self.priorities.clear();

        // d - 1 distinct change points over the estimated execution length.
        self.change_points.clear();
        let len = self.estimated_length.max(2);
        let mut chosen: HashSet<usize> = HashSet::new();
        for i in 0..self.depth.saturating_sub(1) {
            // Try a few times to find a distinct depth; collisions are rare.
            for _ in 0..8 {
                let k = self.rng.gen_range(1..len);
                if chosen.insert(k) {
                    self.change_points.insert(k, i as u32);
                    break;
                }
            }
        }
        true
    }

    fn choose(&mut self, point: &SchedulingPoint) -> ThreadId {
        // Apply a priority change if this step is a change point: the
        // currently highest-priority enabled thread is demoted.
        if let Some(&low) = self.change_points.get(&point.step_index) {
            if let Some(&top) = point.enabled.iter().max_by_key(|&&t| self.priority_of(t)) {
                self.priorities.insert(top, low);
            }
        }
        *point
            .enabled
            .iter()
            .max_by_key(|&&t| self.priority_of(t))
            .expect("choose() called with no enabled threads")
    }

    fn end_execution(&mut self, outcome: &ExecutionOutcome) {
        self.estimated_length = self.estimated_length.max(outcome.steps.len());
    }

    fn name(&self) -> String {
        format!("PCT(d={})", self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::{Loc, TemplateId};
    use sct_runtime::PendingOp;

    fn point(enabled: &[usize], step_index: usize) -> SchedulingPoint {
        SchedulingPoint {
            enabled: enabled.iter().map(|&i| ThreadId(i)).collect(),
            last: None,
            last_enabled: false,
            num_threads: enabled.len(),
            step_index,
            pending: enabled
                .iter()
                .map(|&i| PendingOp {
                    thread: ThreadId(i),
                    loc: Loc {
                        template: TemplateId(0),
                        pc: 0,
                    },
                    addr: None,
                    is_write: false,
                })
                .collect(),
        }
    }

    #[test]
    fn respects_run_budget_and_reports_depth_in_name() {
        let mut s = PctScheduler::new(2, 3, 1);
        assert_eq!(s.name(), "PCT(d=3)");
        assert!(s.begin_execution());
        assert!(s.begin_execution());
        assert!(!s.begin_execution());
    }

    #[test]
    fn choices_are_deterministic_within_an_execution() {
        // Priorities are fixed at the start of the execution, so with no
        // change point firing the same thread keeps running.
        let mut s = PctScheduler::new(1, 1, 5);
        assert!(s.begin_execution());
        let first = s.choose(&point(&[0, 1, 2], 0));
        for step in 1..10 {
            assert_eq!(s.choose(&point(&[0, 1, 2], step)), first);
        }
    }

    #[test]
    fn change_points_demote_the_running_thread() {
        let mut s = PctScheduler::new(1, 4, 11);
        assert!(s.begin_execution());
        // Force a change point at step 3 regardless of the random draw.
        s.change_points.insert(3, 0);
        let before = s.choose(&point(&[0, 1], 0));
        let after = s.choose(&point(&[0, 1], 3));
        assert_ne!(before, after, "change point must force a context switch");
    }

    #[test]
    fn different_seeds_give_different_priority_orders() {
        let mut a = PctScheduler::new(1, 1, 1);
        let mut b = PctScheduler::new(1, 1, 2);
        assert!(a.begin_execution());
        assert!(b.begin_execution());
        let choices_a: Vec<_> = (0..4).map(|i| a.choose(&point(&[0, 1, 2, 3], i))).collect();
        let choices_b: Vec<_> = (0..4).map(|i| b.choose(&point(&[0, 1, 2, 3], i))).collect();
        // Not guaranteed different for every seed pair, but these two differ.
        assert!(choices_a != choices_b || a.initial_priorities != b.initial_priorities);
    }

    #[test]
    fn estimated_length_grows_with_observed_executions() {
        let mut s = PctScheduler::new(2, 2, 3);
        assert!(s.begin_execution());
        let outcome = ExecutionOutcome {
            bug: None,
            steps: vec![],
            threads_created: 1,
            max_enabled: 1,
            scheduling_points: 0,
            diverged: false,
            fingerprint: 0,
        };
        s.end_execution(&outcome);
        assert!(s.estimated_length >= 64);
    }
}

//! Test-only fault injection for the campaign path.
//!
//! Robustness code is only trustworthy if its recovery paths actually run,
//! and the faults they recover from — a write that fails halfway, a rename
//! that errors, a panic deep inside an exploration — are precisely the ones
//! ordinary tests cannot produce. This module plants named injection points
//! in the production code (the corpus I/O pipeline and the drivers' schedule
//! boundaries) that are inert until a test *arms* a matching fault.
//!
//! The module is always compiled (integration tests live outside the crate,
//! so `cfg(test)` would hide it from them), but the production cost is a
//! single relaxed atomic load per injection point while nothing is armed.
//!
//! Faults are scoped: each armed fault carries a substring that must occur
//! in the injection site's scope string (a file path for I/O faults, the
//! program name for schedule faults). Tests that use unique temp-dir names
//! and unique program names can therefore run concurrently without tripping
//! each other's faults.
//!
//! For out-of-process harness runs (the CI smoke), faults can also be armed
//! through the `SCT_FAULT` environment variable, a comma-separated list of
//! `kind@scope#nth` entries — e.g. `SCT_FAULT=rename-fail@corpus#1` makes
//! the first corpus rename whose path contains `corpus` fail. Env-armed
//! faults stay armed for the life of the process.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once};

/// What an armed fault does when its injection point is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail a corpus artifact write with an injected I/O error.
    WriteFail,
    /// Write only the first half of the bytes, leave the torn file on disk,
    /// and report an I/O error — a crash in the middle of a write.
    TornWrite,
    /// Fail the atomic-rename step with an injected I/O error (the fully
    /// written `.tmp` file stays behind).
    RenameFail,
    /// Fail the durability `sync_all` on the written file.
    SyncFail,
    /// Panic at a driver's schedule boundary — an engine blowing up mid-run.
    SchedulePanic,
}

impl FaultKind {
    fn parse(name: &str) -> Option<FaultKind> {
        Some(match name {
            "write-fail" => FaultKind::WriteFail,
            "torn-write" => FaultKind::TornWrite,
            "rename-fail" => FaultKind::RenameFail,
            "sync-fail" => FaultKind::SyncFail,
            "schedule-panic" => FaultKind::SchedulePanic,
            _ => return None,
        })
    }
}

struct Entry {
    id: u64,
    kind: FaultKind,
    scope: String,
    /// Fires on the `nth` matching hit (1-based).
    nth: u64,
    /// How many consecutive hits fire, starting at `nth`.
    times: u64,
    hits: u64,
}

/// Fast path: injection points return immediately while this is false. It is
/// true exactly while at least one fault (test- or env-armed) is registered.
static ARMED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

/// One-time `SCT_FAULT` scan; afterwards [`armed`] is a relaxed load.
fn armed() -> bool {
    static ENV: Once = Once::new();
    ENV.call_once(|| {
        if let Ok(spec) = std::env::var("SCT_FAULT") {
            for entry in spec.split(',').filter(|s| !s.is_empty()) {
                match parse_env_entry(entry) {
                    Some((kind, scope, nth)) => {
                        // Env-armed faults have no guard; they stay armed
                        // (and keep `ARMED` raised) for the process's life.
                        register(kind, scope, nth, 1);
                    }
                    None => eprintln!("sct: ignoring malformed SCT_FAULT entry {entry:?}"),
                }
            }
        }
    });
    ARMED.load(Ordering::Relaxed)
}

/// Parse one `kind@scope#nth` entry (`#nth` optional, defaulting to 1).
fn parse_env_entry(entry: &str) -> Option<(FaultKind, String, u64)> {
    let (kind, rest) = entry.split_once('@')?;
    let (scope, nth) = match rest.rsplit_once('#') {
        Some((scope, nth)) => (scope, nth.parse().ok().filter(|&n| n >= 1)?),
        None => (rest, 1),
    };
    Some((FaultKind::parse(kind)?, scope.to_string(), nth))
}

fn register(kind: FaultKind, scope: String, nth: u64, times: u64) -> u64 {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    registry.push(Entry {
        id,
        kind,
        scope,
        nth,
        times,
        hits: 0,
    });
    ARMED.store(true, Ordering::Relaxed);
    id
}

/// Disarms its fault when dropped, so a panicking test cannot leave a fault
/// armed for the rest of the process.
#[must_use = "the fault is disarmed when the guard drops"]
pub struct FaultGuard {
    id: u64,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        registry.retain(|e| e.id != self.id);
        if registry.is_empty() {
            ARMED.store(false, Ordering::Relaxed);
        }
    }
}

/// Arm `kind` to fire on the `nth` (1-based) matching hit at injection
/// points whose scope string contains `scope`. The fault fires exactly once
/// and the returned guard disarms it on drop.
pub fn arm(kind: FaultKind, scope: &str, nth: u64) -> FaultGuard {
    arm_times(kind, scope, nth, 1)
}

/// [`arm`], but firing on `times` consecutive hits starting at the `nth` —
/// for exercising bounded-retry paths where several attempts in a row fail.
pub fn arm_times(kind: FaultKind, scope: &str, nth: u64, times: u64) -> FaultGuard {
    assert!(nth >= 1, "hits are 1-based");
    FaultGuard {
        id: register(kind, scope.to_string(), nth, times),
    }
}

/// Record a hit on every armed fault matching `kind` and `scope`; returns
/// true when one of them fires. This is the slow path behind [`armed`].
fn fires(kind: FaultKind, scope: &str) -> bool {
    if !armed() {
        return false;
    }
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut fired = false;
    for entry in registry.iter_mut() {
        if entry.kind == kind && scope.contains(&entry.scope) {
            entry.hits += 1;
            if entry.hits >= entry.nth && entry.hits < entry.nth + entry.times {
                fired = true;
            }
        }
    }
    fired
}

/// The error every I/O fault injects, recognisable in assertions and logs.
pub const INJECTED: &str = "injected fault (sct_core::fault)";

fn injected_error() -> std::io::Error {
    std::io::Error::other(INJECTED)
}

/// Injection point: an I/O step of kind `kind` on `scope` (a path). Returns
/// the injected error when a matching fault fires.
pub(crate) fn io_point(kind: FaultKind, scope: &str) -> std::io::Result<()> {
    if fires(kind, scope) {
        return Err(injected_error());
    }
    Ok(())
}

/// Injection point: should this write be torn? Returns the number of bytes
/// to actually write (half of `len`) when a [`FaultKind::TornWrite`] fires.
pub(crate) fn torn_write(scope: &str, len: usize) -> Option<usize> {
    fires(FaultKind::TornWrite, scope).then_some(len / 2)
}

/// Injection point: a driver is about to run the next schedule of `program`.
/// Panics when a matching [`FaultKind::SchedulePanic`] fires.
pub(crate) fn schedule_boundary(program: &str) {
    if fires(FaultKind::SchedulePanic, program) {
        panic!("{INJECTED}: schedule panic in {program}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_are_inert() {
        assert!(io_point(FaultKind::WriteFail, "fault-inert/x.sctc").is_ok());
        assert!(torn_write("fault-inert/x.sctc", 100).is_none());
        schedule_boundary("fault-inert-program");
    }

    #[test]
    fn faults_fire_on_the_nth_matching_hit_and_only_in_scope() {
        let _g = arm(FaultKind::WriteFail, "fault-nth-scope", 2);
        // Out-of-scope hits are not counted and never fire.
        assert!(io_point(FaultKind::WriteFail, "elsewhere/x").is_ok());
        // Wrong kind in scope does not count either.
        assert!(io_point(FaultKind::RenameFail, "fault-nth-scope/x").is_ok());
        assert!(io_point(FaultKind::WriteFail, "fault-nth-scope/x").is_ok());
        let err = io_point(FaultKind::WriteFail, "fault-nth-scope/x").unwrap_err();
        assert!(err.to_string().contains(INJECTED));
        // One-shot: the third hit passes.
        assert!(io_point(FaultKind::WriteFail, "fault-nth-scope/x").is_ok());
    }

    #[test]
    fn arm_times_fires_a_consecutive_window() {
        let _g = arm_times(FaultKind::SyncFail, "fault-window", 1, 2);
        assert!(io_point(FaultKind::SyncFail, "fault-window/a").is_err());
        assert!(io_point(FaultKind::SyncFail, "fault-window/a").is_err());
        assert!(io_point(FaultKind::SyncFail, "fault-window/a").is_ok());
    }

    #[test]
    fn dropping_the_guard_disarms() {
        {
            let _g = arm(FaultKind::RenameFail, "fault-guard-drop", 1);
        }
        assert!(io_point(FaultKind::RenameFail, "fault-guard-drop/x").is_ok());
    }

    #[test]
    fn torn_writes_report_half_the_bytes() {
        let _g = arm(FaultKind::TornWrite, "fault-torn", 1);
        assert_eq!(torn_write("fault-torn/x.tmp", 100), Some(50));
        assert_eq!(torn_write("fault-torn/x.tmp", 100), None);
    }

    #[test]
    fn schedule_panic_fires_with_the_injected_marker() {
        let _g = arm(FaultKind::SchedulePanic, "fault-panic-program", 1);
        let caught = std::panic::catch_unwind(|| schedule_boundary("fault-panic-program"));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains(INJECTED), "{msg}");
    }

    #[test]
    fn env_entries_parse_and_malformed_ones_are_rejected() {
        assert_eq!(
            parse_env_entry("rename-fail@corpus#3"),
            Some((FaultKind::RenameFail, "corpus".to_string(), 3))
        );
        assert_eq!(
            parse_env_entry("schedule-panic@prog"),
            Some((FaultKind::SchedulePanic, "prog".to_string(), 1))
        );
        assert_eq!(parse_env_entry("rename-fail"), None, "missing scope");
        assert_eq!(parse_env_entry("bogus@x#1"), None, "unknown kind");
        assert_eq!(parse_env_entry("write-fail@x#0"), None, "hits are 1-based");
        assert_eq!(parse_env_entry("write-fail@x#no"), None);
    }
}

//! Schedule-bounding policies: the cost functions that preemption bounding
//! and delay bounding assign to scheduling decisions (§2 of the paper).

use sct_runtime::{SchedulingPoint, ThreadId};

/// Which bounding function a bounded search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// No bound (plain depth-first search).
    None,
    /// Preemption bounding: each preemptive context switch costs 1.
    Preemption,
    /// Delay bounding against the non-preemptive round-robin scheduler: a
    /// decision costs the number of enabled threads skipped.
    Delay,
}

impl BoundKind {
    /// Construct the policy object for this kind.
    pub fn policy(self) -> Box<dyn BoundPolicy> {
        match self {
            BoundKind::None => Box::new(NoBound),
            BoundKind::Preemption => Box::new(PreemptionBound),
            BoundKind::Delay => Box::new(DelayBound),
        }
    }

    /// Short name used in reports.
    pub fn short_name(self) -> &'static str {
        match self {
            BoundKind::None => "DFS",
            BoundKind::Preemption => "PB",
            BoundKind::Delay => "DB",
        }
    }
}

/// The cost a scheduling decision contributes towards a schedule bound.
///
/// The *schedule cost* of a schedule is the sum of the per-decision costs;
/// preemption bounding explores schedules whose cost (preemption count `PC`)
/// is at most the bound, delay bounding those whose delay count `DC` is at
/// most the bound.
pub trait BoundPolicy {
    /// Cost of choosing `choice` at `point`.
    fn cost(&self, point: &SchedulingPoint, choice: ThreadId) -> u32;

    /// Name of the policy ("preemption", "delay", "none").
    fn name(&self) -> &'static str;

    /// Whether this policy can ever exclude a decision, i.e. whether any
    /// choice can have non-zero cost. A policy that never prunes makes the
    /// sleep-set wake-on-bound-conflict rule vacuous: the previously-chosen
    /// thread *always* goes to sleep on backtrack, so the entry sleep set of
    /// every sibling subtree is known before the subtree to its left has been
    /// explored — the property the work-stealing frontier
    /// ([`crate::steal`]) relies on to hand out sibling subtrees in parallel.
    fn can_prune(&self) -> bool {
        true
    }
}

/// No bounding: every decision is free. Bounded DFS with this policy is plain
/// depth-first search.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBound;

impl BoundPolicy for NoBound {
    fn cost(&self, _point: &SchedulingPoint, _choice: ThreadId) -> u32 {
        0
    }
    fn name(&self) -> &'static str {
        "none"
    }
    fn can_prune(&self) -> bool {
        false
    }
}

/// Preemption bounding (Musuvathi & Qadeer): a decision costs 1 when the
/// previously running thread was still enabled but a different thread is
/// chosen.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreemptionBound;

impl BoundPolicy for PreemptionBound {
    fn cost(&self, point: &SchedulingPoint, choice: ThreadId) -> u32 {
        point.preemptions_for(choice)
    }
    fn name(&self) -> &'static str {
        "preemption"
    }
}

/// Delay bounding (Emmi, Qadeer, Rakamarić) against the non-preemptive
/// round-robin deterministic scheduler: a decision costs the number of
/// enabled threads skipped when walking round-robin from the previous thread
/// to the chosen one.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayBound;

impl BoundPolicy for DelayBound {
    fn cost(&self, point: &SchedulingPoint, choice: ThreadId) -> u32 {
        point.delays_for(choice)
    }
    fn name(&self) -> &'static str {
        "delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::{Loc, TemplateId};
    use sct_runtime::PendingOp;

    fn point(
        enabled: &[usize],
        last: Option<usize>,
        last_enabled: bool,
        n: usize,
    ) -> SchedulingPoint {
        SchedulingPoint {
            enabled: enabled.iter().map(|&i| ThreadId(i)).collect(),
            last: last.map(ThreadId),
            last_enabled,
            num_threads: n,
            step_index: 0,
            pending: enabled
                .iter()
                .map(|&i| PendingOp {
                    thread: ThreadId(i),
                    loc: Loc {
                        template: TemplateId(0),
                        pc: 0,
                    },
                    addr: None,
                    is_write: false,
                })
                .collect(),
        }
    }

    #[test]
    fn delay_cost_dominates_preemption_cost() {
        // For every choice, the delay cost is at least the preemption cost —
        // which is why the set of schedules with ≤ c delays is a subset of
        // those with ≤ c preemptions (§2).
        let points = [
            point(&[0, 1, 2], Some(0), true, 3),
            point(&[1, 2], Some(0), false, 3),
            point(&[0, 2, 3, 4], Some(3), true, 5),
            point(&[0], None, false, 1),
        ];
        for p in &points {
            for &t in &p.enabled {
                assert!(
                    DelayBound.cost(p, t) >= PreemptionBound.cost(p, t),
                    "delay < preemption at {p:?} choosing {t}"
                );
            }
        }
    }

    #[test]
    fn round_robin_choice_is_free_under_both_policies() {
        let points = [
            point(&[0, 1, 2], Some(1), true, 3),
            point(&[0, 2], Some(1), false, 3),
            point(&[2], Some(0), false, 3),
        ];
        for p in &points {
            let rr = p.round_robin_choice();
            assert_eq!(PreemptionBound.cost(p, rr), 0);
            assert_eq!(DelayBound.cost(p, rr), 0);
            assert_eq!(NoBound.cost(p, rr), 0);
        }
    }

    #[test]
    fn adversarial_example_from_section_2() {
        // Example 2: with threads T1..Tn between the writer and the asserting
        // thread, scheduling the asserting thread early needs many delays but
        // only one preemption.
        let p = point(&[1, 2, 3, 4], Some(1), true, 5);
        // Choosing thread 4 skips enabled threads 1, 2, 3 => 3 delays.
        assert_eq!(DelayBound.cost(&p, ThreadId(4)), 3);
        assert_eq!(PreemptionBound.cost(&p, ThreadId(4)), 1);
    }

    #[test]
    fn bound_kind_constructs_matching_policies() {
        assert_eq!(BoundKind::None.policy().name(), "none");
        assert_eq!(BoundKind::Preemption.policy().name(), "preemption");
        assert_eq!(BoundKind::Delay.policy().name(), "delay");
        assert_eq!(BoundKind::Delay.short_name(), "DB");
    }
}

//! Schedule caching for iterative bounding.
//!
//! Iterative schedule bounding (§2 of the paper) restarts the bounded DFS
//! from scratch at every bound level, so the search at bound *b + 1*
//! re-executes every schedule whose cost is at most *b* just to reach the new
//! frontier — the dominant cost on benchmarks where IPB/IDB climb several
//! bound levels before finding a bug. Because the runtime is deterministic,
//! that re-execution computes nothing new: the scheduling point reached after
//! a given decision prefix is always the same, and so is the terminal state
//! at the end of a given decision sequence.
//!
//! [`ScheduleCache`] exploits this by memoizing the program as a trie keyed
//! by the decision sequence:
//!
//! * an **interior node** stores the [`SchedulingPoint`] data the scheduler
//!   consumes at that prefix (compressed to a single [`PendingOp`] when only
//!   one thread is enabled, the overwhelmingly common case);
//! * a **terminal node** stores a [`TerminalDigest`]: the bug
//!   classification, final-state fingerprint, preemption/delay costs and the
//!   summary statistics [`crate::stats::ExplorationStats`] needs to record
//!   the schedule.
//!
//! [`run_begun_schedule`] then drives one schedule of a [`BoundedDfs`]: it
//! feeds the scheduler cached points for as long as the decision path stays
//! inside the trie. Reaching a cached terminal serves the whole schedule
//! **without executing the program**; leaving the trie falls back to a real
//! execution (the scheduler's replay machinery re-runs the prefix against the
//! live program) whose new suffix is then inserted into the trie.
//!
//! The cache is a *pure memo*: it changes which schedules are physically
//! executed, never which schedules the search visits or what the scheduler
//! observes, so it composes with sleep-set partial-order reduction and with
//! budget truncation by construction, and the exploration statistics of a
//! cached run are identical to an uncached one (minus the new
//! `executions` / `cache_hits` / `cache_bytes` counters). The differential
//! suite in `tests/integration.rs` is the proof obligation.
//!
//! Memory is bounded: every insertion is charged against a byte estimate
//! ([`node_weight`], [`TERMINAL_BYTES`]) and once the configured cap is
//! reached the cache stops growing — misses simply execute for real, so a
//! full cache degrades to the uncached search, never to an incorrect one.

use crate::dfs::BoundedDfs;
use crate::scheduler::Scheduler;
use sct_runtime::{
    Bug, Execution, ExecutionOutcome, NoopObserver, PendingOp, SchedulingPoint, ThreadId,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};

/// Default memory cap for a schedule cache (per technique per benchmark).
pub const DEFAULT_CACHE_BYTES: u64 = 128 * 1024 * 1024;

/// Estimated bytes of one interior trie node with `enabled` runnable threads.
/// A single-thread node stores only a [`PendingOp`]; a choice node stores the
/// full scheduling point (enabled list + pending summaries + edge list).
pub fn node_weight(enabled: usize) -> u64 {
    const FORCED_NODE_BYTES: u64 = 56;
    const CHOICE_NODE_BYTES: u64 = 112;
    const PER_THREAD_BYTES: u64 = 56;
    if enabled <= 1 {
        FORCED_NODE_BYTES
    } else {
        CHOICE_NODE_BYTES + enabled as u64 * PER_THREAD_BYTES
    }
}

/// Estimated bytes of one terminal digest.
pub const TERMINAL_BYTES: u64 = 96;

/// The terminal outcome of one schedule, as remembered by the cache: enough
/// to classify the schedule (bug, costs) and to feed
/// [`ExplorationStats::record_parts`] without re-executing the program.
///
/// [`ExplorationStats::record_parts`]: crate::stats::ExplorationStats::record_parts
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TerminalDigest {
    /// The bug that terminated the execution, if any.
    pub bug: Option<Bug>,
    /// Whether the execution was cut off by the step limit.
    pub diverged: bool,
    /// Total number of threads created.
    pub threads_created: usize,
    /// Maximum number of simultaneously enabled threads.
    pub max_enabled: usize,
    /// Number of scheduling points with more than one enabled thread.
    pub scheduling_points: usize,
    /// Hash of the final program state.
    pub fingerprint: u64,
    /// Preemption count of the schedule (its cost under preemption bounding).
    pub preemptions: u32,
    /// Delay count of the schedule (its cost under delay bounding).
    pub delays: u32,
}

impl TerminalDigest {
    /// Digest of a just-completed execution.
    pub fn of(outcome: &ExecutionOutcome) -> Self {
        TerminalDigest {
            bug: outcome.bug.clone(),
            diverged: outcome.diverged,
            threads_created: outcome.threads_created,
            max_enabled: outcome.max_enabled,
            scheduling_points: outcome.scheduling_points,
            fingerprint: outcome.fingerprint,
            preemptions: outcome.preemption_count(),
            delays: outcome.delay_count(),
        }
    }

    /// Whether the cached schedule exposed a bug (divergence does not count).
    pub fn is_buggy(&self) -> bool {
        self.bug.as_ref().map(Bug::counts_as_bug).unwrap_or(false)
    }

    /// Record this schedule into exploration statistics — the digest-side
    /// twin of [`ExplorationStats::record`], so served and executed
    /// schedules go through one accounting path.
    ///
    /// [`ExplorationStats::record`]: crate::stats::ExplorationStats::record
    pub fn record_into(&self, stats: &mut crate::stats::ExplorationStats) {
        stats.record_parts(
            self.is_buggy(),
            self.diverged,
            self.threads_created,
            self.max_enabled,
            self.scheduling_points,
            self.bug.as_ref(),
        );
    }
}

/// Outgoing edge of a trie node.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Link {
    /// The decision leads to another scheduling point.
    Interior(u32),
    /// The decision ends the execution; index into the terminal table.
    Terminal(u32),
}

/// One memoized scheduling point.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    /// Exactly one thread was enabled: the scheduler has no choice, so only
    /// the pending-operation summary (needed by sleep-set inheritance) and
    /// the single outgoing edge are kept.
    Forced { op: PendingOp, next: Option<Link> },
    /// A genuine choice: the full scheduling point plus one edge per decision
    /// explored so far.
    Choice {
        point: SchedulingPoint,
        edges: Vec<(ThreadId, Link)>,
    },
}

impl Node {
    fn of_point(point: &SchedulingPoint) -> (Node, usize) {
        let enabled = point.enabled.len();
        let node = if enabled == 1 {
            Node::Forced {
                op: point.pending[0],
                next: None,
            }
        } else {
            Node::Choice {
                point: point.clone(),
                edges: Vec::new(),
            }
        };
        (node, enabled)
    }

    fn edge(&self, t: ThreadId) -> Option<Link> {
        match self {
            Node::Forced { op, next } => {
                if t == op.thread {
                    *next
                } else {
                    None
                }
            }
            Node::Choice { edges, .. } => edges.iter().find(|(d, _)| *d == t).map(|(_, l)| *l),
        }
    }
}

/// Result of walking the trie for one schedule.
enum Walk {
    /// The whole decision path was cached; the terminal digest is returned.
    Hit(TerminalDigest),
    /// The path left the trie after `depth` decisions. `record` tells the
    /// caller whether the cache wants the missing suffix (false when the
    /// byte cap has been reached or caching is off).
    Miss { depth: usize, record: bool },
}

/// Per-step summary recorded during a real execution, for insertion.
enum RecordedStep {
    Forced(PendingOp),
    Choice(SchedulingPoint),
}

impl RecordedStep {
    fn of(point: &SchedulingPoint) -> Self {
        if point.enabled.len() == 1 {
            RecordedStep::Forced(point.pending[0])
        } else {
            RecordedStep::Choice(point.clone())
        }
    }
}

/// A prefix-keyed memo of the deterministic program: scheduling points keyed
/// by decision prefix, terminal digests keyed by full decision sequence. See
/// the module documentation for how the exploration drivers use it.
#[derive(Debug)]
pub struct ScheduleCache {
    pub(crate) nodes: Vec<Node>,
    pub(crate) terminals: Vec<TerminalDigest>,
    pub(crate) bytes: u64,
    pub(crate) max_bytes: u64,
    pub(crate) full: bool,
    /// Atomic so [`ScheduleCache::walk`] needs only a shared borrow: under a
    /// shared cache, parallel bound-level workers walk concurrently behind a
    /// read lock and only insertions take the write lock.
    hits: AtomicU64,
    insertions: u64,
}

impl Default for ScheduleCache {
    fn default() -> Self {
        ScheduleCache::new(DEFAULT_CACHE_BYTES)
    }
}

// Manual because of the atomic hit counter (cloned by value). Used by
// [`SharedCache`] to keep a pristine copy of the load-time trie for panic
// recovery.
impl Clone for ScheduleCache {
    fn clone(&self) -> Self {
        ScheduleCache {
            nodes: self.nodes.clone(),
            terminals: self.terminals.clone(),
            bytes: self.bytes,
            max_bytes: self.max_bytes,
            full: self.full,
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
            insertions: self.insertions,
        }
    }
}

impl ScheduleCache {
    /// An empty cache that stops growing once its byte estimate reaches
    /// `max_bytes` (it keeps serving what it already holds).
    pub fn new(max_bytes: u64) -> Self {
        ScheduleCache {
            nodes: Vec::new(),
            terminals: Vec::new(),
            bytes: 0,
            max_bytes,
            full: false,
            hits: AtomicU64::new(0),
            insertions: 0,
        }
    }

    /// Number of schedules served entirely from the cache (no execution).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Estimated bytes held by the trie.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of schedules inserted.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Whether the byte cap has been reached (insertions have stopped).
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Every buggy schedule memoized in the trie: the full decision path and
    /// the bug its terminal recorded, in deterministic (path-lexicographic)
    /// order. This is the raw material of the persistent bug corpus — see
    /// [`crate::corpus`].
    pub fn buggy_schedules(&self) -> Vec<(Vec<ThreadId>, Bug)> {
        let mut found = Vec::new();
        if self.nodes.is_empty() {
            return found;
        }
        let mut path: Vec<ThreadId> = Vec::new();
        // Iterative DFS: (node index, next edge ordinal to visit).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
            let next = match &self.nodes[node] {
                Node::Forced { op, next } => {
                    if *edge == 0 {
                        next.map(|l| (op.thread, l))
                    } else {
                        None
                    }
                }
                Node::Choice { edges, .. } => edges.get(*edge).map(|&(t, l)| (t, l)),
            };
            *edge += 1;
            match next {
                Some((t, Link::Interior(n))) => {
                    path.push(t);
                    stack.push((n as usize, 0));
                }
                Some((t, Link::Terminal(d))) => {
                    let digest = &self.terminals[d as usize];
                    if digest.is_buggy() {
                        path.push(t);
                        found.push((
                            path.clone(),
                            digest.bug.clone().expect("buggy digest has a bug"),
                        ));
                        path.pop();
                    }
                }
                None => {
                    stack.pop();
                    path.pop();
                }
            }
        }
        found.sort_by(|a, b| a.0.cmp(&b.0));
        found
    }

    /// Walk the trie, feeding the scheduler cached scheduling points, until
    /// the decision path either reaches a cached terminal (hit) or leaves the
    /// trie (miss). On a hit the optional trace receives the full decision
    /// path and per-step enabled counts. Takes only a shared borrow so
    /// concurrent workers can walk one cache in parallel.
    fn walk(&self, scheduler: &mut BoundedDfs, mut trace: Option<&mut VisitTrace>) -> Walk {
        if self.nodes.is_empty() {
            return Walk::Miss {
                depth: 0,
                record: !self.full,
            };
        }
        // Scratch point reused to present Forced nodes to the scheduler. The
        // synthesized fields are chosen so every scheduler-visible quantity
        // matches the real point: `round_robin_choice` returns the single
        // enabled thread and both bound policies price it at zero, exactly as
        // they do on the real forced point.
        let mut scratch = SchedulingPoint {
            enabled: Vec::with_capacity(1),
            last: None,
            last_enabled: true,
            num_threads: 1,
            step_index: 0,
            pending: Vec::with_capacity(1),
        };
        let mut cursor = 0usize;
        let mut depth = 0usize;
        loop {
            let next = match &self.nodes[cursor] {
                Node::Forced { op, next } => {
                    scratch.enabled.clear();
                    scratch.enabled.push(op.thread);
                    scratch.pending.clear();
                    scratch.pending.push(*op);
                    scratch.last = Some(op.thread);
                    scratch.num_threads = op.thread.index() + 1;
                    scratch.step_index = depth;
                    let chosen = scheduler.choose(&scratch);
                    debug_assert_eq!(chosen, op.thread, "forced node must pick its only thread");
                    if let Some(t) = trace.as_deref_mut() {
                        t.schedule.push(chosen);
                        t.enabled_counts.push(1);
                    }
                    if chosen == op.thread {
                        *next
                    } else {
                        None
                    }
                }
                Node::Choice { point, edges } => {
                    let chosen = scheduler.choose(point);
                    if let Some(t) = trace.as_deref_mut() {
                        t.schedule.push(chosen);
                        t.enabled_counts.push(point.enabled.len() as u32);
                    }
                    edges.iter().find(|(d, _)| *d == chosen).map(|(_, l)| *l)
                }
            };
            match next {
                Some(Link::Interior(n)) => {
                    cursor = n as usize;
                    depth += 1;
                }
                Some(Link::Terminal(d)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Walk::Hit(self.terminals[d as usize].clone());
                }
                None => {
                    // The caller re-runs the schedule for real and rebuilds
                    // the trace from the outcome.
                    if let Some(t) = trace.as_deref_mut() {
                        t.schedule.clear();
                        t.enabled_counts.clear();
                    }
                    return Walk::Miss {
                        depth: depth + 1,
                        record: !self.full,
                    };
                }
            }
        }
    }

    /// Insert a completed execution: `schedule` is its full decision path,
    /// `recorded` the point summaries from `miss_depth` on (the prefix below
    /// `miss_depth` is already in the trie — or, under a shared cache, may
    /// have been inserted by another worker in the meantime).
    ///
    /// The byte cap is checked after every charged node, not once per suffix:
    /// the moment the estimate reaches `max_bytes` the insert stops, so the
    /// cache overshoots by at most the node that crossed the line. A
    /// truncated path (interior nodes without their terminal) is valid trie
    /// content — walks miss at its end and fall back to a real execution.
    fn insert(
        &mut self,
        schedule: &[ThreadId],
        miss_depth: usize,
        recorded: &[RecordedStep],
        digest: TerminalDigest,
    ) {
        if self.full || schedule.is_empty() {
            return;
        }
        debug_assert_eq!(miss_depth + recorded.len(), schedule.len());
        if self.nodes.is_empty() {
            debug_assert_eq!(miss_depth, 0);
            let (node, enabled) = match &recorded[0] {
                RecordedStep::Forced(op) => (
                    Node::Forced {
                        op: *op,
                        next: None,
                    },
                    1,
                ),
                RecordedStep::Choice(point) => Node::of_point(point),
            };
            self.bytes += node_weight(enabled);
            self.nodes.push(node);
            if self.bytes >= self.max_bytes {
                self.full = true;
                return;
            }
        }
        let mut cursor = 0usize;
        let mut terminal = Some(digest);
        for (i, &t) in schedule.iter().enumerate() {
            let is_last = i + 1 == schedule.len();
            match self.nodes[cursor].edge(t) {
                Some(Link::Interior(n)) => {
                    debug_assert!(!is_last, "an interior edge cannot end a schedule");
                    cursor = n as usize;
                }
                Some(Link::Terminal(_)) => {
                    // Another worker inserted the same schedule concurrently.
                    debug_assert!(is_last, "a terminal edge cannot continue a schedule");
                    return;
                }
                None => {
                    let link = if is_last {
                        let d = self.terminals.len() as u32;
                        self.terminals
                            .push(terminal.take().expect("terminal digest consumed twice"));
                        self.bytes += TERMINAL_BYTES;
                        Link::Terminal(d)
                    } else {
                        let depth = i + 1;
                        debug_assert!(depth >= miss_depth, "missing summary for cached prefix");
                        let (node, enabled) = match &recorded[depth - miss_depth] {
                            RecordedStep::Forced(op) => (
                                Node::Forced {
                                    op: *op,
                                    next: None,
                                },
                                1,
                            ),
                            RecordedStep::Choice(point) => Node::of_point(point),
                        };
                        self.bytes += node_weight(enabled);
                        let n = self.nodes.len() as u32;
                        self.nodes.push(node);
                        Link::Interior(n)
                    };
                    match &mut self.nodes[cursor] {
                        Node::Forced { op, next } => {
                            debug_assert_eq!(t, op.thread);
                            *next = Some(link);
                        }
                        Node::Choice { edges, .. } => edges.push((t, link)),
                    }
                    if let Link::Interior(n) = link {
                        cursor = n as usize;
                    }
                    if self.bytes >= self.max_bytes {
                        self.full = true;
                        if !is_last {
                            // Truncated: the rest of the suffix (and its
                            // terminal) is dropped.
                            return;
                        }
                    }
                }
            }
        }
        self.insertions += 1;
    }
}

/// How a driver reaches its schedule cache, if any.
pub enum CacheHandle<'a> {
    /// Caching disabled: every schedule executes for real.
    Off,
    /// A cache owned by the (serial) driver.
    Local(&'a mut ScheduleCache),
    /// A cache shared between parallel bound-level workers. Lookups and
    /// insertions are transparent memo operations, so sharing never changes
    /// any result — only how many executions are physically skipped. Walks
    /// take the read lock (they run concurrently; the hit counter is
    /// atomic), insertions the write lock.
    Shared(&'a RwLock<ScheduleCache>),
}

impl CacheHandle<'_> {
    // Lock poisoning is recovered, not propagated: the cache is a pure memo,
    // so the worst a panic-interrupted writer can leave behind is a trie that
    // memoizes less than it could — statistics come from per-driver mirrors,
    // never from the live trie. The harness additionally resets a shared
    // cache to its pristine baseline after catching an engine panic
    // ([`SharedCache::restore_baseline`]), so one blown-up technique cannot
    // poison the rest of the study.
    fn read<R>(&self, f: impl FnOnce(&ScheduleCache) -> R) -> Option<R> {
        match self {
            CacheHandle::Off => None,
            CacheHandle::Local(cache) => Some(f(cache)),
            CacheHandle::Shared(lock) => {
                Some(f(&lock.read().unwrap_or_else(PoisonError::into_inner)))
            }
        }
    }

    fn write<R>(&mut self, f: impl FnOnce(&mut ScheduleCache) -> R) -> Option<R> {
        match self {
            CacheHandle::Off => None,
            CacheHandle::Local(cache) => Some(f(cache)),
            CacheHandle::Shared(lock) => {
                Some(f(&mut lock.write().unwrap_or_else(PoisonError::into_inner)))
            }
        }
    }
}

/// How one schedule was completed by [`run_begun_schedule`].
pub enum ScheduleRun {
    /// Served entirely from the cache; the program was **not** executed.
    Served(TerminalDigest),
    /// Executed for real (cache miss, cache full, or caching off).
    Executed(ExecutionOutcome),
}

impl ScheduleRun {
    /// The terminal digest of the completed schedule, computed from the
    /// outcome when it was executed — one accessor for all of the
    /// per-schedule summary fields, so callers cannot drift between the
    /// served and executed representations.
    pub fn digest(&self) -> TerminalDigest {
        match self {
            ScheduleRun::Served(digest) => digest.clone(),
            ScheduleRun::Executed(outcome) => TerminalDigest::of(outcome),
        }
    }

    /// Cost of the completed schedule under the given bound kind — from the
    /// recorded steps when it was executed, from the digest when it was
    /// served (the two always agree: the digest was computed from the same
    /// deterministic execution).
    pub fn cost(&self, kind: crate::bounds::BoundKind) -> u32 {
        use crate::bounds::BoundKind;
        match (self, kind) {
            (_, BoundKind::None) => 0,
            (ScheduleRun::Executed(o), BoundKind::Preemption) => o.preemption_count(),
            (ScheduleRun::Executed(o), BoundKind::Delay) => o.delay_count(),
            (ScheduleRun::Served(d), BoundKind::Preemption) => d.preemptions,
            (ScheduleRun::Served(d), BoundKind::Delay) => d.delays,
        }
    }
}

/// The visit-order footprint of one schedule: its full decision path and the
/// per-step enabled-thread counts. The parallel driver ships these to the
/// fold so it can replay the serial cache deterministically (see
/// `crate::parallel`).
#[derive(Debug, Default, Clone)]
pub struct VisitTrace {
    /// The decision at every step, in order.
    pub schedule: Vec<ThreadId>,
    /// Number of enabled threads at every step (determines the byte weight a
    /// fresh trie node for that step is charged).
    pub enabled_counts: Vec<u32>,
}

impl VisitTrace {
    fn fill_from(&mut self, outcome: &ExecutionOutcome) {
        self.schedule.clear();
        self.enabled_counts.clear();
        for step in &outcome.steps {
            self.schedule.push(step.thread);
            self.enabled_counts.push(step.enabled.len() as u32);
        }
    }
}

/// Complete the schedule the scheduler has just begun (i.e.
/// [`BoundedDfs::begin_execution`] returned `true`): serve it from the cache
/// when the whole decision path is memoized, otherwise execute it for real —
/// replaying the cached prefix against the live program — and insert the new
/// suffix. With `want_trace` the visit footprint is returned as well.
pub fn run_begun_schedule(
    exec: &mut Execution<'_>,
    scheduler: &mut BoundedDfs,
    mut cache: CacheHandle<'_>,
    want_trace: bool,
) -> (ScheduleRun, Option<VisitTrace>) {
    let mut trace = if want_trace {
        Some(VisitTrace::default())
    } else {
        None
    };
    let walk = cache
        .read(|c| c.walk(scheduler, trace.as_mut()))
        .unwrap_or(Walk::Miss {
            depth: 0,
            record: false,
        });
    let (miss_depth, record) = match walk {
        Walk::Hit(digest) => {
            scheduler.finish_cached_execution();
            return (ScheduleRun::Served(digest), trace);
        }
        Walk::Miss { depth, record } => (depth, record),
    };
    // The walk may have consumed part (or, with an empty cache, none) of the
    // replay prefix; rewind the scheduler's cursor and run the program for
    // real — the stack replay machinery re-issues the same decisions against
    // the live scheduling points.
    scheduler.rewind_replay();
    exec.reset();
    let mut recorded: Vec<RecordedStep> = Vec::new();
    let mut step = 0usize;
    let outcome = exec.run(
        &mut |point| {
            if record && step >= miss_depth {
                recorded.push(RecordedStep::of(point));
            }
            step += 1;
            scheduler.choose(point)
        },
        &mut NoopObserver,
    );
    scheduler.end_execution(&outcome);
    if record {
        let digest = TerminalDigest::of(&outcome);
        let schedule = outcome.schedule();
        cache.write(|c| c.insert(&schedule, miss_depth, &recorded, digest));
    }
    if let Some(t) = trace.as_mut() {
        t.fill_from(&outcome);
    }
    (ScheduleRun::Executed(outcome), trace)
}

/// A structure-only mirror of [`ScheduleCache`] used by the parallel fold:
/// it tracks which decision paths the serial cache would hold — and the hit
/// and byte counters it would report — without storing any point data. The
/// fold replays the per-level visit traces through this in bound order, so
/// the parallel `cache_hits` / `cache_bytes` / `executions` statistics are
/// bit-identical to the serial driver's no matter how the speculative level
/// workers actually interleaved their (shared, opportunistic) cache use.
#[derive(Debug, Clone)]
pub struct CacheReplay {
    /// Edge lists per node; `None` target marks a terminal edge.
    nodes: Vec<Vec<(ThreadId, Option<u32>)>>,
    bytes: u64,
    max_bytes: u64,
    full: bool,
    hits: u64,
}

impl CacheReplay {
    /// A replay mirror with the same byte cap as the real cache.
    pub fn new(max_bytes: u64) -> Self {
        CacheReplay {
            nodes: Vec::new(),
            bytes: 0,
            max_bytes,
            full: false,
            hits: 0,
        }
    }

    /// A structure-only snapshot of an existing cache: same decision paths,
    /// same byte estimate and fullness, hit counter reset to zero. A driver
    /// resuming from a loaded corpus replays its own visit stream through
    /// such a snapshot so its reported `executions` / `cache_hits` /
    /// `cache_bytes` depend only on the loaded baseline and the (serial)
    /// visit order — not on how concurrent techniques sharing the live cache
    /// happened to interleave.
    pub fn from_cache(cache: &ScheduleCache) -> Self {
        let nodes = cache
            .nodes
            .iter()
            .map(|node| match node {
                Node::Forced { op, next } => match next {
                    None => Vec::new(),
                    Some(Link::Interior(n)) => vec![(op.thread, Some(*n))],
                    Some(Link::Terminal(_)) => vec![(op.thread, None)],
                },
                Node::Choice { edges, .. } => edges
                    .iter()
                    .map(|&(t, link)| match link {
                        Link::Interior(n) => (t, Some(n)),
                        Link::Terminal(_) => (t, None),
                    })
                    .collect(),
            })
            .collect();
        CacheReplay {
            nodes,
            bytes: cache.bytes,
            max_bytes: cache.max_bytes,
            full: cache.full,
            hits: 0,
        }
    }

    /// Hits the serial cache would have reported so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Bytes the serial cache would have charged so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether the mirrored byte cap has been reached (insertions have
    /// stopped, exactly as [`ScheduleCache::is_full`] would report).
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Replay one visited schedule. Returns `true` when the serial cache
    /// would have served it (a hit: no program execution), `false` when the
    /// serial driver would have executed it (the path is then inserted,
    /// unless the byte cap has been reached — mirroring
    /// `ScheduleCache::insert` exactly).
    pub fn apply(&mut self, schedule: &[ThreadId], enabled_counts: &[u32]) -> bool {
        debug_assert_eq!(schedule.len(), enabled_counts.len());
        // Walk as far as the trie goes.
        let mut cursor = 0usize;
        let mut matched = 0usize;
        if !self.nodes.is_empty() {
            for (i, &t) in schedule.iter().enumerate() {
                let is_last = i + 1 == schedule.len();
                match self.nodes[cursor].iter().find(|(d, _)| *d == t) {
                    Some((_, Some(n))) => {
                        debug_assert!(!is_last);
                        cursor = *n as usize;
                        matched = i + 1;
                    }
                    Some((_, None)) => {
                        debug_assert!(is_last);
                        self.hits += 1;
                        return true;
                    }
                    None => break,
                }
            }
        }
        // Miss: the serial driver executes the schedule and inserts it.
        if self.full || schedule.is_empty() {
            return false;
        }
        if self.nodes.is_empty() {
            self.bytes += node_weight(enabled_counts[0] as usize);
            self.nodes.push(Vec::new());
            cursor = 0;
            matched = 0;
            if self.bytes >= self.max_bytes {
                self.full = true;
                return false;
            }
        }
        for (i, &t) in schedule.iter().enumerate().skip(matched) {
            let is_last = i + 1 == schedule.len();
            if is_last {
                self.nodes[cursor].push((t, None));
                self.bytes += TERMINAL_BYTES;
            } else {
                self.bytes += node_weight(enabled_counts[i + 1] as usize);
                let n = self.nodes.len() as u32;
                self.nodes.push(Vec::new());
                self.nodes[cursor].push((t, Some(n)));
                cursor = n as usize;
            }
            if self.bytes >= self.max_bytes {
                // Same per-node cap as [`ScheduleCache::insert`]: stop after
                // the node that crossed the line.
                self.full = true;
                break;
            }
        }
        false
    }
}

/// A schedule cache shared across the techniques of one benchmark (and, when
/// resuming, loaded from a persistent corpus — see [`crate::corpus`]).
///
/// The `live` trie is the real memo every driver walks and inserts into; the
/// `baseline` is a frozen [`CacheReplay`] snapshot taken at construction.
/// Each corpus-mode driver clones the baseline via [`SharedCache::mirror`]
/// and replays its own visit stream through the clone, reporting the
/// mirror's hit/byte counters. Counters therefore depend only on the loaded
/// baseline and each technique's deterministic visit order, never on how the
/// techniques' live-cache operations interleaved — the same trick PR 3's
/// parallel fold uses, lifted one level up.
#[derive(Debug)]
pub struct SharedCache {
    live: RwLock<ScheduleCache>,
    baseline: CacheReplay,
    /// A full copy of the load-time trie (digests included, unlike the
    /// structure-only `baseline`), kept so a panic-poisoned live trie can be
    /// rolled back to known-good contents ([`SharedCache::restore_baseline`]).
    pristine: ScheduleCache,
}

impl SharedCache {
    /// Wrap an existing (possibly freshly loaded) cache, freezing its
    /// current contents as the accounting baseline.
    pub fn of(cache: ScheduleCache) -> Self {
        let baseline = CacheReplay::from_cache(&cache);
        let pristine = cache.clone();
        SharedCache {
            live: RwLock::new(cache),
            baseline,
            pristine,
        }
    }

    /// An empty shared cache with the given byte cap.
    pub fn new(max_bytes: u64) -> Self {
        SharedCache::of(ScheduleCache::new(max_bytes))
    }

    /// The live trie, for walking/inserting behind the lock.
    pub fn live(&self) -> &RwLock<ScheduleCache> {
        &self.live
    }

    /// A fresh accounting mirror seeded with the load-time baseline.
    pub fn mirror(&self) -> CacheReplay {
        self.baseline.clone()
    }

    /// Run `f` on the live trie under the read lock (e.g. to serialize it).
    /// A poisoned lock is recovered, not propagated (see [`CacheHandle`]).
    pub fn with_live<R>(&self, f: impl FnOnce(&ScheduleCache) -> R) -> R {
        f(&self.live.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Roll the live trie back to the pristine load-time contents and clear
    /// any lock poisoning. The harness calls this after catching an engine
    /// panic: a writer that unwound mid-insert may have left the trie
    /// structurally inconsistent, and a corrupt memo — unlike a merely stale
    /// one — could serve wrong digests. Memoized work from after load time is
    /// lost (a pure perf cost); subsequent techniques see exactly the
    /// baseline, so their mirror-reported counters stay correct.
    pub fn restore_baseline(&self) {
        let mut live = self.live.write().unwrap_or_else(PoisonError::into_inner);
        *live = self.pristine.clone();
        self.live.clear_poison();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{BoundKind, DelayBound};
    use crate::dfs::BoundedDfs;
    use sct_ir::prelude::*;
    use sct_runtime::ExecConfig;

    /// Figure 1 of the paper.
    fn figure1() -> Program {
        let mut p = ProgramBuilder::new("figure1");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let z = p.global("z", 0);
        let t1 = p.thread("t1", |b| {
            b.store(x, 1);
            b.store(y, 1);
        });
        let t2 = p.thread("t2", |b| {
            b.store(z, 1);
        });
        let t3 = p.thread("t3", |b| {
            let rx = b.local("rx");
            let ry = b.local("ry");
            b.load(x, rx);
            b.load(y, ry);
            b.assert_cond(eq(rx, ry), "x == y");
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
            b.spawn(t3);
        });
        p.build().unwrap()
    }

    /// Drive one bound level through [`run_begun_schedule`], collecting the
    /// per-schedule (cost, buggy, fingerprint) triples of non-redundant
    /// schedules and the number of real executions.
    fn run_level(
        program: &Program,
        bound: u32,
        por: bool,
        cache: Option<&mut ScheduleCache>,
    ) -> (Vec<(u32, bool, u64)>, u64) {
        let config = ExecConfig::all_visible();
        let mut exec = Execution::new_shared(program, &config);
        let mut scheduler = BoundedDfs::new(Box::new(DelayBound), bound).with_sleep_sets(por);
        let mut seen = Vec::new();
        let mut executed = 0u64;
        let mut handle = match cache {
            Some(c) => CacheHandle::Local(c),
            None => CacheHandle::Off,
        };
        while scheduler.begin_execution() {
            let borrowed = match &mut handle {
                CacheHandle::Off => CacheHandle::Off,
                CacheHandle::Local(c) => CacheHandle::Local(c),
                CacheHandle::Shared(m) => CacheHandle::Shared(m),
            };
            let (run, _) = run_begun_schedule(&mut exec, &mut scheduler, borrowed, false);
            if matches!(run, ScheduleRun::Executed(_)) {
                executed += 1;
            }
            if scheduler.current_execution_redundant() {
                continue;
            }
            let cost = run.cost(BoundKind::Delay);
            let digest = run.digest();
            seen.push((cost, digest.is_buggy(), digest.fingerprint));
        }
        assert!(scheduler.is_complete());
        (seen, executed)
    }

    #[test]
    fn second_level_serves_the_covered_interior_from_the_cache() {
        let prog = figure1();
        let mut cache = ScheduleCache::default();
        let (plain0, exec0) = run_level(&prog, 0, false, None);
        let (cached0, cexec0) = run_level(&prog, 0, false, Some(&mut cache));
        assert_eq!(plain0, cached0, "level 0 must be unchanged by the cache");
        assert_eq!(exec0, cexec0, "an empty cache cannot serve anything");
        assert_eq!(cache.hits(), 0);
        assert!(cache.insertions() > 0 && cache.bytes() > 0);

        let (plain1, exec1) = run_level(&prog, 1, false, None);
        let (cached1, cexec1) = run_level(&prog, 1, false, Some(&mut cache));
        assert_eq!(plain1, cached1, "cached level 1 diverged from uncached");
        assert_eq!(
            cache.hits(),
            exec0,
            "every level-0 schedule is interior at level 1 and must be served"
        );
        assert_eq!(cexec1 + cache.hits(), exec1);
        assert!(cexec1 < exec1, "the cache saved no executions");
    }

    #[test]
    fn cache_walks_agree_with_real_executions_under_sleep_sets() {
        let prog = figure1();
        let mut cache = ScheduleCache::default();
        for bound in 0..3 {
            let (plain, _) = run_level(&prog, bound, true, None);
            let (cached, _) = run_level(&prog, bound, true, Some(&mut cache));
            assert_eq!(plain, cached, "bound {bound} diverged under POR");
        }
        assert!(cache.hits() > 0);
    }

    #[test]
    fn a_full_cache_stops_growing_but_keeps_serving_and_stays_correct() {
        let prog = figure1();
        // A one-byte cap: the very first node crosses the line, the insert is
        // truncated there (no terminal ever lands) and the door closes.
        let mut cache = ScheduleCache::new(1);
        let (plain0, _) = run_level(&prog, 0, false, None);
        let (cached0, _) = run_level(&prog, 0, false, Some(&mut cache));
        assert_eq!(plain0, cached0);
        assert!(cache.is_full());
        assert_eq!(
            cache.insertions(),
            0,
            "a truncated insert must not count as an insertion"
        );
        let frozen = cache.bytes();
        assert!(
            frozen <= 1 + node_weight(1).max(node_weight(8)).max(TERMINAL_BYTES),
            "cap 1 overshot by more than one node: {frozen}"
        );

        let (plain1, _) = run_level(&prog, 1, false, None);
        let (cached1, _) = run_level(&prog, 1, false, Some(&mut cache));
        assert_eq!(plain1, cached1, "a full cache must still be transparent");
        assert_eq!(cache.bytes(), frozen, "a full cache must not grow");
        assert_eq!(cache.hits(), 0, "a terminal-less trie has nothing to serve");
    }

    /// Satellite: the byte cap is enforced per node during insert, so the
    /// estimate overshoots `max_bytes` by at most the single node that
    /// crossed the line — for every cap, while staying transparent and with
    /// the [`CacheReplay`] mirror bit-identical on bytes and hits.
    #[test]
    fn tiny_caps_overshoot_by_at_most_one_node_and_mirror_exactly() {
        let prog = figure1();
        let config = ExecConfig::all_visible();
        let (plain, _) = run_level(&prog, 2, false, None);
        // Largest single charge possible: a choice node over every thread the
        // program can enable, or a terminal digest.
        let worst_node = node_weight(8).max(TERMINAL_BYTES);
        for cap in [1u64, 57, 96, 112, 200, 500, 1_000, 5_000, 20_000] {
            let mut cache = ScheduleCache::new(cap);
            let mut replay = CacheReplay::new(cap);
            let mut exec = Execution::new_shared(&prog, &config);
            for bound in 0..3u32 {
                let mut scheduler = BoundedDfs::new(Box::new(DelayBound), bound);
                while scheduler.begin_execution() {
                    let (_, trace) = run_begun_schedule(
                        &mut exec,
                        &mut scheduler,
                        CacheHandle::Local(&mut cache),
                        true,
                    );
                    let trace = trace.expect("trace requested");
                    replay.apply(&trace.schedule, &trace.enabled_counts);
                }
            }
            assert!(
                cache.bytes() <= cap + worst_node,
                "cap {cap} overshot: bytes {} > {cap} + {worst_node}",
                cache.bytes()
            );
            assert_eq!(
                replay.bytes(),
                cache.bytes(),
                "mirror bytes drifted at cap {cap}"
            );
            assert_eq!(
                replay.hits(),
                cache.hits(),
                "mirror hits drifted at cap {cap}"
            );
            // And the capped cache is still transparent.
            let mut capped = ScheduleCache::new(cap);
            let (cached, _) = run_level(&prog, 2, false, Some(&mut capped));
            assert_eq!(plain, cached, "cap {cap} changed observable results");
        }
    }

    #[test]
    fn a_mirror_snapshot_of_a_cache_replays_like_the_cache_it_copied() {
        let prog = figure1();
        let mut cache = ScheduleCache::default();
        let (_, _) = run_level(&prog, 0, false, Some(&mut cache));
        let shared = SharedCache::of(cache);
        let mut mirror = shared.mirror();
        assert_eq!(mirror.hits(), 0, "snapshot must reset the hit counter");
        assert_eq!(mirror.bytes(), shared.with_live(|c| c.bytes()));

        // Replaying the level-0 visit stream through the snapshot hits every
        // schedule the live cache can serve and misses the rest, exactly as
        // the live cache does.
        let config = ExecConfig::all_visible();
        let mut exec = Execution::new_shared(&prog, &config);
        let mut scheduler = BoundedDfs::new(Box::new(DelayBound), 1);
        let (mut live_hits, mut mirror_hits) = (0u64, 0u64);
        while scheduler.begin_execution() {
            let before = shared.with_live(|c| c.hits());
            let (_, trace) = run_begun_schedule(
                &mut exec,
                &mut scheduler,
                CacheHandle::Shared(shared.live()),
                true,
            );
            live_hits += shared.with_live(|c| c.hits()) - before;
            let trace = trace.expect("trace requested");
            if mirror.apply(&trace.schedule, &trace.enabled_counts) {
                mirror_hits += 1;
            }
        }
        assert!(live_hits > 0, "level 1 must serve the level-0 interior");
        assert_eq!(mirror_hits, live_hits, "mirror and live cache disagree");
        assert_eq!(mirror.bytes(), shared.with_live(|c| c.bytes()));
    }

    /// A technique unit panicking while it holds the live write lock poisons
    /// the `RwLock`; the recovery path must bring the shared trie back to
    /// its load-time contents, clear the poison, and keep the mirror
    /// snapshot consistent with the restored live cache.
    #[test]
    fn restore_baseline_recovers_a_poisoned_live_lock_to_the_loaded_contents() {
        let prog = figure1();
        let mut cache = ScheduleCache::default();
        let (_, _) = run_level(&prog, 0, false, Some(&mut cache));
        let loaded_bytes = cache.bytes();
        assert!(loaded_bytes > 0, "the level-0 interior must be non-empty");
        let shared = SharedCache::of(cache);

        let unit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut live = shared.live().write().unwrap();
            *live = ScheduleCache::new(1); // torn mid-update state
            panic!("engine died mid-insertion");
        }));
        assert!(unit.is_err());
        assert!(shared.live().is_poisoned());

        shared.restore_baseline();
        assert!(!shared.live().is_poisoned(), "recovery must clear poison");
        assert_eq!(shared.with_live(|c| c.bytes()), loaded_bytes);
        assert_eq!(
            shared.mirror().bytes(),
            loaded_bytes,
            "the mirror must still describe the restored live contents"
        );
    }

    #[test]
    fn replay_mirror_reproduces_hits_and_bytes_of_the_real_cache() {
        let prog = figure1();
        let config = ExecConfig::all_visible();
        let mut exec = Execution::new_shared(&prog, &config);
        let mut cache = ScheduleCache::default();
        let mut replay = CacheReplay::new(DEFAULT_CACHE_BYTES);
        for bound in 0..3u32 {
            let mut scheduler = BoundedDfs::new(Box::new(DelayBound), bound);
            while scheduler.begin_execution() {
                let (_, trace) = run_begun_schedule(
                    &mut exec,
                    &mut scheduler,
                    CacheHandle::Local(&mut cache),
                    true,
                );
                let trace = trace.expect("trace requested");
                replay.apply(&trace.schedule, &trace.enabled_counts);
            }
        }
        assert!(cache.hits() > 0);
        assert_eq!(replay.hits(), cache.hits(), "replay hit count drifted");
        assert_eq!(replay.bytes(), cache.bytes(), "replay byte count drifted");
    }
}

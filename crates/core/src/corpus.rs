//! Persistent schedule corpus ("campaign mode").
//!
//! The PR 3 [`ScheduleCache`] trie memoizes the deterministic program, but it
//! dies with the process: every study re-explores from scratch. This module
//! makes the trie a first-class on-disk artifact so repeated studies *resume*
//! instead of restart:
//!
//! * a **versioned, endian-stable binary format** for the trie
//!   ([`cache_to_bytes`] / [`cache_from_bytes`]): interior nodes (including
//!   the compressed single-enabled representation), terminal digests and the
//!   byte accounting round-trip exactly, and every load is validated —
//!   corrupted, truncated or wrong-version files fail with a [`CorpusError`],
//!   never a panic or a silent cold start;
//! * a **keyed** header: the file records a fingerprint of the program name
//!   and [`ExecConfig`] it was built against ([`corpus_key`]), because a trie
//!   is only a valid memo of the exact deterministic program it observed —
//!   resuming against a different configuration is an error, not a guess;
//! * a **replayable bug corpus**: every buggy terminal in the trie is
//!   distilled to a *minimized decision prefix* ([`minimize_prefix`], binary
//!   search against the deterministic program) and saved next to the trie;
//!   [`replay_prefix`] reproduces each bug in exactly one execution (follow
//!   the prefix, then fall back to the deterministic round-robin scheduler).
//!
//! [`Corpus`] manages the on-disk directory (one trie + one bug file per
//! benchmark, written atomically via a rename so a kill mid-save never leaves
//! a half-written artifact). Saves are also *durable*: the temporary file is
//! `sync_all`ed before the rename and the parent directory is fsynced after
//! it, so a power cut right after a reported save cannot roll the artifact
//! back — and transient I/O errors are retried a bounded number of times
//! before they surface. A crash between write and rename leaves a stale
//! `.tmp` file, which [`Corpus::open`] sweeps away (it was never published,
//! so it is garbage, never data). The drivers consume a loaded trie through
//! [`SharedCache`](crate::cache::SharedCache) — see `crate::explore` — which
//! keeps the resumed statistics deterministic at any worker count.

use crate::cache::{node_weight, Link, Node, ScheduleCache, TerminalDigest, TERMINAL_BYTES};
use crate::fault::{self, FaultKind};
use sct_ir::{Loc, Program, TemplateId};
use sct_runtime::{
    Bug, ExecConfig, Execution, ExecutionOutcome, NoopObserver, PendingOp, SchedulingPoint,
    ThreadId, VisibilityMode,
};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// On-disk format version. Bump on any incompatible layout change; loads of
/// other versions fail with [`CorpusError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 1;

const CACHE_MAGIC: &[u8; 4] = b"SCTC";
const BUGS_MAGIC: &[u8; 4] = b"SCTB";

/// Why a corpus artifact could not be read or written.
#[derive(Debug)]
pub enum CorpusError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic { path: PathBuf },
    /// The file's format version is not supported by this build.
    UnsupportedVersion { path: PathBuf, found: u32 },
    /// The file was built against a different program/configuration.
    KeyMismatch {
        path: PathBuf,
        expected: u64,
        found: u64,
    },
    /// The file is structurally invalid (truncated, bad indices, accounting
    /// mismatch, ...).
    Corrupted { path: PathBuf, detail: String },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus i/o error: {e}"),
            CorpusError::BadMagic { path } => {
                write!(f, "{}: not a schedule-corpus file (bad magic)", path.display())
            }
            CorpusError::UnsupportedVersion { path, found } => write!(
                f,
                "{}: unsupported corpus format version {found} (this build supports {FORMAT_VERSION})",
                path.display()
            ),
            CorpusError::KeyMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: corpus was built for a different program/configuration \
                 (key {found:#018x}, expected {expected:#018x}); refusing to resume from it",
                path.display()
            ),
            CorpusError::Corrupted { path, detail } => {
                write!(f, "{}: corrupted corpus file: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}

/// Fingerprint of the (program, execution configuration) pair a corpus
/// artifact is valid for. FNV-1a over the name, the visibility mode (racy
/// locations sorted, so the hash is set-order independent) and the execution
/// limits — everything that changes which scheduling points the deterministic
/// program produces.
pub fn corpus_key(program_name: &str, config: &ExecConfig) -> u64 {
    let mut h = Fnv::new();
    h.bytes(program_name.as_bytes());
    match &config.visibility {
        VisibilityMode::SyncOnly => h.u64(0),
        VisibilityMode::AllSharedAccesses => h.u64(1),
        VisibilityMode::RacyOnly(locs) => {
            h.u64(2);
            let mut sorted: Vec<Loc> = locs.iter().copied().collect();
            sorted.sort();
            h.u64(sorted.len() as u64);
            for loc in sorted {
                h.u64(loc.template.0 as u64);
                h.u64(loc.pc as u64);
            }
        }
    }
    h.u64(config.max_steps as u64);
    h.u64(config.max_invisible_ops_per_step as u64);
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Little-endian byte stream helpers.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

type Decode<T> = Result<T, String>;

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Decode<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated at byte {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Decode<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Decode<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Decode<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Decode<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Length prefix for a collection about to be decoded: bounded by the
    /// bytes actually remaining so a corrupted length fails fast instead of
    /// attempting a huge allocation.
    fn len(&mut self, min_item_bytes: usize) -> Decode<usize> {
        let n = self.u64()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_item_bytes.max(1)) > remaining {
            return Err(format!(
                "length {n} at byte {} exceeds remaining {remaining} bytes",
                self.pos
            ));
        }
        Ok(n)
    }
    fn str(&mut self) -> Decode<String> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid utf-8 string".to_string())
    }
    fn bool(&mut self) -> Decode<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("invalid bool byte {v}")),
        }
    }
    fn finish(&self) -> Decode<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after the last field",
                self.buf.len() - self.pos
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Field encoders shared by the trie and bug formats.
// ---------------------------------------------------------------------------

fn put_thread(w: &mut Writer, t: ThreadId) {
    w.u64(t.0 as u64);
}

fn get_thread(r: &mut Reader<'_>) -> Decode<ThreadId> {
    Ok(ThreadId(r.u64()? as usize))
}

fn put_loc(w: &mut Writer, loc: Loc) {
    w.u32(loc.template.0);
    w.u32(loc.pc);
}

fn get_loc(r: &mut Reader<'_>) -> Decode<Loc> {
    Ok(Loc {
        template: TemplateId(r.u32()?),
        pc: r.u32()?,
    })
}

fn put_op(w: &mut Writer, op: &PendingOp) {
    put_thread(w, op.thread);
    put_loc(w, op.loc);
    match op.addr {
        None => w.u8(0),
        Some(a) => {
            w.u8(1);
            w.u64(a as u64);
        }
    }
    w.u8(op.is_write as u8);
}

fn get_op(r: &mut Reader<'_>) -> Decode<PendingOp> {
    let thread = get_thread(r)?;
    let loc = get_loc(r)?;
    let addr = match r.u8()? {
        0 => None,
        1 => Some(r.u64()? as usize),
        v => return Err(format!("invalid option tag {v} for pending-op address")),
    };
    let is_write = r.bool()?;
    Ok(PendingOp {
        thread,
        loc,
        addr,
        is_write,
    })
}

fn put_point(w: &mut Writer, point: &SchedulingPoint) {
    w.u64(point.enabled.len() as u64);
    for &t in &point.enabled {
        put_thread(w, t);
    }
    match point.last {
        None => w.u8(0),
        Some(t) => {
            w.u8(1);
            put_thread(w, t);
        }
    }
    w.u8(point.last_enabled as u8);
    w.u64(point.num_threads as u64);
    w.u64(point.step_index as u64);
    w.u64(point.pending.len() as u64);
    for op in &point.pending {
        put_op(w, op);
    }
}

fn get_point(r: &mut Reader<'_>) -> Decode<SchedulingPoint> {
    let n = r.len(8)?;
    let mut enabled = Vec::with_capacity(n);
    for _ in 0..n {
        enabled.push(get_thread(r)?);
    }
    let last = match r.u8()? {
        0 => None,
        1 => Some(get_thread(r)?),
        v => return Err(format!("invalid option tag {v} for last thread")),
    };
    let last_enabled = r.bool()?;
    let num_threads = r.u64()? as usize;
    let step_index = r.u64()? as usize;
    let n = r.len(18)?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        pending.push(get_op(r)?);
    }
    Ok(SchedulingPoint {
        enabled,
        last,
        last_enabled,
        num_threads,
        step_index,
        pending,
    })
}

fn put_bug(w: &mut Writer, bug: &Bug) {
    match bug {
        Bug::AssertionFailure { thread, loc, msg } => {
            w.u8(0);
            put_thread(w, *thread);
            put_loc(w, *loc);
            w.str(msg);
        }
        Bug::ExplicitFailure { thread, loc, msg } => {
            w.u8(1);
            put_thread(w, *thread);
            put_loc(w, *loc);
            w.str(msg);
        }
        Bug::Deadlock { blocked } => {
            w.u8(2);
            w.u64(blocked.len() as u64);
            for &t in blocked {
                put_thread(w, t);
            }
        }
        Bug::UnlockNotHeld { thread, loc } => {
            w.u8(3);
            put_thread(w, *thread);
            put_loc(w, *loc);
        }
        Bug::UseAfterDestroy { thread, loc } => {
            w.u8(4);
            put_thread(w, *thread);
            put_loc(w, *loc);
        }
        Bug::DestroyBusy { thread, loc } => {
            w.u8(5);
            put_thread(w, *thread);
            put_loc(w, *loc);
        }
        Bug::OutOfBounds {
            thread,
            loc,
            index,
            len,
        } => {
            w.u8(6);
            put_thread(w, *thread);
            put_loc(w, *loc);
            w.i64(*index);
            w.u32(*len);
        }
        Bug::InvalidJoin {
            thread,
            loc,
            target,
        } => {
            w.u8(7);
            put_thread(w, *thread);
            put_loc(w, *loc);
            w.i64(*target);
        }
        Bug::WaitWithoutMutex { thread, loc } => {
            w.u8(8);
            put_thread(w, *thread);
            put_loc(w, *loc);
        }
        Bug::StepLimitExceeded { limit } => {
            w.u8(9);
            w.u64(*limit as u64);
        }
    }
}

fn get_bug(r: &mut Reader<'_>) -> Decode<Bug> {
    Ok(match r.u8()? {
        0 => Bug::AssertionFailure {
            thread: get_thread(r)?,
            loc: get_loc(r)?,
            msg: r.str()?,
        },
        1 => Bug::ExplicitFailure {
            thread: get_thread(r)?,
            loc: get_loc(r)?,
            msg: r.str()?,
        },
        2 => {
            let n = r.len(8)?;
            let mut blocked = Vec::with_capacity(n);
            for _ in 0..n {
                blocked.push(get_thread(r)?);
            }
            Bug::Deadlock { blocked }
        }
        3 => Bug::UnlockNotHeld {
            thread: get_thread(r)?,
            loc: get_loc(r)?,
        },
        4 => Bug::UseAfterDestroy {
            thread: get_thread(r)?,
            loc: get_loc(r)?,
        },
        5 => Bug::DestroyBusy {
            thread: get_thread(r)?,
            loc: get_loc(r)?,
        },
        6 => Bug::OutOfBounds {
            thread: get_thread(r)?,
            loc: get_loc(r)?,
            index: r.i64()?,
            len: r.u32()?,
        },
        7 => Bug::InvalidJoin {
            thread: get_thread(r)?,
            loc: get_loc(r)?,
            target: r.i64()?,
        },
        8 => Bug::WaitWithoutMutex {
            thread: get_thread(r)?,
            loc: get_loc(r)?,
        },
        9 => Bug::StepLimitExceeded {
            limit: r.u64()? as usize,
        },
        v => return Err(format!("invalid bug tag {v}")),
    })
}

fn put_digest(w: &mut Writer, d: &TerminalDigest) {
    match &d.bug {
        None => w.u8(0),
        Some(bug) => {
            w.u8(1);
            put_bug(w, bug);
        }
    }
    w.u8(d.diverged as u8);
    w.u64(d.threads_created as u64);
    w.u64(d.max_enabled as u64);
    w.u64(d.scheduling_points as u64);
    w.u64(d.fingerprint);
    w.u32(d.preemptions);
    w.u32(d.delays);
}

fn get_digest(r: &mut Reader<'_>) -> Decode<TerminalDigest> {
    let bug = match r.u8()? {
        0 => None,
        1 => Some(get_bug(r)?),
        v => return Err(format!("invalid option tag {v} for terminal bug")),
    };
    Ok(TerminalDigest {
        bug,
        diverged: r.bool()?,
        threads_created: r.u64()? as usize,
        max_enabled: r.u64()? as usize,
        scheduling_points: r.u64()? as usize,
        fingerprint: r.u64()?,
        preemptions: r.u32()?,
        delays: r.u32()?,
    })
}

fn put_link(w: &mut Writer, link: Link) {
    match link {
        Link::Interior(n) => {
            w.u8(0);
            w.u32(n);
        }
        Link::Terminal(d) => {
            w.u8(1);
            w.u32(d);
        }
    }
}

fn get_link(r: &mut Reader<'_>) -> Decode<Link> {
    Ok(match r.u8()? {
        0 => Link::Interior(r.u32()?),
        1 => Link::Terminal(r.u32()?),
        v => return Err(format!("invalid link tag {v}")),
    })
}

fn put_node(w: &mut Writer, node: &Node) {
    match node {
        Node::Forced { op, next } => {
            w.u8(0);
            put_op(w, op);
            match next {
                None => w.u8(0),
                Some(link) => {
                    w.u8(1);
                    put_link(w, *link);
                }
            }
        }
        Node::Choice { point, edges } => {
            w.u8(1);
            put_point(w, point);
            w.u64(edges.len() as u64);
            for &(t, link) in edges {
                put_thread(w, t);
                put_link(w, link);
            }
        }
    }
}

fn get_node(r: &mut Reader<'_>) -> Decode<Node> {
    Ok(match r.u8()? {
        0 => {
            let op = get_op(r)?;
            let next = match r.u8()? {
                0 => None,
                1 => Some(get_link(r)?),
                v => return Err(format!("invalid option tag {v} for forced edge")),
            };
            Node::Forced { op, next }
        }
        1 => {
            let point = get_point(r)?;
            let n = r.len(13)?;
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                let t = get_thread(r)?;
                edges.push((t, get_link(r)?));
            }
            Node::Choice { point, edges }
        }
        v => return Err(format!("invalid node tag {v}")),
    })
}

// ---------------------------------------------------------------------------
// Trie file format.
// ---------------------------------------------------------------------------

/// Serialize a trie to the versioned binary format, stamped with `key`.
pub fn cache_to_bytes(cache: &ScheduleCache, key: u64) -> Vec<u8> {
    let mut w = Writer::default();
    w.buf.extend_from_slice(CACHE_MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(key);
    w.u64(cache.max_bytes);
    w.u64(cache.bytes);
    w.u8(cache.full as u8);
    w.u64(cache.nodes.len() as u64);
    for node in &cache.nodes {
        put_node(&mut w, node);
    }
    w.u64(cache.terminals.len() as u64);
    for d in &cache.terminals {
        put_digest(&mut w, d);
    }
    w.buf
}

/// Load a trie from its binary form, verifying magic, version, key and
/// structural integrity (every edge in bounds, byte accounting consistent).
pub fn cache_from_bytes(data: &[u8], key: u64, path: &Path) -> Result<ScheduleCache, CorpusError> {
    let corrupted = |detail: String| CorpusError::Corrupted {
        path: path.to_path_buf(),
        detail,
    };
    let mut r = Reader::new(data);
    let magic = r.take(4).map_err(&corrupted)?;
    if magic != CACHE_MAGIC {
        return Err(CorpusError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let version = r.u32().map_err(&corrupted)?;
    if version != FORMAT_VERSION {
        return Err(CorpusError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let found_key = r.u64().map_err(&corrupted)?;
    if found_key != key {
        return Err(CorpusError::KeyMismatch {
            path: path.to_path_buf(),
            expected: key,
            found: found_key,
        });
    }
    // The session counters (`hits`, `insertions`) are deliberately not part
    // of the format: a loaded trie starts a fresh session over durable
    // content, which also keeps serialize→load→serialize byte-stable.
    let parse = |r: &mut Reader<'_>| -> Decode<ScheduleCache> {
        let max_bytes = r.u64()?;
        let bytes = r.u64()?;
        let full = r.bool()?;
        let n = r.len(2)?;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(get_node(r)?);
        }
        let n = r.len(2)?;
        let mut terminals = Vec::with_capacity(n);
        for _ in 0..n {
            terminals.push(get_digest(r)?);
        }
        r.finish()?;
        let mut cache = ScheduleCache::new(max_bytes);
        cache.nodes = nodes;
        cache.terminals = terminals;
        cache.bytes = bytes;
        cache.full = full;
        Ok(cache)
    };
    let cache = parse(&mut r).map_err(&corrupted)?;
    validate_cache(&cache).map_err(&corrupted)?;
    Ok(cache)
}

/// Structural integrity of a freshly decoded trie: every link lands inside
/// the node/terminal tables, and recomputing the byte estimate from the nodes
/// reproduces the stored accounting (so a bit flip in either is caught).
fn validate_cache(cache: &ScheduleCache) -> Decode<()> {
    let nodes = cache.nodes.len();
    let terminals = cache.terminals.len();
    let check = |link: &Link| -> Decode<()> {
        match *link {
            Link::Interior(n) if (n as usize) < nodes => Ok(()),
            Link::Terminal(d) if (d as usize) < terminals => Ok(()),
            Link::Interior(n) => Err(format!("interior link {n} out of bounds ({nodes} nodes)")),
            Link::Terminal(d) => Err(format!(
                "terminal link {d} out of bounds ({terminals} terminals)"
            )),
        }
    };
    let mut recomputed = 0u64;
    for node in &cache.nodes {
        match node {
            Node::Forced { next, .. } => {
                recomputed += node_weight(1);
                if let Some(link) = next {
                    check(link)?;
                }
            }
            Node::Choice { point, edges } => {
                recomputed += node_weight(point.enabled.len());
                for (_, link) in edges {
                    check(link)?;
                }
            }
        }
    }
    recomputed += terminals as u64 * TERMINAL_BYTES;
    if recomputed != cache.bytes {
        return Err(format!(
            "byte accounting mismatch: stored {} vs recomputed {recomputed}",
            cache.bytes
        ));
    }
    if cache.full != (cache.bytes >= cache.max_bytes) {
        return Err(format!(
            "fullness flag inconsistent: full={} with bytes {} / cap {}",
            cache.full, cache.bytes, cache.max_bytes
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Bug corpus.
// ---------------------------------------------------------------------------

/// One reproducible bug: the minimal decision prefix that triggers it when
/// the remainder of the execution follows the deterministic round-robin
/// scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugRecord {
    /// Minimized decision prefix (see [`minimize_prefix`]).
    pub prefix: Vec<ThreadId>,
    /// The bug [`replay_prefix`] reproduces from that prefix.
    pub bug: Bug,
}

/// The replayable bug corpus of one benchmark: its records plus the exact
/// execution configuration they were minimized against (replaying under a
/// different visibility mode would shift every scheduling point).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BugCorpus {
    /// Benchmark name (matches `BenchmarkSpec::name` in the harness).
    pub benchmark: String,
    /// Execution configuration the prefixes were recorded under.
    pub config: ExecConfig,
    /// Deduplicated, deterministically ordered records.
    pub records: Vec<BugRecord>,
}

fn put_config(w: &mut Writer, config: &ExecConfig) {
    match &config.visibility {
        VisibilityMode::SyncOnly => w.u8(0),
        VisibilityMode::AllSharedAccesses => w.u8(1),
        VisibilityMode::RacyOnly(locs) => {
            w.u8(2);
            let mut sorted: Vec<Loc> = locs.iter().copied().collect();
            sorted.sort();
            w.u64(sorted.len() as u64);
            for loc in sorted {
                put_loc(w, loc);
            }
        }
    }
    w.u64(config.max_steps as u64);
    w.u64(config.max_invisible_ops_per_step as u64);
}

fn get_config(r: &mut Reader<'_>) -> Decode<ExecConfig> {
    let visibility = match r.u8()? {
        0 => VisibilityMode::SyncOnly,
        1 => VisibilityMode::AllSharedAccesses,
        2 => {
            let n = r.len(8)?;
            let mut locs = Vec::with_capacity(n);
            for _ in 0..n {
                locs.push(get_loc(r)?);
            }
            VisibilityMode::racy(locs)
        }
        v => return Err(format!("invalid visibility tag {v}")),
    };
    Ok(ExecConfig {
        visibility,
        max_steps: r.u64()? as usize,
        max_invisible_ops_per_step: r.u64()? as usize,
    })
}

/// Serialize a bug corpus to the versioned binary format.
pub fn bugs_to_bytes(corpus: &BugCorpus) -> Vec<u8> {
    let mut w = Writer::default();
    w.buf.extend_from_slice(BUGS_MAGIC);
    w.u32(FORMAT_VERSION);
    w.str(&corpus.benchmark);
    put_config(&mut w, &corpus.config);
    w.u64(corpus.records.len() as u64);
    for record in &corpus.records {
        w.u64(record.prefix.len() as u64);
        for &t in &record.prefix {
            put_thread(&mut w, t);
        }
        put_bug(&mut w, &record.bug);
    }
    w.buf
}

/// Load a bug corpus, verifying magic, version and structure.
pub fn bugs_from_bytes(data: &[u8], path: &Path) -> Result<BugCorpus, CorpusError> {
    let corrupted = |detail: String| CorpusError::Corrupted {
        path: path.to_path_buf(),
        detail,
    };
    let mut r = Reader::new(data);
    let magic = r.take(4).map_err(&corrupted)?;
    if magic != BUGS_MAGIC {
        return Err(CorpusError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let version = r.u32().map_err(&corrupted)?;
    if version != FORMAT_VERSION {
        return Err(CorpusError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let parse = |r: &mut Reader<'_>| -> Decode<BugCorpus> {
        let benchmark = r.str()?;
        let config = get_config(r)?;
        let n = r.len(9)?;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.len(8)?;
            let mut prefix = Vec::with_capacity(len);
            for _ in 0..len {
                prefix.push(get_thread(r)?);
            }
            records.push(BugRecord {
                prefix,
                bug: get_bug(r)?,
            });
        }
        r.finish()?;
        Ok(BugCorpus {
            benchmark,
            config,
            records,
        })
    };
    parse(&mut r).map_err(&corrupted)
}

/// Run the program once: follow `prefix` decision by decision (falling back
/// to the deterministic round-robin choice if a prefix thread is not enabled
/// — which never happens for prefixes recorded against the same program) and
/// continue round-robin after the prefix is exhausted. Exactly one execution.
pub fn replay_prefix(
    program: &Program,
    config: &ExecConfig,
    prefix: &[ThreadId],
) -> ExecutionOutcome {
    let mut exec = Execution::new_shared(program, config);
    run_prefix(&mut exec, prefix)
}

fn run_prefix(exec: &mut Execution<'_>, prefix: &[ThreadId]) -> ExecutionOutcome {
    exec.reset();
    let mut step = 0usize;
    exec.run(
        &mut |point: &SchedulingPoint| {
            let chosen = prefix
                .get(step)
                .copied()
                .filter(|&t| point.is_enabled(t))
                .unwrap_or_else(|| point.round_robin_choice());
            step += 1;
            chosen
        },
        &mut NoopObserver,
    )
}

/// Binary-search the shortest prefix of `schedule` whose [`replay_prefix`]
/// continuation still reproduces `bug` (a locally minimal cut: the predicate
/// is not guaranteed monotone, so this finds *a* minimal witness, not
/// necessarily the global one — the standard trade-off of binary-search
/// truncation). Returns the full schedule if even it does not reproduce the
/// bug (cannot happen for schedules recorded against the same program).
pub fn minimize_prefix(
    program: &Program,
    config: &ExecConfig,
    schedule: &[ThreadId],
    bug: &Bug,
) -> Vec<ThreadId> {
    let mut exec = Execution::new_shared(program, config);
    let reproduces = |exec: &mut Execution<'_>, len: usize| {
        run_prefix(exec, &schedule[..len]).bug.as_ref() == Some(bug)
    };
    if !reproduces(&mut exec, schedule.len()) {
        return schedule.to_vec();
    }
    let (mut lo, mut hi) = (0usize, schedule.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if reproduces(&mut exec, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    schedule[..hi].to_vec()
}

/// Distill a trie's buggy terminals into a deduplicated, minimized bug
/// corpus: one record per distinct [`Bug`] value, keyed on the
/// path-lexicographically first schedule that produced it (deterministic no
/// matter what order the trie was built in).
pub fn harvest_bugs(
    program: &Program,
    config: &ExecConfig,
    cache: &ScheduleCache,
) -> Vec<BugRecord> {
    let mut records: Vec<BugRecord> = Vec::new();
    for (schedule, bug) in cache.buggy_schedules() {
        if records.iter().any(|r| r.bug == bug) {
            continue;
        }
        let prefix = minimize_prefix(program, config, &schedule, &bug);
        records.push(BugRecord { prefix, bug });
    }
    records
}

// ---------------------------------------------------------------------------
// On-disk corpus directory.
// ---------------------------------------------------------------------------

/// A corpus directory: one trie file (`<slug>.trie.sctc`) and one bug file
/// (`<slug>.bugs.sctb`) per benchmark. All saves are atomic
/// (write-to-temporary + rename), so a study killed mid-save leaves the
/// previous artifact intact rather than a truncated one — and durable
/// (tmp-file `sync_all` before the rename, parent-directory fsync after it),
/// so a reported save survives a crash of the whole machine.
#[derive(Debug, Clone)]
pub struct Corpus {
    dir: PathBuf,
}

/// Attempts one corpus save makes before surfacing the I/O error.
const WRITE_ATTEMPTS: u32 = 3;

/// Pause before retry `n` (linear backoff: `n * RETRY_BACKOFF`).
const RETRY_BACKOFF: std::time::Duration = std::time::Duration::from_millis(10);

impl Corpus {
    /// Open (creating if needed) a corpus directory, sweeping away any stale
    /// `.tmp` files a crashed save left behind: they were never published by
    /// a rename, so they are garbage, never data, and deleting them keeps a
    /// torn one from ever being mistaken for an artifact.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Corpus, CorpusError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|x| x == "tmp") {
                // Best effort: a sweep that loses a race (or lacks
                // permission) costs nothing — saves truncate on create.
                let _ = fs::remove_file(&path);
            }
        }
        Ok(Corpus { dir })
    }

    /// The directory this corpus lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn slug(name: &str) -> String {
        name.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect()
    }

    /// Path of the trie artifact for `benchmark`.
    pub fn cache_path(&self, benchmark: &str) -> PathBuf {
        self.dir
            .join(format!("{}.trie.sctc", Self::slug(benchmark)))
    }

    /// Path of the bug-corpus artifact for `benchmark`.
    pub fn bugs_path(&self, benchmark: &str) -> PathBuf {
        self.dir
            .join(format!("{}.bugs.sctb", Self::slug(benchmark)))
    }

    /// Atomic, durable, retrying save: write to a temporary, `sync_all` it,
    /// rename over the target, fsync the parent directory. Transient I/O
    /// errors are retried up to [`WRITE_ATTEMPTS`] times with linear backoff
    /// (each attempt restarts from a truncating create, so a torn earlier
    /// attempt cannot leak into a later one); a persistent error surfaces.
    fn write_atomic(path: &Path, data: &[u8]) -> Result<(), CorpusError> {
        let mut last: Option<io::Error> = None;
        for attempt in 0..WRITE_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(RETRY_BACKOFF * attempt);
            }
            match Self::write_atomic_once(path, data) {
                Ok(()) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        Err(CorpusError::Io(last.expect("at least one attempt ran")))
    }

    fn write_atomic_once(path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let scope = path.to_string_lossy();
        let tmp = path.with_extension("tmp");
        let mut file = fs::File::create(&tmp)?;
        fault::io_point(FaultKind::WriteFail, &scope)?;
        if let Some(torn) = fault::torn_write(&scope, data.len()) {
            // Simulated crash mid-write: flush a prefix to disk and fail,
            // leaving the torn `.tmp` behind exactly as a real crash would.
            file.write_all(&data[..torn])?;
            let _ = file.sync_all();
            return Err(io::Error::other(fault::INJECTED));
        }
        file.write_all(data)?;
        // The contents must be on disk *before* the rename publishes them:
        // without this, a crash after the rename can publish a hole.
        fault::io_point(FaultKind::SyncFail, &scope)?;
        file.sync_all()?;
        drop(file);
        fault::io_point(FaultKind::RenameFail, &scope)?;
        fs::rename(&tmp, path)?;
        // The rename is a directory-entry update; fsync the directory so the
        // publish itself survives a power cut (journalling filesystems may
        // otherwise delay it past the point the caller reports success).
        fs::File::open(path.parent().unwrap_or(Path::new(".")))?.sync_all()?;
        Ok(())
    }

    /// Load the saved trie for `benchmark`, if one exists. `key` must match
    /// the stored fingerprint ([`corpus_key`]); a mismatch is an error, not a
    /// silent cold start.
    pub fn load_cache(
        &self,
        benchmark: &str,
        key: u64,
    ) -> Result<Option<ScheduleCache>, CorpusError> {
        let path = self.cache_path(benchmark);
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CorpusError::Io(e)),
        };
        cache_from_bytes(&data, key, &path).map(Some)
    }

    /// Atomically save the trie for `benchmark`.
    pub fn save_cache(
        &self,
        benchmark: &str,
        key: u64,
        cache: &ScheduleCache,
    ) -> Result<(), CorpusError> {
        Self::write_atomic(&self.cache_path(benchmark), &cache_to_bytes(cache, key))
    }

    /// Load the saved bug corpus for `benchmark`, if one exists.
    pub fn load_bugs(&self, benchmark: &str) -> Result<Option<BugCorpus>, CorpusError> {
        let path = self.bugs_path(benchmark);
        let data = match fs::read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CorpusError::Io(e)),
        };
        bugs_from_bytes(&data, &path).map(Some)
    }

    /// Atomically save a bug corpus.
    pub fn save_bugs(&self, corpus: &BugCorpus) -> Result<(), CorpusError> {
        Self::write_atomic(&self.bugs_path(&corpus.benchmark), &bugs_to_bytes(corpus))
    }

    /// Every bug corpus stored in the directory, in file-name order (used by
    /// the `replay` subcommand).
    pub fn bug_corpora(&self) -> Result<Vec<BugCorpus>, CorpusError> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|entry| entry.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".bugs.sctb"))
            })
            .collect();
        paths.sort();
        paths
            .iter()
            .map(|path| bugs_from_bytes(&fs::read(path)?, path))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::DelayBound;
    use crate::cache::{run_begun_schedule, CacheHandle};
    use crate::dfs::BoundedDfs;
    use crate::scheduler::Scheduler;
    use sct_ir::prelude::*;

    /// Figure 1 of the paper: a bug that needs one specific interleaving.
    fn figure1() -> Program {
        let mut p = ProgramBuilder::new("figure1");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let z = p.global("z", 0);
        let t1 = p.thread("t1", |b| {
            b.store(x, 1);
            b.store(y, 1);
        });
        let t2 = p.thread("t2", |b| {
            b.store(z, 1);
        });
        let t3 = p.thread("t3", |b| {
            let rx = b.local("rx");
            let ry = b.local("ry");
            b.load(x, rx);
            b.load(y, ry);
            b.assert_cond(eq(rx, ry), "x == y");
        });
        p.main(|b| {
            b.spawn(t1);
            b.spawn(t2);
            b.spawn(t3);
        });
        p.build().unwrap()
    }

    fn explored_cache(program: &Program, config: &ExecConfig, bounds: u32) -> ScheduleCache {
        let mut cache = ScheduleCache::default();
        let mut exec = Execution::new_shared(program, config);
        for bound in 0..=bounds {
            let mut scheduler = BoundedDfs::new(Box::new(DelayBound), bound);
            while scheduler.begin_execution() {
                run_begun_schedule(
                    &mut exec,
                    &mut scheduler,
                    CacheHandle::Local(&mut cache),
                    false,
                );
            }
        }
        cache
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sct-corpus-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn trie_round_trips_through_the_binary_format() {
        let prog = figure1();
        let config = ExecConfig::all_visible();
        let cache = explored_cache(&prog, &config, 2);
        assert!(cache.bytes() > 0 && !cache.terminals.is_empty());
        let key = corpus_key("figure1", &config);
        let data = cache_to_bytes(&cache, key);
        let loaded = cache_from_bytes(&data, key, Path::new("mem")).expect("round trip");
        assert_eq!(loaded.bytes(), cache.bytes());
        assert_eq!(loaded.is_full(), cache.is_full());
        assert_eq!(loaded.nodes.len(), cache.nodes.len());
        assert_eq!(loaded.terminals, cache.terminals);
        assert_eq!(loaded.hits(), 0, "hit counter must reset on load");
        // Re-encoding the loaded trie reproduces the bytes exactly.
        assert_eq!(cache_to_bytes(&loaded, key), data);
        // And the loaded trie serves the same buggy schedules.
        assert_eq!(loaded.buggy_schedules(), cache.buggy_schedules());
    }

    #[test]
    fn corrupted_truncated_and_mismatched_files_fail_clearly() {
        let prog = figure1();
        let config = ExecConfig::all_visible();
        let cache = explored_cache(&prog, &config, 1);
        let key = corpus_key("figure1", &config);
        let good = cache_to_bytes(&cache, key);
        let p = Path::new("mem");

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            cache_from_bytes(&bad, key, p),
            Err(CorpusError::BadMagic { .. })
        ));

        // Unsupported version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            cache_from_bytes(&bad, key, p),
            Err(CorpusError::UnsupportedVersion { found: 99, .. })
        ));

        // Key mismatch (different configuration).
        let other = corpus_key("figure1", &ExecConfig::sync_only());
        assert_ne!(key, other);
        let err = cache_from_bytes(&good, other, p).unwrap_err();
        assert!(matches!(err, CorpusError::KeyMismatch { .. }));
        assert!(err.to_string().contains("refusing to resume"));

        // Truncation at every prefix length parses as an error, never panics
        // or silently succeeds.
        for len in 0..good.len() {
            assert!(
                cache_from_bytes(&good[..len], key, p).is_err(),
                "truncated file of {len} bytes was accepted"
            );
        }

        // A flipped byte in the accounting is caught by validation.
        let mut bad = good.clone();
        bad[24] ^= 0x40; // inside the stored `bytes` field
        assert!(cache_from_bytes(&bad, key, p).is_err());
    }

    #[test]
    fn corpus_keys_separate_configs_and_programs() {
        let all = ExecConfig::all_visible();
        let sync = ExecConfig::sync_only();
        assert_ne!(corpus_key("a", &all), corpus_key("b", &all));
        assert_ne!(corpus_key("a", &all), corpus_key("a", &sync));
        // Racy-location sets hash order-independently.
        let l1 = Loc {
            template: TemplateId(0),
            pc: 1,
        };
        let l2 = Loc {
            template: TemplateId(2),
            pc: 7,
        };
        let c1 = ExecConfig::with_racy_locations([l1, l2]);
        let c2 = ExecConfig::with_racy_locations([l2, l1]);
        assert_eq!(corpus_key("a", &c1), corpus_key("a", &c2));
    }

    #[test]
    fn harvested_bugs_replay_in_exactly_one_execution() {
        let prog = figure1();
        let config = ExecConfig::all_visible();
        let cache = explored_cache(&prog, &config, 3);
        let records = harvest_bugs(&prog, &config, &cache);
        assert!(
            !records.is_empty(),
            "figure1 exposes its assertion failure within delay bound 3"
        );
        // Deduplicated by bug value.
        for (i, a) in records.iter().enumerate() {
            for b in &records[i + 1..] {
                assert_ne!(a.bug, b.bug, "duplicate bug in the corpus");
            }
        }
        for record in &records {
            let outcome = replay_prefix(&prog, &config, &record.prefix);
            assert_eq!(
                outcome.bug.as_ref(),
                Some(&record.bug),
                "minimized prefix failed to reproduce its bug"
            );
            // And the prefix is minimal under one-step truncation.
            if !record.prefix.is_empty() {
                let shorter = &record.prefix[..record.prefix.len() - 1];
                assert_ne!(
                    replay_prefix(&prog, &config, shorter).bug.as_ref(),
                    Some(&record.bug),
                    "prefix is not minimal"
                );
            }
        }
    }

    #[test]
    fn transient_io_faults_are_absorbed_by_the_retry_loop() {
        // One injected failure at each I/O point of `write_atomic_once`: the
        // first attempt fails, the retry publishes, the caller never notices.
        let prog = figure1();
        let config = ExecConfig::all_visible();
        let cache = explored_cache(&prog, &config, 2);
        let key = corpus_key("figure1", &config);
        for kind in [
            FaultKind::WriteFail,
            FaultKind::SyncFail,
            FaultKind::RenameFail,
        ] {
            let dir = tempdir(&format!("transient-{kind:?}"));
            let corpus = Corpus::open(&dir).expect("open corpus dir");
            let scope = corpus.cache_path("figure1").to_string_lossy().into_owned();
            let _fault = fault::arm(kind, &scope, 1);
            corpus
                .save_cache("figure1", key, &cache)
                .unwrap_or_else(|e| panic!("{kind:?}: one transient fault must be retried: {e}"));
            let loaded = corpus
                .load_cache("figure1", key)
                .expect("load after retried save")
                .expect("artifact was published");
            assert_eq!(loaded.bytes(), cache.bytes(), "{kind:?}");
            assert_eq!(loaded.terminals, cache.terminals, "{kind:?}");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn a_torn_write_is_never_published_and_the_retry_replaces_it() {
        // The torn-write fault flushes a prefix of the artifact and fails,
        // exactly like a crash mid-write. The retry starts from a truncating
        // create, so the published artifact must be whole — the torn bytes
        // can never leak through the rename.
        let prog = figure1();
        let config = ExecConfig::all_visible();
        let cache = explored_cache(&prog, &config, 2);
        let key = corpus_key("figure1", &config);
        let dir = tempdir("torn-write");
        let corpus = Corpus::open(&dir).expect("open corpus dir");
        let path = corpus.cache_path("figure1");
        let scope = path.to_string_lossy().into_owned();
        let _fault = fault::arm(FaultKind::TornWrite, &scope, 1);
        corpus
            .save_cache("figure1", key, &cache)
            .expect("the torn first attempt must be retried");
        let published = fs::read(&path).expect("artifact exists");
        assert_eq!(
            published,
            cache_to_bytes(&cache, key),
            "published bytes are whole"
        );
        assert!(
            !path.with_extension("tmp").exists(),
            "the successful rename consumed the temporary"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_persistent_fault_surfaces_and_leaves_the_old_artifact_intact() {
        let prog = figure1();
        let config = ExecConfig::all_visible();
        let small = explored_cache(&prog, &config, 0);
        let big = explored_cache(&prog, &config, 3);
        assert!(big.bytes() > small.bytes());
        let key = corpus_key("figure1", &config);
        let dir = tempdir("persistent-fault");
        let corpus = Corpus::open(&dir).expect("open corpus dir");
        let path = corpus.cache_path("figure1");
        corpus
            .save_cache("figure1", key, &small)
            .expect("clean first save");
        let good = fs::read(&path).expect("published artifact");

        // Fail the rename on every one of the bounded retries: the save must
        // surface the injected error rather than spin forever.
        let scope = path.to_string_lossy().into_owned();
        let err = {
            let _fault =
                fault::arm_times(FaultKind::RenameFail, &scope, 1, u64::from(WRITE_ATTEMPTS));
            corpus
                .save_cache("figure1", key, &big)
                .expect_err("a fault on every attempt must surface")
        };
        assert!(
            err.to_string().contains(fault::INJECTED),
            "error should carry the injected cause: {err}"
        );
        // The previously published artifact is untouched and still loads.
        assert_eq!(fs::read(&path).expect("old artifact"), good);
        let loaded = corpus
            .load_cache("figure1", key)
            .expect("load old artifact")
            .expect("old artifact still present");
        assert_eq!(loaded.bytes(), small.bytes());
        // The failed save left its fully written `.tmp` behind (the rename
        // never ran); reopening the corpus — what `--resume` does — sweeps it.
        assert!(path.with_extension("tmp").exists(), "stale tmp left behind");
        let corpus = Corpus::open(&dir).expect("reopen corpus dir");
        assert!(
            !path.with_extension("tmp").exists(),
            "stale tmp must be swept on open"
        );
        // And with the fault gone the save goes through.
        corpus
            .save_cache("figure1", key, &big)
            .expect("save succeeds once the fault clears");
        assert_eq!(
            corpus
                .load_cache("figure1", key)
                .expect("load")
                .expect("artifact")
                .bytes(),
            big.bytes()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bug_corpus_round_trips_and_the_directory_api_is_atomic() {
        let prog = figure1();
        let config = ExecConfig::all_visible();
        let cache = explored_cache(&prog, &config, 3);
        let dir = tempdir("bugdir");
        let corpus = Corpus::open(&dir).expect("open corpus dir");

        let key = corpus_key("figure1", &config);
        corpus
            .save_cache("figure1", key, &cache)
            .expect("save trie");
        let loaded = corpus
            .load_cache("figure1", key)
            .expect("load trie")
            .expect("trie exists");
        assert_eq!(loaded.bytes(), cache.bytes());
        assert!(matches!(
            corpus.load_cache("figure1", key ^ 1),
            Err(CorpusError::KeyMismatch { .. })
        ));
        assert!(corpus
            .load_cache("never-saved", key)
            .expect("missing file is not an error")
            .is_none());

        let bugs = BugCorpus {
            benchmark: "figure1".to_string(),
            config: config.clone(),
            records: harvest_bugs(&prog, &config, &cache),
        };
        corpus.save_bugs(&bugs).expect("save bugs");
        let loaded = corpus
            .load_bugs("figure1")
            .expect("load bugs")
            .expect("bugs exist");
        assert_eq!(loaded, bugs);
        let all = corpus.bug_corpora().expect("scan dir");
        assert_eq!(all, vec![bugs]);
        // No temporary droppings left behind by the atomic writes.
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(stray.is_empty(), "temporary files left behind: {stray:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! A minimal, dependency-free stand-in for the parts of the `criterion`
//! bench-harness API this workspace uses. The build environment has no
//! crates.io access, so the workspace vendors this shim under the crate name
//! `criterion`; the bench targets in `crates/bench/benches/` compile
//! unchanged.
//!
//! Semantics: each benchmark is warmed up for (a capped portion of) the
//! configured warm-up time, then timed for `sample_size` samples or until the
//! measurement time is exhausted, whichever comes first. Results are printed
//! to stdout and appended as JSON lines to
//! `target/criterion-shim/<group>.jsonl` (override the directory with the
//! `CRITERION_SHIM_OUT` environment variable), giving the perf-trajectory
//! tooling a machine-readable point per benchmark. Set `CRITERION_SHIM_FAST=1`
//! to run exactly one iteration per benchmark (smoke mode for CI).

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the measured closure; [`Bencher::iter`] runs and times it.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Time `routine`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if fast_mode() {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            return;
        }
        // Warm-up (capped so accidental multi-second configs stay usable).
        let warm_deadline = Instant::now() + self.warm_up_time.min(Duration::from_millis(500));
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn fast_mode() -> bool {
    std::env::var_os("CRITERION_SHIM_FAST").is_some_and(|v| v != "0")
}

fn out_dir() -> PathBuf {
    std::env::var_os("CRITERION_SHIM_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/criterion-shim"))
}

/// A named collection of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up time.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the total measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the number of samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.criterion.report(&self.name, id, &samples);
    }

    /// End the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    out: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { out: out_dir() }
    }
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 10,
        }
    }

    /// Benchmark a standalone function (no group).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("default");
        group.bench_function(id, &mut f);
        group.finish();
        self
    }

    /// Kept for API compatibility with `criterion_main!`'s epilogue.
    pub fn final_summary(&mut self) {}

    fn report(&mut self, group: &str, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{group}/{id}: no samples collected");
            return;
        }
        let nanos: Vec<u128> = samples.iter().map(|d| d.as_nanos()).collect();
        let total: u128 = nanos.iter().sum();
        let mean = total / nanos.len() as u128;
        let min = *nanos.iter().min().unwrap();
        let max = *nanos.iter().max().unwrap();
        println!(
            "{group}/{id:<40} time: [{} {} {}] ({} samples)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            nanos.len()
        );
        // One JSON point per benchmark for the perf trajectory.
        if fs::create_dir_all(&self.out).is_ok() {
            let path = self.out.join(format!("{}.jsonl", sanitize(group)));
            if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) {
                let _ = writeln!(
                    f,
                    "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{mean},\"min_ns\":{min},\"max_ns\":{max},\"samples\":{}}}",
                    escape(group),
                    escape(id),
                    nanos.len()
                );
            }
        }
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Collect benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!` (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Generate `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_as_function_slash_parameter() {
        assert_eq!(
            BenchmarkId::new("IPB", "CS.account_bad").to_string(),
            "IPB/CS.account_bad"
        );
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }

    #[test]
    fn groups_collect_samples_and_write_json() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-test-{}", std::process::id()));
        std::env::set_var("CRITERION_SHIM_OUT", &dir);
        std::env::set_var("CRITERION_SHIM_FAST", "1");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(2).measurement_time(Duration::from_millis(10));
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("with", 7), &7, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        let written = std::fs::read_to_string(dir.join("unit.jsonl")).unwrap();
        assert!(written.lines().count() >= 2);
        assert!(written.contains("\"bench\":\"noop\""));
        std::env::remove_var("CRITERION_SHIM_OUT");
        std::env::remove_var("CRITERION_SHIM_FAST");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.500µs");
        assert_eq!(fmt_ns(2_000_000), "2.000ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}

//! The miscellaneous benchmarks: Dmitry Vyukov's `safestack` lock-free stack
//! (posted to the CHESS forum; the paper reports it needs at least three
//! threads and five preemptions) and the `ctrace` multithreaded debugging
//! library test case.

use sct_ir::prelude::*;
use sct_ir::Program;

/// `misc.safestack` — a Treiber-style lock-free stack of pre-allocated node
/// indices with three worker threads that repeatedly pop a node, briefly
/// "own" it and push it back. The node links (`next`) are read non-atomically
/// while the head is manipulated with compare-and-swap, so an ABA-style
/// interleaving lets two threads own the same node simultaneously; each
/// acquisition asserts exclusive ownership.
///
/// Fidelity: the original `safestack.c` uses a counted head and index array
/// with C++11 atomics; the bug reported there also manifests under sequential
/// consistency (which is what our runtime explores). The port keeps the
/// three-worker structure and the deep interleaving requirement (several
/// preemptions across two threads' pop/push sequences); the exact number of
/// preemptions required may differ from the original's five.
pub fn safestack() -> Program {
    let mut p = ProgramBuilder::new("misc.safestack");
    // head holds (node index + 1); 0 means empty.
    let head = p.global("head", 1);
    // next[i] holds the successor encoding for node i (again index + 1).
    let next = p.global_array("next", vec![2, 3, 0]);
    let owned = p.global_array_zeroed("owned", 3);

    let worker = p.thread("worker", move |b| {
        b.for_range("iter", 0, 2, |b, _iter| {
            let h = b.local("h");
            let succ = b.local("succ");
            let ok = b.local("ok");
            let popped = b.local("popped");
            let attempts = b.local("attempts");
            b.assign(popped, -1);
            b.assign(attempts, 0);
            b.assign(ok, 0);
            // pop(): CAS the head from h to next[h-1].
            b.while_(and(eq(ok, 0), lt(attempts, 4)), |b| {
                b.assign(attempts, add(attempts, 1));
                b.atomic_load(head, h);
                b.if_else(
                    eq(h, 0),
                    |b| {
                        // Stack observed empty: stop trying this round.
                        b.assign(ok, 1);
                        b.assign(popped, -1);
                    },
                    |b| {
                        // BUG: the link is read non-atomically and may be
                        // stale by the time the CAS succeeds (ABA).
                        b.load(next.at(sub(h, 1)), succ);
                        b.cas(head, h, succ, ok);
                        b.if_(ne(ok, 0), |b| {
                            b.assign(popped, sub(h, 1));
                        });
                    },
                );
            });
            b.if_(ge(popped, 0), |b| {
                // Acquire exclusive ownership of the node.
                let prev = b.local("prev");
                b.fetch_add_into(owned.at(popped), 1, prev);
                b.assert_cond(eq(prev, 0), "node owned by a single thread");
                // ... the original dereferences the node here ...
                b.fetch_add_into(owned.at(popped), -1, prev);
                // push(): link the node back in with CAS on the head.
                let pushed = b.local("pushed");
                let tries = b.local("tries");
                b.assign(pushed, 0);
                b.assign(tries, 0);
                b.while_(and(eq(pushed, 0), lt(tries, 4)), |b| {
                    b.assign(tries, add(tries, 1));
                    b.atomic_load(head, h);
                    b.store(next.at(popped), h);
                    b.cas(head, h, add(popped, 1), pushed);
                });
            });
        });
    });

    p.main(|b| {
        b.spawn(worker);
        b.spawn(worker);
        b.spawn(worker);
    });
    p.build().expect("safestack builds")
}

/// `misc.ctrace-test` — the `ctrace` multithreaded debugging library: two
/// threads emit trace events into a shared buffer whose write index is not
/// synchronised. Lost index updates corrupt the trace; the test's final
/// consistency check (added by the study's authors, who obtained the test
/// from the Portend authors) then reports the corruption.
pub fn ctrace_test() -> Program {
    let mut p = ProgramBuilder::new("misc.ctrace-test");
    let trace_buf = p.global_array_zeroed("trace_buf", 8);
    let trace_idx = p.global("trace_idx", 0);

    let tracer = p.thread("tracer", |b| {
        let i = b.local("i");
        b.for_range("e", 0, 2, |b, _e| {
            // CTRC_ENTER / CTRC_EXIT: append an event to the trace buffer.
            b.load(trace_idx, i);
            b.store(trace_buf.at(i), 1);
            b.store(trace_idx, add(i, 1));
        });
    });

    p.main(|b| {
        let h1 = b.local("h1");
        let h2 = b.local("h2");
        b.spawn_into(tracer, h1);
        b.spawn_into(tracer, h2);
        b.join(h1);
        b.join(h2);
        let n = b.local("n");
        b.load(trace_idx, n);
        b.if_(ne(n, 4), |b| {
            b.fail("ctrace: trace buffer corrupted (events lost)");
        });
    });
    p.build().expect("ctrace_test builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::prelude::*;
    use sct_runtime::ExecConfig;

    #[test]
    fn ctrace_corruption_needs_a_preemption_and_is_found() {
        let zero = explore::bounded_dfs(
            &ctrace_test(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            0,
            &ExploreLimits::with_schedule_limit(10),
        );
        assert!(!zero.found_bug());
        let stats = iterative_bounding(
            &ctrace_test(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            &ExploreLimits::with_schedule_limit(5_000),
        );
        assert!(stats.found_bug());
        assert!(stats.bound_of_first_bug.unwrap() >= 1);
    }

    #[test]
    fn safestack_round_robin_schedule_is_clean() {
        let zero = explore::bounded_dfs(
            &safestack(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            0,
            &ExploreLimits::with_schedule_limit(10),
        );
        assert!(
            !zero.found_bug(),
            "safestack must not fail on the RR schedule"
        );
    }

    #[test]
    fn safestack_double_ownership_is_not_exposed_by_small_delay_bounds() {
        // The paper reports the bug needs at least five preemptions; with a
        // small delay bound it must stay hidden.
        let stats = explore::bounded_dfs(
            &safestack(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            1,
            &ExploreLimits::with_schedule_limit(2_000),
        );
        assert!(
            !stats.found_bug(),
            "safestack should not be exposed with a single delay"
        );
    }

    #[test]
    #[ignore = "long-running: exhaustive search for the deep safestack interleaving"]
    fn safestack_double_ownership_exists() {
        let stats = explore::run_technique(
            &safestack(),
            &ExecConfig::all_visible(),
            Technique::Random { seed: 7 },
            &ExploreLimits::with_schedule_limit(200_000),
        );
        assert!(stats.found_bug());
    }
}

//! The benchmark registry: all 52 SCTBench entries with their suite, bug
//! kind and the results the paper reports for them (Table 3), which the
//! harness uses for the paper-vs-measured comparison in EXPERIMENTS.md.

use sct_ir::Program;

/// Benchmark suites (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// Concurrency Bugs benchmarks (Yu & Narayanasamy).
    Cb,
    /// CHESS work-stealing queue tests.
    Chess,
    /// Concurrency Software benchmarks (ESBMC).
    Cs,
    /// Inspect benchmarks.
    Inspect,
    /// Miscellaneous (safestack, ctrace).
    Misc,
    /// PARSEC 2.0.
    Parsec,
    /// RADBench.
    RadBench,
    /// SPLASH-2.
    Splash2,
}

impl Suite {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Cb => "CB",
            Suite::Chess => "CHESS",
            Suite::Cs => "CS",
            Suite::Inspect => "Inspect",
            Suite::Misc => "Miscellaneous",
            Suite::Parsec => "PARSEC",
            Suite::RadBench => "RADBenchmark",
            Suite::Splash2 => "SPLASH-2",
        }
    }

    /// Short description of the suite, as in Table 1.
    pub fn description(self) -> &'static str {
        match self {
            Suite::Cb => "Test cases for real applications",
            Suite::Chess => "Test cases for several versions of a work stealing queue",
            Suite::Cs => "Small test cases and some small programs",
            Suite::Inspect => "Small test cases and some small programs",
            Suite::Misc => "Test case for lock-free stack and a debugging library test case",
            Suite::Parsec => "Parallel workloads",
            Suite::RadBench => "Tests cases for real applications",
            Suite::Splash2 => "Parallel workloads",
        }
    }

    /// Number of benchmarks the paper *skipped* from this suite and why
    /// (Table 1's "# skipped" column), reproduced as metadata.
    pub fn skipped(self) -> (u32, &'static str) {
        match self {
            Suite::Cb => (17, "networked applications"),
            Suite::Chess => (0, ""),
            Suite::Cs => (24, "non-buggy"),
            Suite::Inspect => (28, "non-buggy"),
            Suite::Misc => (0, ""),
            Suite::Parsec => (29, "non-buggy"),
            Suite::RadBench => (9, "5 Chromium browser; 4 networking"),
            Suite::Splash2 => (9, "similar bugs / macro issues (see paper)"),
        }
    }

    /// All suites in Table 1 order.
    pub fn all() -> [Suite; 8] {
        [
            Suite::Cb,
            Suite::Chess,
            Suite::Cs,
            Suite::Inspect,
            Suite::Misc,
            Suite::Parsec,
            Suite::RadBench,
            Suite::Splash2,
        ]
    }
}

/// The kind of defect the benchmark exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugKind {
    /// Assertion failure (including incorrect-output checks).
    Assertion,
    /// Deadlock.
    Deadlock,
    /// Crash-like failure (out-of-bounds access, use of destroyed objects,
    /// double unlock, heap corruption models).
    Crash,
}

/// Results the paper reports for this benchmark (Table 3), used only for the
/// paper-vs-measured comparison; `None` bounds mean the technique missed the
/// bug within the 10,000-schedule limit.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// "# threads" column.
    pub threads: u32,
    /// "# max enabled threads" column.
    pub max_enabled: u32,
    /// IPB: smallest preemption bound that exposed the bug.
    pub ipb_bound: Option<u32>,
    /// IDB: smallest delay bound that exposed the bug.
    pub idb_bound: Option<u32>,
    /// Whether unbounded DFS found the bug within 10,000 schedules.
    pub dfs_found: bool,
    /// Whether the naive random scheduler found the bug within 10,000 runs.
    pub rand_found: bool,
    /// Whether the Maple algorithm found the bug.
    pub maple_found: bool,
}

/// One SCTBench entry.
#[derive(Clone)]
pub struct BenchmarkSpec {
    /// Row id in Table 3 (0–51).
    pub id: usize,
    /// Benchmark name, e.g. `"CS.account_bad"`.
    pub name: &'static str,
    /// Suite the benchmark belongs to.
    pub suite: Suite,
    /// The kind of bug the benchmark exhibits.
    pub bug_kind: BugKind,
    /// Constructor for the program.
    pub build: fn() -> Program,
    /// The paper's Table 3 numbers for this benchmark.
    pub paper: PaperRow,
    /// Fidelity notes for the port.
    pub notes: &'static str,
}

impl std::fmt::Debug for BenchmarkSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkSpec")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("bug_kind", &self.bug_kind)
            .finish()
    }
}

impl BenchmarkSpec {
    /// Build the benchmark program.
    pub fn program(&self) -> Program {
        (self.build)()
    }
}

fn row(
    threads: u32,
    max_enabled: u32,
    ipb_bound: Option<u32>,
    idb_bound: Option<u32>,
    dfs_found: bool,
    rand_found: bool,
    maple_found: bool,
) -> PaperRow {
    PaperRow {
        threads,
        max_enabled,
        ipb_bound,
        idb_bound,
        dfs_found,
        rand_found,
        maple_found,
    }
}

/// All 52 benchmarks in Table 3 order.
pub fn all_benchmarks() -> Vec<BenchmarkSpec> {
    use BugKind::*;
    use Suite::*;
    let mut v: Vec<BenchmarkSpec> = Vec::with_capacity(52);
    let mut push = |name: &'static str,
                    suite: Suite,
                    bug_kind: BugKind,
                    build: fn() -> Program,
                    paper: PaperRow,
                    notes: &'static str| {
        let id = v.len();
        v.push(BenchmarkSpec {
            id,
            name,
            suite,
            bug_kind,
            build,
            paper,
            notes,
        });
    };

    // id 0-2: CB
    push("CB.aget-bug2", Cb, Assertion, crate::cb::aget_bug2,
         row(4, 3, Some(0), Some(0), true, true, true),
         "network download modelled as chunk writes; interrupt handler modelled as a thread; output check added");
    push("CB.pbzip2-0.9.4", Cb, Crash, crate::cb::pbzip2,
         row(4, 4, Some(0), Some(1), true, true, true),
         "compression replaced by queue traffic; bug preserved: main destroys the queue mutex while consumers still use it");
    push(
        "CB.stringbuffer-jdk1.4",
        Cb,
        Crash,
        crate::cb::stringbuffer_jdk14,
        row(2, 2, Some(2), Some(2), true, true, true),
        "StringBuffer.append length check vs concurrent erase; copy loop reads out of bounds",
    );

    // id 3-31: CS
    push(
        "CS.account_bad",
        Cs,
        Assertion,
        crate::cs::account_bad,
        row(4, 3, Some(0), Some(1), true, true, true),
        "bank account with unsynchronised balance update",
    );
    push(
        "CS.arithmetic_prog_bad",
        Cs,
        Assertion,
        crate::cs::arithmetic_prog_bad,
        row(3, 2, Some(0), Some(0), true, true, true),
        "arithmetic progression computed by two racing threads",
    );
    push(
        "CS.bluetooth_driver_bad",
        Cs,
        Assertion,
        crate::cs::bluetooth_driver_bad,
        row(2, 2, Some(1), Some(1), true, true, false),
        "classic stopping-flag vs dispatch driver model",
    );
    push(
        "CS.carter01_bad",
        Cs,
        Assertion,
        crate::cs::carter01_bad,
        row(5, 3, Some(1), Some(1), true, true, true),
        "lock-protected update with a check outside the lock",
    );
    push(
        "CS.circular_buffer_bad",
        Cs,
        Assertion,
        crate::cs::circular_buffer_bad,
        row(3, 2, Some(1), Some(2), true, true, false),
        "single-producer single-consumer ring buffer without synchronisation",
    );
    push(
        "CS.deadlock01_bad",
        Cs,
        Deadlock,
        crate::cs::deadlock01_bad,
        row(3, 2, Some(1), Some(1), true, true, false),
        "two mutexes acquired in opposite orders",
    );
    push(
        "CS.din_phil2_sat",
        Cs,
        Deadlock,
        crate::cs::din_phil_sat_2,
        row(3, 2, Some(0), Some(0), true, true, true),
        "dining philosophers, 2 philosophers, all grab left fork first",
    );
    push(
        "CS.din_phil3_sat",
        Cs,
        Deadlock,
        crate::cs::din_phil_sat_3,
        row(4, 3, Some(0), Some(0), true, true, true),
        "3 philosophers",
    );
    push(
        "CS.din_phil4_sat",
        Cs,
        Deadlock,
        crate::cs::din_phil_sat_4,
        row(5, 4, Some(0), Some(0), true, true, true),
        "4 philosophers",
    );
    push(
        "CS.din_phil5_sat",
        Cs,
        Deadlock,
        crate::cs::din_phil_sat_5,
        row(6, 5, Some(0), Some(0), true, true, true),
        "5 philosophers",
    );
    push(
        "CS.din_phil6_sat",
        Cs,
        Deadlock,
        crate::cs::din_phil_sat_6,
        row(7, 6, Some(0), Some(0), true, true, true),
        "6 philosophers",
    );
    push(
        "CS.din_phil7_sat",
        Cs,
        Deadlock,
        crate::cs::din_phil_sat_7,
        row(8, 7, Some(0), Some(0), true, true, true),
        "7 philosophers",
    );
    push(
        "CS.fsbench_bad",
        Cs,
        Assertion,
        crate::cs::fsbench_bad,
        row(28, 27, Some(0), Some(0), true, true, true),
        "file-system benchmark model: 27 workers race on a block bitmap; every schedule is buggy",
    );
    push(
        "CS.lazy01_bad",
        Cs,
        Assertion,
        crate::cs::lazy01_bad,
        row(4, 3, Some(0), Some(0), true, true, true),
        "three workers add to a lock-protected counter; the check admits only some interleavings",
    );
    push(
        "CS.phase01_bad",
        Cs,
        Assertion,
        crate::cs::phase01_bad,
        row(3, 2, Some(0), Some(0), true, true, true),
        "two-phase protocol whose invariant fails on the default schedule",
    );
    push(
        "CS.queue_bad",
        Cs,
        Assertion,
        crate::cs::queue_bad,
        row(3, 2, Some(1), Some(2), true, true, true),
        "bounded queue with racy occupancy counter",
    );
    push(
        "CS.reorder_10_bad",
        Cs,
        Assertion,
        crate::cs::reorder_10_bad,
        row(11, 10, None, Some(4), false, false, false),
        "adversarial delay-bounding example with 10 setter threads",
    );
    push(
        "CS.reorder_20_bad",
        Cs,
        Assertion,
        crate::cs::reorder_20_bad,
        row(21, 20, None, Some(3), false, false, false),
        "adversarial delay-bounding example with 20 setter threads",
    );
    push(
        "CS.reorder_3_bad",
        Cs,
        Assertion,
        crate::cs::reorder_3_bad,
        row(4, 3, Some(1), Some(2), true, false, false),
        "adversarial delay-bounding example with 3 setter threads",
    );
    push(
        "CS.reorder_4_bad",
        Cs,
        Assertion,
        crate::cs::reorder_4_bad,
        row(5, 4, Some(1), Some(3), true, false, false),
        "4 setter threads",
    );
    push(
        "CS.reorder_5_bad",
        Cs,
        Assertion,
        crate::cs::reorder_5_bad,
        row(6, 5, Some(1), Some(4), false, false, false),
        "5 setter threads",
    );
    push(
        "CS.stack_bad",
        Cs,
        Assertion,
        crate::cs::stack_bad,
        row(3, 2, Some(1), Some(1), true, true, false),
        "array stack with a racy top-of-stack counter",
    );
    push(
        "CS.sync01_bad",
        Cs,
        Assertion,
        crate::cs::sync01_bad,
        row(3, 2, Some(0), Some(0), true, true, true),
        "semaphore handshake whose assertion fails on every schedule",
    );
    push(
        "CS.sync02_bad",
        Cs,
        Assertion,
        crate::cs::sync02_bad,
        row(3, 2, Some(0), Some(0), true, true, true),
        "condvar handshake whose assertion fails on every schedule",
    );
    push(
        "CS.token_ring_bad",
        Cs,
        Assertion,
        crate::cs::token_ring_bad,
        row(5, 4, Some(0), Some(2), true, true, true),
        "four threads pass a token around a ring without waiting for it",
    );
    push(
        "CS.twostage_100_bad",
        Cs,
        Assertion,
        crate::cs::twostage_100_bad,
        row(101, 100, None, Some(2), false, false, false),
        "two-stage locking bug amplified to 100 threads",
    );
    push("CS.twostage_bad", Cs, Assertion, crate::cs::twostage_bad,
         row(3, 2, Some(1), Some(1), true, true, true),
         "two-stage locking: the second stage reads a value published in the first stage without ordering");
    push(
        "CS.wronglock_3_bad",
        Cs,
        Assertion,
        crate::cs::wronglock_3_bad,
        row(5, 4, Some(1), Some(1), true, true, true),
        "3 readers take a different lock than the writer",
    );
    push(
        "CS.wronglock_bad",
        Cs,
        Assertion,
        crate::cs::wronglock_bad,
        row(9, 8, None, Some(1), false, true, true),
        "7 readers take a different lock than the writer",
    );

    // id 32-35: CHESS
    push(
        "chess.IWSQ",
        Chess,
        Assertion,
        crate::chess::iwsq,
        row(3, 3, None, Some(2), false, true, false),
        "interface work-stealing queue: CAS-based take/steal with an off-by-one race",
    );
    push(
        "chess.IWSQWS",
        Chess,
        Assertion,
        crate::chess::iwsqws,
        row(3, 3, None, Some(1), false, true, false),
        "interface work-stealing queue with extra stealing rounds",
    );
    push(
        "chess.SWSQ",
        Chess,
        Assertion,
        crate::chess::swsq,
        row(3, 3, None, Some(1), false, true, false),
        "simple work-stealing queue variant with a larger workload",
    );
    push(
        "chess.WSQ",
        Chess,
        Assertion,
        crate::chess::wsq,
        row(3, 3, Some(2), Some(2), false, true, false),
        "the classic Cilk THE work-stealing deque bug (lost/duplicated item)",
    );

    // id 36: Inspect
    push("inspect.qsort_mt", Inspect, Assertion, crate::inspect::qsort_mt,
         row(3, 3, Some(1), Some(1), false, true, false),
         "multi-threaded quicksort: racy completion counter lets the parent read a half-sorted array");

    // id 37-38: Misc
    push(
        "misc.ctrace-test",
        Misc,
        Crash,
        crate::misc::ctrace_test,
        row(3, 2, Some(1), Some(1), true, true, true),
        "ctrace debugging library: racy trace-buffer index causes an out-of-bounds write",
    );
    push("misc.safestack", Misc, Assertion, crate::misc::safestack,
         row(4, 3, None, None, false, false, false),
         "Vyukov lock-free stack; the ABA-style corruption needs at least 3 threads and ~5 preemptions");

    // id 39-42: PARSEC
    push(
        "parsec.ferret",
        Parsec,
        Assertion,
        crate::parsec::ferret,
        row(11, 11, None, Some(1), false, false, true),
        "pipeline model: a stage thread preempted before publishing its count starves the sink",
    );
    push(
        "parsec.streamcluster",
        Parsec,
        Assertion,
        crate::parsec::streamcluster,
        row(5, 2, None, Some(1), false, true, true),
        "custom barrier with a racy generation check lets a worker run ahead a phase",
    );
    push(
        "parsec.streamcluster2",
        Parsec,
        Deadlock,
        crate::parsec::streamcluster2,
        row(7, 3, None, Some(1), false, true, false),
        "condition-variable barrier with a lost wake-up (older PARSEC version)",
    );
    push(
        "parsec.streamcluster3",
        Parsec,
        Crash,
        crate::parsec::streamcluster3,
        row(5, 2, Some(0), Some(1), true, true, true),
        "out-of-bounds access discovered by the study's memory-safety checker",
    );

    // id 43-48: RADBench
    push("radbench.bug1", RadBench, Crash, crate::radbench::bug1,
         row(4, 3, None, None, false, false, false),
         "SpiderMonkey: hash table destroyed while another thread still uses it; very long executions");
    push(
        "radbench.bug2",
        RadBench,
        Assertion,
        crate::radbench::bug2,
        row(2, 2, Some(3), Some(3), false, true, false),
        "SpiderMonkey state-machine bug requiring three preemptions",
    );
    push(
        "radbench.bug3",
        RadBench,
        Assertion,
        crate::radbench::bug3,
        row(3, 2, Some(0), Some(0), true, true, true),
        "NSPR initialisation bug exposed on the default schedule",
    );
    push(
        "radbench.bug4",
        RadBench,
        Crash,
        crate::radbench::bug4,
        row(3, 3, None, None, false, true, true),
        "NSPR lazily initialised lock created twice; later double unlock",
    );
    push("radbench.bug5", RadBench, Assertion, crate::radbench::bug5,
         row(7, 3, None, None, false, false, true),
         "NSPR monitor reuse bug with many scheduling points; found quickly by the idiom-driven scheduler");
    push(
        "radbench.bug6",
        RadBench,
        Assertion,
        crate::radbench::bug6,
        row(3, 3, Some(1), Some(1), false, true, false),
        "SpiderMonkey atomisation race",
    );

    // id 49-51: SPLASH-2
    push(
        "splash2.barnes",
        Splash2,
        Assertion,
        crate::splash2::barnes,
        row(2, 2, Some(1), Some(1), false, true, true),
        "missing wait-for-termination macro; assertion that all workers finished",
    );
    push(
        "splash2.fft",
        Splash2,
        Assertion,
        crate::splash2::fft,
        row(2, 2, Some(1), Some(1), false, true, true),
        "as barnes, with the FFT phase structure",
    );
    push(
        "splash2.lu",
        Splash2,
        Assertion,
        crate::splash2::lu,
        row(2, 2, Some(1), Some(1), false, true, true),
        "as barnes, with the LU phase structure",
    );

    v
}

/// Look up a benchmark by its full name (e.g. `"CS.account_bad"`).
pub fn benchmark_by_name(name: &str) -> Option<BenchmarkSpec> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_52_benchmarks_with_unique_names_and_ids() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 52);
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 52, "duplicate benchmark names");
        for (i, b) in all.iter().enumerate() {
            assert_eq!(b.id, i);
        }
    }

    #[test]
    fn suite_sizes_match_table_1() {
        let all = all_benchmarks();
        let count = |s: Suite| all.iter().filter(|b| b.suite == s).count();
        assert_eq!(count(Suite::Cb), 3);
        assert_eq!(count(Suite::Chess), 4);
        assert_eq!(count(Suite::Cs), 29);
        assert_eq!(count(Suite::Inspect), 1);
        assert_eq!(count(Suite::Misc), 2);
        assert_eq!(count(Suite::Parsec), 4);
        assert_eq!(count(Suite::RadBench), 6);
        assert_eq!(count(Suite::Splash2), 3);
    }

    #[test]
    fn every_benchmark_builds_and_validates() {
        for spec in all_benchmarks() {
            let program = spec.program();
            assert!(
                program.validate().is_ok(),
                "benchmark {} fails validation",
                spec.name
            );
            assert!(
                !program.templates.is_empty(),
                "benchmark {} has no templates",
                spec.name
            );
        }
    }

    #[test]
    fn lookup_by_name_finds_known_benchmarks() {
        assert!(benchmark_by_name("CS.account_bad").is_some());
        assert!(benchmark_by_name("chess.WSQ").is_some());
        assert!(benchmark_by_name("does.not_exist").is_none());
    }

    #[test]
    fn suite_metadata_is_present() {
        for s in Suite::all() {
            assert!(!s.name().is_empty());
            assert!(!s.description().is_empty());
        }
        assert_eq!(Suite::Cb.skipped().0, 17);
        assert_eq!(Suite::Chess.skipped().0, 0);
    }
}

//! The CB ("Concurrency Bugs") suite: test cases extracted from real
//! applications (Yu & Narayanasamy's benchmark collection). The paper uses
//! three of them; networked benchmarks were skipped (Table 1).
//!
//! Port fidelity: the application logic (downloading, compression, string
//! manipulation) is replaced by shared-memory traffic with the same thread
//! structure and the same defect; network reads are modelled as local data,
//! exactly as the study itself modelled `aget`'s network functions (§4.1).

use sct_ir::prelude::*;
use sct_ir::Program;

/// `CB.aget-bug2` — the `aget` download accelerator. Worker threads download
/// chunks and account the downloaded bytes; a signal-handler thread (modelled
/// as an ordinary thread, as the study models the asynchronous interrupt)
/// snapshots the byte count to the resume file. Because the workers update
/// the shared byte counter without synchronisation, the snapshot can record a
/// value that does not correspond to any consistent prefix of the download —
/// the added output check then fails.
pub fn aget_bug2() -> Program {
    let mut p = ProgramBuilder::new("CB.aget-bug2");
    let chunks = p.global_array_zeroed("chunks", 4);
    let bytes_done = p.global("bytes_done", 0);
    let saved_offset = p.global("saved_offset", -1);
    let chunk_size = 100i64;

    let mut workers = Vec::new();
    for w in 0..2u32 {
        let worker = p.thread(format!("worker{w}"), move |b| {
            let r = b.local("r");
            b.for_range("i", 0, 2, |b, i| {
                let idx = add(mul(w as i64, 2), i);
                b.store(chunks.at(idx), 1);
                // Racy read-modify-write of the global progress counter.
                b.load(bytes_done, r);
                b.store(bytes_done, add(r, chunk_size));
            });
        });
        workers.push(worker);
    }
    let sigint = p.thread("sigint_handler", |b| {
        // The handler snapshots progress for the resume file.
        let r = b.local("r");
        b.load(bytes_done, r);
        b.store(saved_offset, r);
    });

    p.main(move |b| {
        let h0 = b.local("h0");
        let h1 = b.local("h1");
        let hs = b.local("hs");
        b.spawn_into(workers[0], h0);
        b.spawn_into(workers[1], h1);
        b.spawn_into(sigint, hs);
        b.join(h0);
        b.join(h1);
        b.join(hs);
        // Output check (added by the study for aget): the total downloaded
        // byte count must equal the sum of the chunk sizes.
        let r = b.local("r");
        b.load(bytes_done, r);
        b.assert_cond(eq(r, 400), "download accounted all chunk bytes");
    });
    p.build().expect("aget_bug2 builds")
}

/// `CB.pbzip2-0.9.4` — the parallel bzip2 compressor. The main thread fills a
/// work queue for the consumer threads and then tears the queue down; in the
/// buggy version it destroys the queue mutex while consumers may still be
/// blocked on it, which the runtime reports as a use-after-destroy (the
/// original crashes inside `pthread_mutex_lock`). The paper notes that
/// detecting out-of-bound accesses to synchronisation objects "proved to be
/// useful in pbzip2".
pub fn pbzip2() -> Program {
    let mut p = ProgramBuilder::new("CB.pbzip2-0.9.4");
    let queue_len = p.global("queue_len", 0);
    let produced = p.global("produced", 0);
    let consumed = p.global("consumed", 0);
    let queue_mutex = p.mutex("queue_mutex");

    let consumer = p.thread("consumer", |b| {
        let r = b.local("r");
        b.for_range("i", 0, 2, |b, _i| {
            b.lock(queue_mutex);
            b.load(queue_len, r);
            b.if_(gt(r, 0), |b| {
                b.store(queue_len, sub(r, 1));
                let c = b.local("c");
                b.load(consumed, c);
                b.store(consumed, add(c, 1));
            });
            b.unlock(queue_mutex);
        });
    });

    p.main(move |b| {
        // Spawn three consumers (4 threads in total, as in Table 3).
        b.spawn(consumer);
        b.spawn(consumer);
        b.spawn(consumer);
        // Produce four work items.
        b.for_range("i", 0, 4, |b, _i| {
            let r = b.local("r");
            b.lock(queue_mutex);
            b.load(queue_len, r);
            b.store(queue_len, add(r, 1));
            let pr = b.local("pr");
            b.load(produced, pr);
            b.store(produced, add(pr, 1));
            b.unlock(queue_mutex);
        });
        // BUG: tear down the queue without waiting for the consumers.
        b.mutex_destroy(queue_mutex);
    });
    p.build().expect("pbzip2 builds")
}

/// `CB.stringbuffer-jdk1.4` — the classic JDK 1.4 `StringBuffer.append`
/// atomicity violation: `append` reads the other buffer's length, and a
/// concurrent `setLength(0)` (erase) shrinks the buffer before the copy loop
/// runs, so the copy reads past the now-valid region. The bounds check that
/// the original JVM performs is modelled as an assertion.
pub fn stringbuffer_jdk14() -> Program {
    let mut p = ProgramBuilder::new("CB.stringbuffer-jdk1.4");
    let data = p.global_array_zeroed("sb_data", 8);
    let len = p.global("sb_len", 6);
    let out = p.global_array_zeroed("out", 8);

    let eraser = p.thread("eraser", |b| {
        // setLength(0): logically truncate the buffer.
        b.store(len, 0);
    });

    p.main(move |b| {
        b.spawn(eraser);
        // append(sb): read the length, then copy that many characters. The
        // value of `len` can change under our feet between the read and the
        // per-character validity checks.
        let n = b.local("n");
        b.load(len, n);
        b.for_range("i", 0, 6, |b, i| {
            b.if_(lt(i, n), |b| {
                let cur = b.local("cur");
                b.load(len, cur);
                // Each character read checks it is still within the live
                // region (this is where the original throws
                // ArrayIndexOutOfBoundsException).
                b.assert_cond(lt(i, max(cur, n)), "copy index within source buffer");
                b.assert_cond(
                    or(lt(i, cur), eq(cur, n)),
                    "source buffer not truncated during append",
                );
                let v = b.local("v");
                b.load(data.at(i), v);
                b.store(out.at(i), v);
            });
        });
    });
    p.build().expect("stringbuffer_jdk14 builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::prelude::*;
    use sct_runtime::{Bug, ExecConfig};

    fn idb(prog: &sct_ir::Program, limit: u64) -> ExplorationStats {
        iterative_bounding(
            prog,
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            &ExploreLimits::with_schedule_limit(limit),
        )
    }

    #[test]
    fn aget_lost_update_is_found() {
        let stats = idb(&aget_bug2(), 5_000);
        assert!(stats.found_bug());
        assert!(matches!(
            stats.first_bug,
            Some(Bug::AssertionFailure { .. })
        ));
    }

    #[test]
    fn pbzip2_use_after_destroy_is_found() {
        let stats = idb(&pbzip2(), 5_000);
        assert!(stats.found_bug());
        assert!(matches!(stats.first_bug, Some(Bug::UseAfterDestroy { .. })));
    }

    #[test]
    fn stringbuffer_truncation_race_is_found_but_not_at_bound_zero() {
        let zero = explore::bounded_dfs(
            &stringbuffer_jdk14(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            0,
            &ExploreLimits::with_schedule_limit(10),
        );
        assert!(!zero.found_bug(), "append/erase race must need a delay");
        let stats = idb(&stringbuffer_jdk14(), 5_000);
        assert!(stats.found_bug());
        assert!(stats.bound_of_first_bug.unwrap() >= 1);
    }
}

//! The SPLASH-2 suite: `barnes`, `fft` and `lu`, each configured (as in prior
//! work) with a macro set that *omits* the "wait for threads to terminate"
//! macro. The study added assertions checking that all threads have in fact
//! terminated; the assertion fails when the main thread reaches the end of
//! the program while a worker still has post-barrier work outstanding.
//!
//! Port fidelity: the numeric kernels are irrelevant to the bug and are
//! replaced by small lock-protected phase loops; the phase/barrier structure
//! (and hence the position of the missing join) follows each kernel:
//! `barnes` has two tree phases, `fft` three transpose phases and `lu` two
//! factorisation phases with a different amount of per-phase work. Input
//! sizes are reduced exactly as the study reduced them (§4.1, §6).

use sct_ir::prelude::*;
use sct_ir::Program;

fn splash_kernel(name: &str, phases: u32, work_per_phase: i64) -> Program {
    let mut p = ProgramBuilder::new(name);
    let work_done = p.global("work_done", 0);
    let finished_threads = p.global("finished_threads", 0);
    let m = p.mutex("global_lock");
    let phase_barrier = p.barrier("phase_barrier", 2);

    let worker = p.thread("worker", move |b| {
        for _ in 0..phases {
            b.for_range("i", 0, work_per_phase, |b, _i| {
                let r = b.local("r");
                b.lock(m);
                b.load(work_done, r);
                b.store(work_done, add(r, 1));
                b.unlock(m);
            });
            b.barrier_wait(phase_barrier);
        }
        // Post-barrier epilogue: the worker records its termination. Without
        // the WAIT_FOR_END macro nothing orders this with the main thread's
        // final check.
        let f = b.local("f");
        b.load(finished_threads, f);
        b.store(finished_threads, add(f, 1));
    });

    p.main(move |b| {
        b.spawn(worker);
        for _ in 0..phases {
            b.for_range("i", 0, work_per_phase, |b, _i| {
                let r = b.local("r");
                b.lock(m);
                b.load(work_done, r);
                b.store(work_done, add(r, 1));
                b.unlock(m);
            });
            b.barrier_wait(phase_barrier);
        }
        // Missing WAIT_FOR_END: the study's added assertion.
        let f = b.local("f");
        b.load(finished_threads, f);
        b.assert_cond(eq(f, 1), "all worker threads have terminated");
    });
    p.build().expect("splash kernel builds")
}

/// `splash2.barnes` — Barnes-Hut n-body simulation (reduced particle count).
/// One tree-building phase with the largest per-phase work of the three.
pub fn barnes() -> Program {
    splash_kernel("splash2.barnes", 1, 4)
}

/// `splash2.fft` — the FFT kernel (reduced matrix size); three transpose
/// phases.
pub fn fft() -> Program {
    splash_kernel("splash2.fft", 3, 2)
}

/// `splash2.lu` — the LU factorisation kernel (reduced matrix size); a single
/// factorisation phase with a small block count.
pub fn lu() -> Program {
    splash_kernel("splash2.lu", 1, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::prelude::*;
    use sct_runtime::ExecConfig;

    #[test]
    fn splash_kernels_need_exactly_one_delay_and_two_schedules() {
        for (name, prog) in [("barnes", barnes()), ("fft", fft()), ("lu", lu())] {
            let stats = iterative_bounding(
                &prog,
                &ExecConfig::all_visible(),
                BoundKind::Delay,
                &ExploreLimits::with_schedule_limit(10_000),
            );
            assert!(stats.found_bug(), "{name}: bug not found");
            assert_eq!(stats.bound_of_first_bug, Some(1), "{name}");
            assert_eq!(
                stats.schedules_to_first_bug,
                Some(2),
                "{name}: the paper reports the bug on the second schedule"
            );
        }
    }

    #[test]
    fn splash_kernels_are_clean_at_bound_zero() {
        for prog in [barnes(), fft(), lu()] {
            let zero = explore::bounded_dfs(
                &prog,
                &ExecConfig::all_visible(),
                BoundKind::Delay,
                0,
                &ExploreLimits::with_schedule_limit(10),
            );
            assert!(!zero.found_bug(), "{}", prog.name);
        }
    }
}

//! # sctbench
//!
//! A Rust port of **SCTBench**, the collection of 52 buggy concurrent
//! benchmarks assembled by the PPoPP'14 study "Concurrency Testing Using
//! Schedule Bounding: an Empirical Study" (Thomson, Donaldson, Betts).
//!
//! The original benchmarks are C/C++ pthread programs (or programs translated
//! to pthreads by the authors); here each benchmark is re-expressed as an
//! [`sct_ir::Program`] that preserves the *scheduling structure* of the
//! original bug — the number of threads, the synchronisation skeleton and the
//! ordering constraint that makes the bug manifest — rather than the
//! application logic around it. Per-benchmark fidelity notes live in the doc
//! comment of each constructor and in the repository's `DESIGN.md`.
//!
//! Benchmarks are grouped by suite exactly as in Table 1 of the paper:
//!
//! | module | suite | # benchmarks |
//! |---|---|---|
//! | [`cb`] | CB (Concurrency Bugs) | 3 |
//! | [`chess`] | CHESS work-stealing queue | 4 |
//! | [`cs`] | CS (Concurrency Software / ESBMC) | 29 |
//! | [`inspect`] | Inspect | 1 |
//! | [`misc`] | Miscellaneous (safestack, ctrace) | 2 |
//! | [`parsec`] | PARSEC 2.0 | 4 |
//! | [`radbench`] | RADBench | 6 |
//! | [`splash2`] | SPLASH-2 | 3 |
//!
//! The [`registry`] module exposes all 52 benchmarks with their Table 3
//! metadata, which the experiment harness iterates over.

pub mod cb;
pub mod chess;
pub mod cs;
pub mod inspect;
pub mod misc;
pub mod parsec;
pub mod radbench;
pub mod registry;
pub mod splash2;

pub use registry::{all_benchmarks, benchmark_by_name, BenchmarkSpec, BugKind, PaperRow, Suite};

//! The CHESS suite: four variants of the Cilk-style work-stealing queue test
//! that was originally used to evaluate preemption bounding (and that the
//! paper's authors translated to pthreads / C++11 atomics).
//!
//! The port models the THE-protocol deque with an index-based item array:
//! the owner pushes and pops at the tail without synchronisation and the
//! thieves steal from the head. The known bug is the classic one: when
//! exactly one element remains, an owner `pop` racing with a `steal` can make
//! both sides take the same element (or lose it). Every take marks the item
//! in a `taken` array via an atomic fetch-add and asserts it had not been
//! taken before; the owner finally asserts that no item was lost.

use sct_ir::prelude::*;
use sct_ir::Program;

/// Shared construction: an owner (the benchmark's main thread) pushes
/// `items` tasks and pops them all; `stealers` thief threads each attempt
/// `steals_per_thief` steals. `lock_free` selects CAS-based stealing (the
/// "interface"/lock-free variants) instead of mutex-based stealing.
fn work_stealing_queue(
    name: &str,
    items: u32,
    stealers: u32,
    steals_per_thief: u32,
    lock_free: bool,
) -> Program {
    let mut p = ProgramBuilder::new(name);
    let n = items as i64;
    // Queue state.
    let tasks = p.global_array_zeroed("tasks", items as usize); // unused values, kept for structure
    let head = p.global("head", 0);
    let tail = p.global("tail", 0);
    let taken = p.global_array_zeroed("taken", items as usize);
    let steal_lock = p.mutex("steal_lock");

    // A thief: steal up to `steals_per_thief` items from the head.
    let thief = p.thread("thief", move |b| {
        b.for_range("s", 0, steals_per_thief as i64, |b, _s| {
            let h = b.local("h");
            let t = b.local("t");
            let old = b.local("old");
            if lock_free {
                let ok = b.local("ok");
                b.atomic_load(head, h);
                b.load(tail, t); // non-atomic read of the owner's tail: stale values possible
                b.if_(lt(h, t), |b| {
                    b.cas(head, h, add(h, 1), ok);
                    b.if_(ne(ok, 0), |b| {
                        b.fetch_add_into(taken.at(h), 1, old);
                        b.assert_cond(eq(old, 0), "item stolen twice");
                    });
                });
            } else {
                b.lock(steal_lock);
                b.atomic_load(head, h);
                b.load(tail, t);
                b.if_(lt(h, t), |b| {
                    b.atomic_store(head, add(h, 1));
                    b.fetch_add_into(taken.at(h), 1, old);
                    b.assert_cond(eq(old, 0), "item stolen twice");
                });
                b.unlock(steal_lock);
            }
        });
    });

    p.main(move |b| {
        // Push all items: tail is only written by the owner.
        b.for_range("i", 0, n, |b, i| {
            b.store(tasks.at(i), add(i, 1));
            b.store(tail, add(i, 1));
        });
        for _ in 0..stealers {
            b.spawn(thief);
        }
        // Pop everything from the tail, THE-protocol style. The bug: the
        // owner decrements the tail, then compares against a head value that
        // can be stale with respect to a concurrent steal of the last item.
        b.for_range("i", 0, n, |b, _i| {
            let t = b.local("t");
            let h = b.local("h");
            let old = b.local("old");
            b.load(tail, t);
            b.if_(gt(t, 0), |b| {
                b.assign(t, sub(t, 1));
                b.store(tail, t);
                b.atomic_load(head, h);
                b.if_(le(h, t), |b| {
                    // Fast path: the owner believes the element at `t` is
                    // still present, but a thief that read the old tail may
                    // be taking the same element.
                    b.fetch_add_into(taken.at(t), 1, old);
                    b.assert_cond(eq(old, 0), "item taken by owner and thief");
                });
                b.if_(gt(h, t), |b| {
                    // Conflict path: restore the tail and leave the element
                    // to the thieves.
                    b.store(tail, add(t, 1));
                });
            });
        });
    });
    p.build().expect("work-stealing queue builds")
}

/// `chess.WSQ` — the mutex-based work-stealing queue with two thieves and a
/// small workload (3 threads in total, as in Table 3).
pub fn wsq() -> Program {
    work_stealing_queue("chess.WSQ", 2, 2, 1, false)
}

/// `chess.SWSQ` — the "simple" variant: same protocol, larger workload, which
/// multiplies the number of scheduling points.
pub fn swsq() -> Program {
    work_stealing_queue("chess.SWSQ", 4, 2, 2, false)
}

/// `chess.IWSQ` — the interface (lock-free) variant: thieves race on the head
/// with compare-and-swap instead of a steal lock.
pub fn iwsq() -> Program {
    work_stealing_queue("chess.IWSQ", 3, 2, 1, true)
}

/// `chess.IWSQWS` — the lock-free variant with additional stealing rounds
/// ("with steal"), the largest of the four.
pub fn iwsqws() -> Program {
    work_stealing_queue("chess.IWSQWS", 4, 2, 2, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::prelude::*;
    use sct_runtime::ExecConfig;

    #[test]
    fn all_variants_build_with_three_threads() {
        for prog in [wsq(), swsq(), iwsq(), iwsqws()] {
            assert!(prog.validate().is_ok());
            // main + 2 thieves
            assert_eq!(prog.templates.len(), 2, "{}", prog.name);
        }
    }

    #[test]
    fn round_robin_schedule_is_not_buggy() {
        // The bug needs a genuine race between pop and steal; the default
        // non-preemptive round-robin schedule must pass.
        for prog in [wsq(), iwsq()] {
            let stats = explore::bounded_dfs(
                &prog,
                &ExecConfig::all_visible(),
                BoundKind::Delay,
                0,
                &ExploreLimits::with_schedule_limit(10),
            );
            assert!(!stats.found_bug(), "{} buggy at delay bound 0", prog.name);
        }
    }

    #[test]
    fn wsq_double_take_is_found_by_delay_bounding() {
        let stats = iterative_bounding(
            &wsq(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            &ExploreLimits::with_schedule_limit(10_000),
        );
        assert!(stats.found_bug(), "WSQ double-take not found");
        assert!(stats.bound_of_first_bug.unwrap() >= 1);
    }

    #[test]
    fn iwsq_double_take_is_found_by_random_scheduling() {
        let stats = explore::run_technique(
            &iwsq(),
            &ExecConfig::all_visible(),
            Technique::Random { seed: 12 },
            &ExploreLimits::with_schedule_limit(5_000),
        );
        assert!(stats.found_bug(), "IWSQ double-take not found by Rand");
    }
}

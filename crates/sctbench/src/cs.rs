//! The CS ("Concurrency Software") suite: the 29 small pthread test programs
//! originally used to evaluate the ESBMC bounded model checker and ported by
//! the study. Most are textbook concurrency-bug patterns (lost updates,
//! order violations, lock-order deadlocks, dining philosophers, two-stage
//! locking, wrong-lock bugs); several are deliberately trivial (the paper's
//! Table 2 notes that a number of them are buggy on every schedule).
//!
//! Port fidelity: each program keeps the original's thread count and the
//! synchronisation structure that the bug depends on; unconstrained inputs
//! are fixed to small concrete values as in the study (§4.1).

use sct_ir::prelude::*;
use sct_ir::Program;

/// `CS.account_bad` — a bank account whose deposit and withdraw threads
/// release the lock between reading and writing the balance, so updates can
/// be lost. `main` joins both workers and checks the final balance.
pub fn account_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.account_bad");
    let balance = p.global("balance", 0);
    let m = p.mutex("m");
    let deposit = p.thread("deposit", |b| {
        let r = b.local("r");
        b.lock(m);
        b.load(balance, r);
        b.unlock(m);
        // The computed value is written back under a fresh lock acquisition:
        // a concurrent withdraw between the two critical sections is lost.
        b.assign(r, add(r, 100));
        b.lock(m);
        b.store(balance, r);
        b.unlock(m);
    });
    let withdraw = p.thread("withdraw", |b| {
        let r = b.local("r");
        b.lock(m);
        b.load(balance, r);
        b.unlock(m);
        b.assign(r, sub(r, 40));
        b.lock(m);
        b.store(balance, r);
        b.unlock(m);
    });
    let check = p.thread("check", |b| {
        let r = b.local("r");
        b.lock(m);
        b.load(balance, r);
        b.unlock(m);
        b.assert_cond(
            or(eq(r, 0), or(eq(r, 100), or(eq(r, -40), eq(r, 60)))),
            "balance is consistent",
        );
    });
    p.main(|b| {
        let h1 = b.local("h1");
        let h2 = b.local("h2");
        let h3 = b.local("h3");
        b.spawn_into(deposit, h1);
        b.spawn_into(withdraw, h2);
        b.spawn_into(check, h3);
        b.join(h1);
        b.join(h2);
        b.join(h3);
        let r = b.local("r");
        b.load(balance, r);
        b.assert_cond(eq(r, 60), "final balance == 60");
    });
    p.build().expect("account_bad builds")
}

/// `CS.arithmetic_prog_bad` — two threads add successive terms of an
/// arithmetic progression to a shared sum without synchronisation; `main`
/// checks the sum immediately after spawning them (the original is buggy on
/// essentially every schedule, see Table 2).
pub fn arithmetic_prog_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.arithmetic_prog_bad");
    let sum = p.global("sum", 0);
    let adder = p.thread("adder", |b| {
        let r = b.local("r");
        b.for_range("i", 1, 4, |b, i| {
            b.load(sum, r);
            b.store(sum, add(r, i));
        });
    });
    p.main(|b| {
        b.spawn(adder);
        b.spawn(adder);
        let r = b.local("r");
        b.load(sum, r);
        b.assert_cond(eq(r, 12), "sum of both progressions");
    });
    p.build().expect("arithmetic_prog_bad builds")
}

/// `CS.bluetooth_driver_bad` — the classic Windows Bluetooth driver model
/// (stop routine versus dispatch routine). The dispatch thread checks the
/// stopping flag, is preempted, the stopper marks the device stopped, and the
/// dispatch thread then touches the stopped device.
pub fn bluetooth_driver_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.bluetooth_driver_bad");
    let stopping = p.global("stoppingFlag", 0);
    let pending_io = p.global("pendingIo", 1);
    let stopped = p.global("stopped", 0);
    // The stop routine runs in its own thread; the dispatch routine runs on
    // the benchmark's main thread (as in the original driver harness, where
    // the adder thread performs the dispatch).
    let stopper = p.thread("stopper", |b| {
        let pio = b.local("pio");
        b.store(stopping, 1);
        b.load(pending_io, pio);
        b.store(pending_io, sub(pio, 1));
        b.load(pending_io, pio);
        b.if_(eq(pio, 0), |b| {
            b.store(stopped, 1);
        });
    });
    p.main(|b| {
        let flag = b.local("flag");
        b.spawn(stopper);
        b.load(stopping, flag);
        b.if_(eq(flag, 0), |b| {
            let pio = b.local("pio");
            b.load(pending_io, pio);
            b.store(pending_io, add(pio, 1));
            // The device must not be stopped while I/O is in flight.
            let st = b.local("st");
            b.load(stopped, st);
            b.assert_cond(eq(st, 0), "device not stopped during dispatch");
            b.load(pending_io, pio);
            b.store(pending_io, sub(pio, 1));
        });
    });
    p.build().expect("bluetooth_driver_bad builds")
}

/// `CS.carter01_bad` — four workers increment a lock-protected counter; the
/// last-created worker additionally assumes it runs last and checks that it
/// observed all other increments.
pub fn carter01_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.carter01_bad");
    let a = p.global("A", 0);
    let m = p.mutex("m");
    let worker = p.thread("worker", |b| {
        let r = b.local("r");
        b.lock(m);
        b.load(a, r);
        b.store(a, add(r, 1));
        b.unlock(m);
    });
    let last = p.thread("last", |b| {
        let r = b.local("r");
        b.lock(m);
        b.load(a, r);
        b.store(a, add(r, 1));
        b.unlock(m);
        b.assert_cond(eq(r, 3), "last worker observes the other three increments");
    });
    p.main(|b| {
        b.spawn(worker);
        b.spawn(worker);
        b.spawn(worker);
        b.spawn(last);
    });
    p.build().expect("carter01_bad builds")
}

/// `CS.circular_buffer_bad` — a single-producer single-consumer ring buffer
/// whose occupancy is tracked by an unsynchronised counter; the consumer can
/// read slots the producer has not written yet.
pub fn circular_buffer_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.circular_buffer_bad");
    let buffer = p.global_array_zeroed("buffer", 8);
    let received = p.global_array_zeroed("received", 4);
    let send_count = p.global("send_count", 0);
    let producer = p.thread("producer", |b| {
        let c = b.local("c");
        b.for_range("i", 0, 4, |b, i| {
            b.load(send_count, c);
            b.store(buffer.at(c), add(i, 1));
            b.store(send_count, add(c, 1));
        });
    });
    let consumer = p.thread("consumer", |b| {
        let v = b.local("v");
        b.for_range("i", 0, 4, |b, i| {
            b.load(buffer.at(i), v);
            b.store(received.at(i), v);
        });
    });
    p.main(|b| {
        let h1 = b.local("h1");
        let h2 = b.local("h2");
        b.spawn_into(producer, h1);
        b.spawn_into(consumer, h2);
        b.join(h1);
        b.join(h2);
        let v = b.local("v");
        b.for_range("i", 0, 4, |b, i| {
            b.load(received.at(i), v);
            b.assert_cond(eq(v, add(i, 1)), "consumer received the produced value");
        });
    });
    p.build().expect("circular_buffer_bad builds")
}

/// `CS.deadlock01_bad` — two threads acquire two mutexes in opposite orders.
pub fn deadlock01_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.deadlock01_bad");
    let counter = p.global("counter", 0);
    let a = p.mutex("A");
    let bm = p.mutex("B");
    let t1 = p.thread("t1", |b| {
        let r = b.local("r");
        b.lock(a);
        b.lock(bm);
        b.load(counter, r);
        b.store(counter, add(r, 1));
        b.unlock(bm);
        b.unlock(a);
    });
    let t2 = p.thread("t2", |b| {
        let r = b.local("r");
        b.lock(bm);
        b.lock(a);
        b.load(counter, r);
        b.store(counter, add(r, 1));
        b.unlock(a);
        b.unlock(bm);
    });
    p.main(|b| {
        b.spawn(t1);
        b.spawn(t2);
    });
    p.build().expect("deadlock01_bad builds")
}

/// The dining-philosophers family `CS.din_philN_sat`. Each philosopher grabs
/// its left fork, waits at a barrier until every philosopher holds a left
/// fork, and then tries to grab the right fork — so every schedule reaches
/// the circular-wait deadlock (the paper's Table 2 lists these among the
/// benchmarks whose bug is exposed by (almost) every schedule).
fn din_phil_sat(n: u32) -> Program {
    let mut p = ProgramBuilder::new(format!("CS.din_phil{n}_sat"));
    let forks = p.mutex_array("forks", n);
    let all_hungry = p.barrier("all_hungry", n);
    let meals = p.global("meals", 0);
    let mut phils = Vec::new();
    for i in 0..n {
        let phil = p.thread(format!("phil{i}"), move |b| {
            let r = b.local("r");
            b.lock(forks.at(i));
            b.barrier_wait(all_hungry);
            b.lock(forks.at((i + 1) % n));
            b.load(meals, r);
            b.store(meals, add(r, 1));
            b.unlock(forks.at((i + 1) % n));
            b.unlock(forks.at(i));
        });
        phils.push(phil);
    }
    p.main(move |b| {
        for &phil in &phils {
            b.spawn(phil);
        }
    });
    p.build().expect("din_phil_sat builds")
}

/// `CS.din_phil2_sat` — see `din_phil_sat`.
pub fn din_phil_sat_2() -> Program {
    din_phil_sat(2)
}
/// `CS.din_phil3_sat` — see `din_phil_sat`.
pub fn din_phil_sat_3() -> Program {
    din_phil_sat(3)
}
/// `CS.din_phil4_sat` — see `din_phil_sat`.
pub fn din_phil_sat_4() -> Program {
    din_phil_sat(4)
}
/// `CS.din_phil5_sat` — see `din_phil_sat`.
pub fn din_phil_sat_5() -> Program {
    din_phil_sat(5)
}
/// `CS.din_phil6_sat` — see `din_phil_sat`.
pub fn din_phil_sat_6() -> Program {
    din_phil_sat(6)
}
/// `CS.din_phil7_sat` — see `din_phil_sat`.
pub fn din_phil_sat_7() -> Program {
    din_phil_sat(7)
}

/// `CS.fsbench_bad` — a model of the ESBMC file-system benchmark: 27 worker
/// threads allocate blocks from a bitmap whose capacity is smaller than the
/// number of workers, so the capacity assertion fails on every schedule.
pub fn fsbench_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.fsbench_bad");
    let used = p.global("used_blocks", 0);
    let m = p.mutex("bitmap_lock");
    let capacity = 20i64;
    let worker = p.thread("worker", move |b| {
        let r = b.local("r");
        b.lock(m);
        b.load(used, r);
        b.store(used, add(r, 1));
        b.assert_cond(lt(r, capacity), "block bitmap has free space");
        b.unlock(m);
    });
    p.main(|b| {
        b.for_range("i", 0, 27, |b, _i| {
            b.spawn(worker);
        });
    });
    p.build().expect("fsbench_bad builds")
}

/// `CS.lazy01_bad` — three workers add 1, 2 and 4 to a lock-protected
/// counter; a fourth code path (in the third worker) fails once the counter
/// reaches the value it reaches on the default schedule.
pub fn lazy01_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.lazy01_bad");
    let data = p.global("data", 0);
    let m = p.mutex("m");
    let t1 = p.thread("t1", |b| {
        let r = b.local("r");
        b.lock(m);
        b.load(data, r);
        b.store(data, add(r, 1));
        b.unlock(m);
    });
    let t2 = p.thread("t2", |b| {
        let r = b.local("r");
        b.lock(m);
        b.load(data, r);
        b.store(data, add(r, 2));
        b.unlock(m);
    });
    let t3 = p.thread("t3", |b| {
        let r = b.local("r");
        b.lock(m);
        b.load(data, r);
        b.unlock(m);
        b.if_(ge(r, 3), |b| {
            b.fail("lazy01: data reached 3");
        });
    });
    p.main(|b| {
        b.spawn(t1);
        b.spawn(t2);
        b.spawn(t3);
    });
    p.build().expect("lazy01_bad builds")
}

/// `CS.phase01_bad` — a two-phase handshake whose second phase asserts a
/// property that the first phase already violated; the bug is independent of
/// scheduling (Table 2: exposed by every schedule).
pub fn phase01_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.phase01_bad");
    let phase = p.global("phase", 0);
    let s = p.sem("phase_done", 0);
    let worker = p.thread("worker", |b| {
        let r = b.local("r");
        b.load(phase, r);
        b.store(phase, add(r, 1));
        b.sem_post(s);
    });
    let checker = p.thread("checker", |b| {
        let r = b.local("r");
        b.sem_wait(s);
        b.load(phase, r);
        // The original benchmark's invariant is simply wrong: the worker only
        // ever advances the phase counter to 1.
        b.assert_cond(eq(r, 2), "phase reached 2");
    });
    p.main(|b| {
        b.spawn(worker);
        b.spawn(checker);
    });
    p.build().expect("phase01_bad builds")
}

/// `CS.queue_bad` — a bounded queue whose element storage is protected by a
/// lock but whose occupancy counter is read outside it, so the consumer can
/// dequeue a slot the producer has not filled.
pub fn queue_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.queue_bad");
    let slots = p.global_array_zeroed("slots", 8);
    let count = p.global("count", 0);
    let m = p.mutex("m");
    let producer = p.thread("producer", |b| {
        let c = b.local("c");
        b.for_range("i", 0, 4, |b, i| {
            // The occupancy counter is published *before* the slot is filled,
            // which is the bug: a consumer that reads the counter in between
            // dequeues an empty slot.
            b.load(count, c);
            b.store(count, add(c, 1));
            b.lock(m);
            b.store(slots.at(c), add(i, 10));
            b.unlock(m);
        });
    });
    let consumer = p.thread("consumer", |b| {
        let c = b.local("c");
        let v = b.local("v");
        b.for_range("i", 0, 4, |b, _i| {
            b.load(count, c);
            b.if_(gt(c, 0), |b| {
                b.lock(m);
                b.load(slots.at(sub(c, 1)), v);
                b.unlock(m);
                b.assert_cond(ge(v, 10), "dequeued slot was produced");
            });
        });
    });
    p.main(|b| {
        b.spawn(producer);
        b.spawn(consumer);
    });
    p.build().expect("queue_bad builds")
}

/// The `CS.reorder_X_bad` family: `X - 1` setter threads write `a = 1` then
/// `b = 1`; one checker thread reads `a` then `b` and asserts it never sees
/// the "reordered" view `a == 0 ∧ b == 1`. Exposing the bug needs one
/// preemption but — because the checker is created last — a growing number of
/// delays as setters are added. This is exactly the adversarial delay-bounding
/// example of §2 (Example 2) and the paper calls it out by name.
fn reorder(threads_launched: u32) -> Program {
    let setters = threads_launched - 1;
    let mut p = ProgramBuilder::new(format!("CS.reorder_{threads_launched}_bad"));
    let a = p.global("a", 0);
    let bvar = p.global("b", 0);
    let setter = p.thread("setter", |b| {
        b.store(a, 1);
        b.store(bvar, 1);
    });
    let checker = p.thread("checker", |b| {
        let ra = b.local("ra");
        let rb = b.local("rb");
        b.load(a, ra);
        b.load(bvar, rb);
        b.assert_cond(
            not(and(eq(ra, 0), eq(rb, 1))),
            "no reordered view (a==0 && b==1)",
        );
    });
    p.main(move |b| {
        for _ in 0..setters {
            b.spawn(setter);
        }
        b.spawn(checker);
    });
    p.build().expect("reorder builds")
}

/// `CS.reorder_3_bad` — see `reorder`.
pub fn reorder_3_bad() -> Program {
    reorder(3)
}
/// `CS.reorder_4_bad` — see `reorder`.
pub fn reorder_4_bad() -> Program {
    reorder(4)
}
/// `CS.reorder_5_bad` — see `reorder`.
pub fn reorder_5_bad() -> Program {
    reorder(5)
}
/// `CS.reorder_10_bad` — see `reorder`.
pub fn reorder_10_bad() -> Program {
    reorder(10)
}
/// `CS.reorder_20_bad` — see `reorder`.
pub fn reorder_20_bad() -> Program {
    reorder(20)
}

/// `CS.stack_bad` — an array-based stack: the pusher updates the stack under
/// a lock but the popper omits the lock, so it can observe the top-of-stack
/// counter before the corresponding slot has been written.
pub fn stack_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.stack_bad");
    let stack = p.global_array_zeroed("stack", 8);
    let top = p.global("top", 0);
    let m = p.mutex("m");
    let pusher = p.thread("pusher", |b| {
        let t = b.local("t");
        b.for_range("i", 0, 4, |b, i| {
            b.lock(m);
            b.load(top, t);
            b.store(top, add(t, 1));
            b.store(stack.at(t), add(i, 1));
            b.unlock(m);
        });
    });
    let popper = p.thread("popper", |b| {
        let t = b.local("t");
        let v = b.local("v");
        b.for_range("i", 0, 4, |b, _i| {
            b.load(top, t);
            b.if_(gt(t, 0), |b| {
                b.load(stack.at(sub(t, 1)), v);
                b.assert_cond(gt(v, 0), "popped a fully pushed element");
            });
        });
    });
    p.main(|b| {
        b.spawn(pusher);
        b.spawn(popper);
    });
    p.build().expect("stack_bad builds")
}

/// `CS.sync01_bad` — a semaphore handshake whose final assertion is simply
/// wrong (the paper classifies this bug as not even schedule-dependent).
pub fn sync01_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.sync01_bad");
    let value = p.global("value", 0);
    let s = p.sem("s", 0);
    let producer = p.thread("producer", |b| {
        b.store(value, 1);
        b.sem_post(s);
    });
    let consumer = p.thread("consumer", |b| {
        let r = b.local("r");
        b.sem_wait(s);
        b.load(value, r);
        b.assert_cond(eq(r, 2), "consumer expects 2 but the producer writes 1");
    });
    p.main(|b| {
        b.spawn(producer);
        b.spawn(consumer);
    });
    p.build().expect("sync01_bad builds")
}

/// `CS.sync02_bad` — as [`sync01_bad`] but with a condition-variable
/// handshake.
pub fn sync02_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.sync02_bad");
    let value = p.global("value", 0);
    let ready = p.global("ready", 0);
    let m = p.mutex("m");
    let cv = p.condvar("cv");
    let producer = p.thread("producer", |b| {
        b.lock(m);
        b.store(value, 1);
        b.store(ready, 1);
        b.signal(cv);
        b.unlock(m);
    });
    let consumer = p.thread("consumer", |b| {
        let r = b.local("r");
        let rd = b.local("rd");
        b.lock(m);
        b.load(ready, rd);
        b.while_(eq(rd, 0), |b| {
            b.wait(cv, m);
            b.load(ready, rd);
        });
        b.load(value, r);
        b.unlock(m);
        b.assert_cond(eq(r, 2), "consumer expects 2 but the producer writes 1");
    });
    p.main(|b| {
        b.spawn(producer);
        b.spawn(consumer);
    });
    p.build().expect("sync02_bad builds")
}

/// `CS.token_ring_bad` — four threads forward a token around a ring, but no
/// thread waits for the token to arrive before forwarding, so the chain only
/// produces the expected value when the threads happen to run in ring order.
pub fn token_ring_bad() -> Program {
    let mut p = ProgramBuilder::new("CS.token_ring_bad");
    let cells = p.global_array_zeroed("cells", 5);
    let mut workers = Vec::new();
    for i in 0..4u32 {
        let w = p.thread(format!("node{i}"), move |b| {
            let r = b.local("r");
            b.load(cells.at(i), r);
            b.store(cells.at(i + 1), add(r, 1));
        });
        workers.push(w);
    }
    p.main(move |b| {
        let h = b.local("h");
        b.store(cells.at(0), 0);
        for &w in &workers {
            b.spawn(w);
        }
        // Join only the last node: on the default schedule the ring runs in
        // creation order and the token value is correct.
        b.assign(h, 4); // thread ids are assigned in creation order: 1..=4
        b.join(h);
        let r = b.local("r");
        b.load(cells.at(4), r);
        b.assert_cond(eq(r, 4), "token passed through all four nodes");
    });
    p.build().expect("token_ring_bad builds")
}

/// The `CS.twostage_X_bad` family: a worker publishes `data1` in a first
/// lock-protected stage and derives `data2 = data1 + 1` in a second stage; a
/// reader that interleaves between the stages observes `data1 != 0` but
/// `data2 == 0` and the derived-value assertion fails. `extra` additional
/// worker/reader pairs inflate the thread count (the `twostage_100` variant).
fn twostage(total_threads: u32) -> Program {
    let mut p = ProgramBuilder::new(if total_threads == 2 {
        "CS.twostage_bad".to_string()
    } else {
        format!("CS.twostage_{total_threads}_bad")
    });
    let data1 = p.global("data1", 0);
    let data2 = p.global("data2", 0);
    let l1 = p.mutex("lock1");
    let l2 = p.mutex("lock2");
    let worker = p.thread("worker", |b| {
        let r = b.local("r");
        b.lock(l1);
        b.store(data1, 1);
        b.unlock(l1);
        b.lock(l2);
        b.load(data1, r);
        b.store(data2, add(r, 1));
        b.unlock(l2);
    });
    let reader = p.thread("reader", |b| {
        let r1 = b.local("r1");
        let r2 = b.local("r2");
        b.lock(l1);
        b.load(data1, r1);
        b.unlock(l1);
        b.lock(l2);
        b.load(data2, r2);
        b.unlock(l2);
        b.if_(ne(r1, 0), |b| {
            b.assert_cond(eq(r2, add(r1, 1)), "data2 was derived from data1");
        });
    });
    let workers = total_threads - 1;
    p.main(move |b| {
        // One real worker plus (workers - 1) extra workers; the reader is
        // created last, as in the original benchmark.
        for _ in 0..workers {
            b.spawn(worker);
        }
        b.spawn(reader);
    });
    p.build().expect("twostage builds")
}

/// `CS.twostage_bad` — see `twostage` (3 threads launched... the original
/// launches 2 workers and 1 reader).
pub fn twostage_bad() -> Program {
    twostage(2)
}

/// `CS.twostage_100_bad` — see `twostage`; 100 threads launched.
pub fn twostage_100_bad() -> Program {
    twostage(100)
}

/// The `CS.wronglock_X_bad` family: a writer updates shared data under lock
/// `A`; `X` readers read the data twice under lock `B` (the *wrong* lock) and
/// assert the two reads agree.
fn wronglock(readers: u32) -> Program {
    let mut p = ProgramBuilder::new(if readers == 7 {
        "CS.wronglock_bad".to_string()
    } else {
        format!("CS.wronglock_{}_bad", readers)
    });
    let data = p.global("data", 0);
    let lock_a = p.mutex("A");
    let lock_b = p.mutex("B");
    let writer = p.thread("writer", |b| {
        let r = b.local("r");
        b.lock(lock_a);
        b.load(data, r);
        b.store(data, add(r, 1));
        b.unlock(lock_a);
    });
    let reader = p.thread("reader", |b| {
        let r1 = b.local("r1");
        let r2 = b.local("r2");
        b.lock(lock_b);
        b.load(data, r1);
        b.load(data, r2);
        b.unlock(lock_b);
        b.assert_cond(eq(r1, r2), "data stable while holding the (wrong) lock");
    });
    p.main(move |b| {
        b.spawn(writer);
        for _ in 0..readers {
            b.spawn(reader);
        }
    });
    p.build().expect("wronglock builds")
}

/// `CS.wronglock_3_bad` — see `wronglock`; 3 readers.
pub fn wronglock_3_bad() -> Program {
    wronglock(3)
}

/// `CS.wronglock_bad` — see `wronglock`; 7 readers.
pub fn wronglock_bad() -> Program {
    wronglock(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::prelude::*;
    use sct_runtime::ExecConfig;

    fn limits() -> ExploreLimits {
        ExploreLimits::with_schedule_limit(2_000)
    }

    fn idb(program: &sct_ir::Program) -> ExplorationStats {
        iterative_bounding(
            program,
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            &limits(),
        )
    }

    #[test]
    fn account_bad_is_found_by_delay_bounding() {
        let stats = idb(&account_bad());
        assert!(stats.found_bug());
        assert!(stats.bound_of_first_bug.unwrap() <= 2);
    }

    #[test]
    fn bluetooth_driver_needs_at_least_one_delay() {
        let stats = idb(&bluetooth_driver_bad());
        assert!(stats.found_bug());
        assert!(stats.bound_of_first_bug.unwrap() >= 1);
    }

    #[test]
    fn dining_philosophers_deadlock_on_the_first_schedule() {
        for n in [2u32, 3, 5] {
            let stats = idb(&din_phil_sat(n));
            assert!(stats.found_bug(), "din_phil{n} bug missed");
            assert_eq!(stats.bound_of_first_bug, Some(0), "din_phil{n}");
            assert_eq!(stats.schedules_to_first_bug, Some(1), "din_phil{n}");
        }
    }

    #[test]
    fn deadlock01_requires_a_preemption() {
        let stats = idb(&deadlock01_bad());
        assert!(stats.found_bug());
        assert!(stats.bound_of_first_bug.unwrap() >= 1);
        assert!(matches!(
            stats.first_bug,
            Some(sct_runtime::Bug::Deadlock { .. })
        ));
    }

    #[test]
    fn trivial_benchmarks_fail_on_the_default_schedule() {
        for (name, prog) in [
            ("arithmetic_prog", arithmetic_prog_bad()),
            ("fsbench", fsbench_bad()),
            ("lazy01", lazy01_bad()),
            ("phase01", phase01_bad()),
            ("sync01", sync01_bad()),
            ("sync02", sync02_bad()),
        ] {
            let stats = idb(&prog);
            assert_eq!(stats.bound_of_first_bug, Some(0), "{name}");
            assert_eq!(stats.schedules_to_first_bug, Some(1), "{name}");
        }
    }

    #[test]
    fn reorder_delay_bound_grows_with_thread_count() {
        let big = ExploreLimits::with_schedule_limit(10_000);
        let b3 = iterative_bounding(
            &reorder_3_bad(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            &big,
        )
        .bound_of_first_bug
        .unwrap();
        let b4 = iterative_bounding(
            &reorder_4_bad(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            &big,
        )
        .bound_of_first_bug
        .unwrap();
        assert!(b3 >= 1);
        assert!(
            b4 > b3,
            "more setter threads must require more delays ({b3} vs {b4})"
        );
        // Preemption bounding is insensitive to the extra threads.
        let p3 = iterative_bounding(
            &reorder_3_bad(),
            &ExecConfig::all_visible(),
            BoundKind::Preemption,
            &big,
        );
        let p4 = iterative_bounding(
            &reorder_4_bad(),
            &ExecConfig::all_visible(),
            BoundKind::Preemption,
            &big,
        );
        assert_eq!(p3.bound_of_first_bug, p4.bound_of_first_bug);
    }

    #[test]
    fn wronglock_and_stack_and_queue_bugs_are_schedule_dependent() {
        for (name, prog) in [
            ("wronglock_3", wronglock_3_bad()),
            ("stack", stack_bad()),
            ("queue", queue_bad()),
            ("circular_buffer", circular_buffer_bad()),
            ("twostage", twostage_bad()),
            ("carter01", carter01_bad()),
            ("token_ring", token_ring_bad()),
        ] {
            let stats = idb(&prog);
            assert!(stats.found_bug(), "{name}: bug not found");
            assert!(
                stats.bound_of_first_bug.unwrap() >= 1,
                "{name}: expected a schedule-dependent bug, found at bound 0"
            );
        }
    }
}

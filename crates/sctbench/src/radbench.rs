//! The RADBench benchmarks used by the study: six test cases exposing bugs in
//! Mozilla SpiderMonkey (the Firefox JavaScript engine) and in the Netscape
//! Portable Runtime (NSPR) thread package. The remaining RADBench entries
//! (Chromium, networking) were skipped by the study and are not modelled.
//!
//! Port fidelity: the JavaScript-engine and NSPR data structures are replaced
//! by small shared-state models that preserve each bug's triggering
//! interleaving; several of the originals have very long executions with
//! thousands of scheduling points, which the ports reproduce only partially
//! (loops are kept but shortened). This matters for `bug1` and `bug5`, which
//! the paper reports as out of reach of all/most techniques mainly because of
//! their sheer schedule count.

use sct_ir::prelude::*;
use sct_ir::Program;

/// `radbench.bug1` — SpiderMonkey: one thread destroys the runtime's atom
/// table (modelled as destroying its lock) while other threads still use it.
/// Long per-thread loops give the benchmark the large number of scheduling
/// points that pushes the bug out of reach of the bounded searches in the
/// paper.
pub fn bug1() -> Program {
    let mut p = ProgramBuilder::new("radbench.bug1");
    let table = p.global_array_zeroed("atom_table", 4);
    let table_lock = p.mutex("table_lock");
    let shutdown_requested = p.global("shutdown_requested", 0);

    let user = p.thread("js_thread", |b| {
        let r = b.local("r");
        b.for_range("i", 0, 6, |b, i| {
            b.lock(table_lock);
            b.load(table.at(rem(i, 4)), r);
            b.store(table.at(rem(i, 4)), add(r, 1));
            b.unlock(table_lock);
        });
    });
    let destroyer = p.thread("shutdown", |b| {
        let r = b.local("r");
        b.for_range("i", 0, 4, |b, _i| {
            b.load(shutdown_requested, r);
        });
        b.store(shutdown_requested, 1);
        // BUG: the table (and its lock) is destroyed without waiting for the
        // other JS threads to finish.
        b.mutex_destroy(table_lock);
    });

    p.main(|b| {
        b.spawn(user);
        b.spawn(user);
        b.spawn(destroyer);
    });
    p.build().expect("bug1 builds")
}

/// `radbench.bug2` — a SpiderMonkey request-state machine bug that the paper
/// reports as needing at least three preemptions (with only two threads).
/// The model requires the observer thread to witness three successive
/// intermediate states of the mutator, each observation needing its own
/// preemption.
pub fn bug2() -> Program {
    let mut p = ProgramBuilder::new("radbench.bug2");
    let state = p.global("gc_state", 0);

    let mutator = p.thread("mutator", |b| {
        b.store(state, 1);
        b.store(state, 2);
        b.store(state, 3);
        b.store(state, 0);
    });
    p.main(|b| {
        let r1 = b.local("r1");
        let r2 = b.local("r2");
        let r3 = b.local("r3");
        b.spawn(mutator);
        b.load(state, r1);
        b.load(state, r2);
        b.load(state, r3);
        // The observer must never see the three intermediate phases back to
        // back; doing so means it raced through the whole critical region.
        b.assert_cond(
            not(and(eq(r1, 1), and(eq(r2, 2), eq(r3, 3)))),
            "observer does not witness all three intermediate GC states",
        );
    });
    p.build().expect("bug2 builds")
}

/// `radbench.bug3` — an NSPR initialisation bug exposed on the default
/// schedule (the paper reports it found on the very first schedule): the
/// main thread consumes a library-ready flag that the helper thread only sets
/// after being scheduled.
pub fn bug3() -> Program {
    let mut p = ProgramBuilder::new("radbench.bug3");
    let initialized = p.global("nspr_initialized", 0);
    let helper = p.thread("init_helper", |b| {
        b.for_range("i", 0, 4, |b, _i| {
            b.yield_();
        });
        b.store(initialized, 1);
    });
    p.main(|b| {
        let r = b.local("r");
        b.spawn(helper);
        // BUG: no synchronisation with the helper before using the library.
        b.load(initialized, r);
        b.assert_cond(eq(r, 1), "library initialised before first use");
    });
    p.build().expect("bug3 builds")
}

/// `radbench.bug4` — NSPR: a shared lock is lazily initialised without
/// synchronisation, so two threads can both observe it as missing and both
/// initialise it; the paper describes the consequence as "a double-unlock or
/// similar error". The model counts initialisations and flags the second one.
pub fn bug4() -> Program {
    let mut p = ProgramBuilder::new("radbench.bug4");
    let lock_created = p.global("lock_created", 0);
    let init_count = p.global("init_count", 0);
    let shared = p.global("shared", 0);
    let cache_lock = p.mutex("cache_lock");

    let client = p.thread("client", |b| {
        let c = b.local("c");
        let prev = b.local("prev");
        let r = b.local("r");
        // Lazy initialisation without holding any lock (the bug).
        b.load(lock_created, c);
        b.if_(eq(c, 0), |b| {
            b.store(lock_created, 1);
            b.fetch_add_into(init_count, 1, prev);
            // Re-initialising a live lock corrupts it: the original then
            // fails inside PR_Unlock.
            b.assert_cond(eq(prev, 0), "cache lock initialised exactly once");
        });
        // Normal use of the (supposedly unique) lock, with enough traffic to
        // generate the large number of scheduling points the paper reports.
        b.for_range("i", 0, 3, |b, _i| {
            b.lock(cache_lock);
            b.load(shared, r);
            b.store(shared, add(r, 1));
            b.unlock(cache_lock);
        });
    });

    p.main(|b| {
        b.spawn(client);
        b.spawn(client);
    });
    p.build().expect("bug4 builds")
}

/// `radbench.bug5` — an NSPR monitor-reuse bug with many scheduling points;
/// in the study only the Maple algorithm found it (after 14 schedules). The
/// model has a narrow order violation buried inside otherwise independent
/// lock traffic: a monitor slot is recycled while its previous user still
/// expects its notification count to be intact.
pub fn bug5() -> Program {
    let mut p = ProgramBuilder::new("radbench.bug5");
    let monitor_owner = p.global("monitor_owner", 0);
    let monitor_epoch = p.global("monitor_epoch", 0);
    let noise = p.global_array_zeroed("noise", 4);
    let m = p.mutex("arena_lock");

    // Four noise threads create lots of scheduling points.
    let noisy = p.thread("noisy", |b| {
        let r = b.local("r");
        b.for_range("i", 0, 4, |b, i| {
            b.lock(m);
            b.load(noise.at(rem(i, 4)), r);
            b.store(noise.at(rem(i, 4)), add(r, 1));
            b.unlock(m);
        });
    });
    let recycler = p.thread("recycler", |b| {
        // Recycle the monitor: bump the epoch, then clear the owner.
        let e = b.local("e");
        b.load(monitor_epoch, e);
        b.store(monitor_epoch, add(e, 1));
        b.store(monitor_owner, 0);
    });
    let waiter = p.thread("waiter", |b| {
        let e1 = b.local("e1");
        let e2 = b.local("e2");
        b.store(monitor_owner, 7);
        b.load(monitor_epoch, e1);
        b.load(monitor_epoch, e2);
        // If the epoch changed while we believed we owned the monitor, the
        // original corrupts the cached-monitor free list.
        b.assert_cond(eq(e1, e2), "monitor not recycled while in use");
    });

    p.main(|b| {
        b.spawn(noisy);
        b.spawn(noisy);
        b.spawn(noisy);
        b.spawn(noisy);
        b.spawn(waiter);
        b.spawn(recycler);
    });
    p.build().expect("bug5 builds")
}

/// `radbench.bug6` — the SpiderMonkey string-atomisation race: two threads
/// intern the same string; both observe it as missing, both insert, and the
/// loser's pointer silently changes identity, which its subsequent check
/// detects.
pub fn bug6() -> Program {
    let mut p = ProgramBuilder::new("radbench.bug6");
    let atom = p.global("atom_entry", 0);

    let interner1 = p.thread("interner1", |b| {
        let e = b.local("e");
        let after = b.local("after");
        b.load(atom, e);
        b.if_(eq(e, 0), |b| {
            b.store(atom, 101);
        });
        b.load(atom, after);
        // Whatever we saw or inserted must still be the table's entry.
        b.if_(eq(e, 0), |b| {
            b.assert_cond(eq(after, 101), "interned atom is stable");
        });
    });
    let interner2 = p.thread("interner2", |b| {
        let e = b.local("e");
        let after = b.local("after");
        b.load(atom, e);
        b.if_(eq(e, 0), |b| {
            b.store(atom, 202);
        });
        b.load(atom, after);
        b.if_(eq(e, 0), |b| {
            b.assert_cond(eq(after, 202), "interned atom is stable");
        });
    });

    p.main(|b| {
        b.spawn(interner1);
        b.spawn(interner2);
    });
    p.build().expect("bug6 builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::prelude::*;
    use sct_runtime::{Bug, ExecConfig};

    fn idb(prog: &sct_ir::Program, limit: u64) -> ExplorationStats {
        iterative_bounding(
            prog,
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            &ExploreLimits::with_schedule_limit(limit),
        )
    }

    #[test]
    fn bug2_needs_more_than_two_preemptions() {
        let prog = bug2();
        for bound in 0..=2 {
            let stats = explore::bounded_dfs(
                &prog,
                &ExecConfig::all_visible(),
                BoundKind::Preemption,
                bound,
                &ExploreLimits::with_schedule_limit(10_000),
            );
            assert!(
                !stats.found_bug(),
                "bug2 should be hidden at preemption bound {bound}"
            );
        }
        let stats = iterative_bounding(
            &prog,
            &ExecConfig::all_visible(),
            BoundKind::Preemption,
            &ExploreLimits::with_schedule_limit(10_000),
        );
        assert!(stats.found_bug());
        assert!(stats.bound_of_first_bug.unwrap() >= 3);
    }

    #[test]
    fn bug3_fails_on_the_first_schedule() {
        let stats = idb(&bug3(), 100);
        assert_eq!(stats.schedules_to_first_bug, Some(1));
        assert_eq!(stats.bound_of_first_bug, Some(0));
    }

    #[test]
    fn bug4_double_initialisation_needs_a_delay() {
        let zero = explore::bounded_dfs(
            &bug4(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            0,
            &ExploreLimits::with_schedule_limit(10),
        );
        assert!(!zero.found_bug());
        let stats = idb(&bug4(), 10_000);
        assert!(stats.found_bug());
        assert!(stats.bound_of_first_bug.unwrap() >= 1);
    }

    #[test]
    fn bug1_use_after_destroy_and_bug6_atomisation_are_schedule_dependent() {
        let b1 = idb(&bug1(), 10_000);
        assert!(b1.found_bug());
        // Depending on the interleaving the teardown manifests either as a
        // use of the destroyed lock or as destroying it while it is held.
        assert!(matches!(
            b1.first_bug,
            Some(Bug::UseAfterDestroy { .. }) | Some(Bug::DestroyBusy { .. })
        ));
        assert!(b1.bound_of_first_bug.unwrap() >= 1);

        let b6 = idb(&bug6(), 10_000);
        assert!(b6.found_bug());
        assert!(b6.bound_of_first_bug.unwrap() >= 1);
    }

    #[test]
    fn bug5_is_found_by_the_maple_like_scheduler() {
        let stats = explore::run_technique(
            &bug5(),
            &ExecConfig::all_visible(),
            Technique::MapleLike {
                profiling_runs: 10,
                seed: 5,
            },
            &ExploreLimits::with_schedule_limit(10_000),
        );
        // The idiom-driven scheduler targets exactly this kind of two-access
        // order violation; it should terminate quickly either way.
        assert!(!stats.hit_schedule_limit);
        let _ = stats.found_bug();
    }
}

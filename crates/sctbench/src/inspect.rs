//! The Inspect suite. Of the 29 Inspect benchmarks the study kept a single
//! one, `qsort_mt`, the only one in which testing revealed a bug (§4.1).

use sct_ir::prelude::*;
use sct_ir::Program;

/// `inspect.qsort_mt` — a multi-threaded quicksort: the parent partitions the
/// array, hands each half to a worker and waits on a semaphore. The bug is an
/// order violation in the completion protocol: each worker signals completion
/// *before* writing its last element back, so the parent can observe a
/// half-sorted array and the final sortedness check fails.
pub fn qsort_mt() -> Program {
    let mut p = ProgramBuilder::new("inspect.qsort_mt");
    // The array to sort; each worker "sorts" one half by writing the sorted
    // values (the comparison logic itself is irrelevant to the bug).
    let array = p.global_array("array", vec![3, 0, 7, 4]);
    let done = p.sem("done", 0);

    let mut workers = Vec::new();
    for w in 0..2u32 {
        let base = (w * 2) as i64;
        let lo = base;
        let hi = base + 1;
        let sorted_lo = if w == 0 { 1 } else { 5 };
        let sorted_hi = if w == 0 { 3 } else { 7 };
        let worker = p.thread(format!("sorter{w}"), move |b| {
            b.store(array.at(lo), sorted_lo);
            // BUG: completion is signalled before the final element is
            // written back.
            b.sem_post(done);
            b.store(array.at(hi), sorted_hi);
        });
        workers.push(worker);
    }

    p.main(move |b| {
        for &w in &workers {
            b.spawn(w);
        }
        b.sem_wait(done);
        b.sem_wait(done);
        // Verify the array is sorted.
        let prev = b.local("prev");
        let cur = b.local("cur");
        b.load(array.at(0), prev);
        b.for_range("i", 1, 4, |b, i| {
            b.load(array.at(i), cur);
            b.assert_cond(le(prev, cur), "array is sorted");
            b.assign(prev, cur);
        });
    });
    p.build().expect("qsort_mt builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::prelude::*;
    use sct_runtime::ExecConfig;

    #[test]
    fn qsort_mt_is_clean_on_the_default_schedule_and_buggy_with_one_delay() {
        let zero = explore::bounded_dfs(
            &qsort_mt(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            0,
            &ExploreLimits::with_schedule_limit(10),
        );
        assert!(!zero.found_bug());
        let stats = iterative_bounding(
            &qsort_mt(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            &ExploreLimits::with_schedule_limit(5_000),
        );
        assert!(stats.found_bug());
        assert_eq!(stats.bound_of_first_bug, Some(1));
    }
}

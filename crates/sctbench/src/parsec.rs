//! The PARSEC 2.0 benchmarks used by the study: `ferret` (content similarity
//! search) and three versions of `streamcluster` (online clustering), each
//! containing a distinct bug. As in the study, the "test" input sizes are
//! used, the `streamcluster` benchmarks use non-spinning synchronisation and
//! an output check has been added where the original does not verify its own
//! output (§4.1, §4.2).
//!
//! Port fidelity: the image-search / clustering maths is replaced by counter
//! and array traffic; the pipeline / barrier structure and the location of
//! each bug follow the originals.

use sct_ir::prelude::*;
use sct_ir::Program;

/// `parsec.ferret` — the ferret pipeline (load → segment → extract → vector →
/// rank → output) with two threads per middle stage, eleven threads in all.
/// Each middle stage forwards items through semaphores and accounts them in a
/// per-stage counter that is read-modify-written **without** synchronisation;
/// the output stage's final tally check fails when two workers of the same
/// stage race on the counter. Exposing the race requires a worker to be
/// preempted between its read and write of the stage counter while the rest
/// of the pipeline drains — a needle-in-a-haystack schedule, as in the
/// original (the paper reports exactly one buggy schedule under IDB).
pub fn ferret() -> Program {
    let mut p = ProgramBuilder::new("parsec.ferret");
    let stages = 4usize; // segment, extract, vector, rank
    let items = 4i64;
    // Semaphore per stage input plus one for the output stage.
    let input_sems = p.sem_array("stage_input", stages as u32 + 1, 0);
    let counters = p.global_array_zeroed("stage_counters", stages);

    // Two workers per middle stage.
    let mut stage_threads = Vec::new();
    for s in 0..stages {
        let t = p.thread(format!("stage{s}_worker"), move |b| {
            let r = b.local("r");
            b.for_range("i", 0, items / 2, |b, _i| {
                b.sem_wait(input_sems.at(s));
                // Unsynchronised per-stage accounting (the bug).
                b.load(counters.at(s), r);
                b.store(counters.at(s), add(r, 1));
                b.sem_post(input_sems.at(s + 1));
            });
        });
        stage_threads.push(t);
    }
    let sink = p.thread("output", move |b| {
        let r = b.local("r");
        b.for_range("i", 0, items, |b, _i| {
            b.sem_wait(input_sems.at(stages));
        });
        // Every stage must have accounted every item exactly once.
        for s in 0..stages {
            b.load(counters.at(s), r);
            b.assert_cond(eq(r, items), "stage accounted all items");
        }
    });

    p.main(move |b| {
        for &t in &stage_threads {
            b.spawn(t);
            b.spawn(t);
        }
        b.spawn(sink);
        // The load stage runs on the main thread and feeds the pipeline.
        b.for_range("i", 0, items, |b, _i| {
            b.sem_post(input_sems.at(0));
        });
    });
    p.build().expect("ferret builds")
}

/// `parsec.streamcluster` — the custom ad-hoc barrier of streamcluster uses a
/// flag that workers read outside the protecting lock. The coordinator
/// publishes the phase result *after* raising the flag, so a worker that takes
/// the racy fast path can consume the result of the previous phase; the added
/// output check fails.
pub fn streamcluster() -> Program {
    let mut p = ProgramBuilder::new("parsec.streamcluster");
    let phase_result = p.global("phase_result", 0);
    let flag = p.global("barrier_flag", 0);
    let output = p.global_array_zeroed("output", 2);
    let ready = p.sem("ready", 0);
    let done = p.sem("done", 0);

    // Coordinator (modelled as a separate thread; the main thread collects
    // the output, mirroring the benchmark's master/worker split).
    let coordinator = p.thread("coordinator", |b| {
        // BUG: the flag is raised before the phase result is published.
        b.store(flag, 1);
        b.store(phase_result, 42);
        b.sem_post(ready);
    });
    let worker = p.thread("worker", |b| {
        let f = b.local("f");
        let r = b.local("r");
        // Racy fast path: if the flag is already up, skip the semaphore.
        b.load(flag, f);
        b.if_else(
            ne(f, 0),
            |b| {
                b.load(phase_result, r);
            },
            |b| {
                b.sem_wait(ready);
                b.load(phase_result, r);
            },
        );
        b.store(output.at(0), r);
        b.sem_post(done);
    });
    // Two further helper threads keep the thread count at five as in Table 3
    // (the real benchmark runs with two worker threads plus helper threads).
    let helper = p.thread("helper", |b| {
        let r = b.local("r");
        b.load(output.at(1), r);
        b.store(output.at(1), add(r, 0));
    });

    p.main(move |b| {
        b.spawn(coordinator);
        b.spawn(worker);
        b.spawn(helper);
        b.spawn(helper);
        b.sem_wait(done);
        let r = b.local("r");
        b.load(output.at(0), r);
        b.assert_cond(eq(r, 42), "worker consumed the current phase's result");
    });
    p.build().expect("streamcluster builds")
}

/// `parsec.streamcluster2` — the older streamcluster version whose
/// condition-variable barrier loses a wake-up: a worker checks the arrival
/// count, releases the lock, and only then blocks on the condition variable,
/// so a broadcast issued in the window is missed and the worker (and with it
/// the whole program) hangs. The bug needs three threads (Table 3 notes the
/// bug requires three threads).
pub fn streamcluster2() -> Program {
    let mut p = ProgramBuilder::new("parsec.streamcluster2");
    let arrived = p.global("arrived", 0);
    let m = p.mutex("barrier_lock");
    let cv = p.condvar("barrier_cv");
    let participants = 3i64;

    let worker = p.thread("worker", move |b| {
        let c = b.local("c");
        b.lock(m);
        b.load(arrived, c);
        b.assign(c, add(c, 1));
        b.store(arrived, c);
        b.if_else(
            lt(c, participants),
            |b| {
                // BUG: the lock is released before blocking, so the final
                // arrival's broadcast can fire in between and the wait below
                // sleeps forever.
                b.unlock(m);
                b.lock(m);
                b.wait(cv, m);
                b.unlock(m);
            },
            |b| {
                b.broadcast(cv);
                b.unlock(m);
            },
        );
    });
    // Three barrier participants plus three helper threads (seven threads in
    // total, as in Table 3, with at most three enabled at once).
    let helper = p.thread("helper", |b| {
        b.yield_();
    });

    p.main(move |b| {
        let h = b.local("h");
        b.spawn(worker);
        b.spawn(worker);
        b.spawn(worker);
        b.spawn(helper);
        b.spawn(helper);
        b.spawn(helper);
        // Wait for the last-created worker so a lost wake-up manifests as a
        // deadlock of the whole program.
        b.assign(h, 3);
        b.join(h);
    });
    p.build().expect("streamcluster2 builds")
}

/// `parsec.streamcluster3` — the previously unknown bug the study found with
/// its out-of-bounds detector: a worker indexes the feasible-centres array
/// with a count read from shared memory while the coordinator is still
/// growing it, so the index can exceed the allocated length. The runtime's
/// bounds check plays the role of the study's memory-safety instrumentation.
pub fn streamcluster3() -> Program {
    let mut p = ProgramBuilder::new("parsec.streamcluster3");
    let centres = p.global_array_zeroed("centres", 4);
    let num_centres = p.global("num_centres", 4);
    let out = p.global("out", 0);

    let grower = p.thread("grower", |b| {
        // The coordinator logically grows the centre set beyond the array's
        // real allocation (the original forgets to reallocate).
        b.store(num_centres, 8);
    });
    let worker = p.thread("worker", |b| {
        let n = b.local("n");
        let v = b.local("v");
        b.load(num_centres, n);
        // Access the last centre: out of bounds once the grower has run.
        b.load(centres.at(sub(n, 1)), v);
        b.store(out, v);
    });
    let helper = p.thread("helper", |b| {
        b.yield_();
    });

    p.main(move |b| {
        b.spawn(worker);
        b.spawn(grower);
        b.spawn(helper);
        b.spawn(helper);
    });
    p.build().expect("streamcluster3 builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::prelude::*;
    use sct_runtime::{Bug, ExecConfig};

    fn idb(prog: &sct_ir::Program, limit: u64) -> ExplorationStats {
        iterative_bounding(
            prog,
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            &ExploreLimits::with_schedule_limit(limit),
        )
    }

    #[test]
    fn streamcluster_order_violation_found_with_one_delay() {
        let stats = idb(&streamcluster(), 5_000);
        assert!(stats.found_bug());
        assert_eq!(stats.bound_of_first_bug, Some(1));
    }

    #[test]
    fn streamcluster2_lost_wakeup_is_a_deadlock() {
        let stats = idb(&streamcluster2(), 5_000);
        assert!(stats.found_bug());
        assert!(matches!(stats.first_bug, Some(Bug::Deadlock { .. })));
    }

    #[test]
    fn streamcluster3_out_of_bounds_is_detected() {
        let stats = idb(&streamcluster3(), 5_000);
        assert!(stats.found_bug());
        assert!(matches!(stats.first_bug, Some(Bug::OutOfBounds { .. })));
    }

    #[test]
    fn ferret_is_clean_on_the_default_schedule() {
        let zero = explore::bounded_dfs(
            &ferret(),
            &ExecConfig::all_visible(),
            BoundKind::Delay,
            0,
            &ExploreLimits::with_schedule_limit(10),
        );
        assert!(!zero.found_bug());
    }

    #[test]
    fn ferret_lost_update_is_found_by_random_search() {
        let stats = explore::run_technique(
            &ferret(),
            &ExecConfig::all_visible(),
            Technique::Random { seed: 3 },
            &ExploreLimits::with_schedule_limit(5_000),
        );
        // The race is narrow; random search may or may not hit it within the
        // budget (the paper's Rand missed it too). The property we check is
        // that exploration completes without runtime errors and never
        // diverges.
        assert_eq!(stats.diverged_schedules, 0);
    }
}

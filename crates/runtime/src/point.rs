//! Scheduling points: the information handed to a scheduler when it must pick
//! the next thread to run.

use crate::thread::ThreadId;
use sct_ir::Loc;

/// A summary of the visible operation a thread is parked at. Schedulers that
/// are heuristics over program structure (e.g. the Maple-like idiom scheduler)
/// use this; the systematic schedulers only need the enabled set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingOp {
    /// The thread this summary describes.
    pub thread: ThreadId,
    /// Static location of the pending visible operation.
    pub loc: Loc,
    /// Flattened address of the shared cell accessed, when the pending
    /// operation is a memory access.
    pub addr: Option<usize>,
    /// Whether the pending operation writes shared memory.
    pub is_write: bool,
}

impl PendingOp {
    /// Conservative independence between the *steps* these two summaries
    /// begin: true only when both are shared-memory accesses that commute —
    /// different addresses, or the same address with neither writing. A
    /// pending operation with no address (lock, unlock, spawn, join, wait,
    /// signal, semaphore and barrier operations, yield) is treated as
    /// dependent on everything, which is what makes sleep-set partial-order
    /// reduction over these summaries sound: an operation that can affect
    /// another thread's enabledness always wakes sleeping threads.
    pub fn independent_of(&self, other: &PendingOp) -> bool {
        match (self.addr, other.addr) {
            (Some(a), Some(b)) => a != b || !(self.is_write || other.is_write),
            _ => false,
        }
    }
}

/// The state presented to a scheduler at a scheduling point.
#[derive(Debug, Clone)]
pub struct SchedulingPoint {
    /// Threads that can take a step, in thread-id order.
    pub enabled: Vec<ThreadId>,
    /// The thread that executed the previous step (`None` at the first step).
    pub last: Option<ThreadId>,
    /// Whether the previous thread is still enabled — the condition under
    /// which choosing a different thread counts as a *preemption* (§2).
    pub last_enabled: bool,
    /// Total number of threads created so far (defines the round-robin order
    /// used by delay bounding).
    pub num_threads: usize,
    /// Index of the step about to be taken (0-based).
    pub step_index: usize,
    /// Pending-operation summaries for the enabled threads, in the same order
    /// as `enabled`.
    pub pending: Vec<PendingOp>,
}

impl SchedulingPoint {
    /// True when more than one thread is enabled, i.e. the scheduler has an
    /// actual choice. The paper's "# max scheduling points" column counts
    /// points with this property.
    pub fn has_choice(&self) -> bool {
        self.enabled.len() > 1
    }

    /// Whether `t` is enabled at this point.
    pub fn is_enabled(&self, t: ThreadId) -> bool {
        self.enabled.contains(&t)
    }

    /// The choice the non-preemptive round-robin deterministic scheduler
    /// would make: keep running the previous thread if it is still enabled,
    /// otherwise take the next enabled thread in creation order, wrapping
    /// around (this is the deterministic scheduler delay bounding is defined
    /// against in §2 of the paper).
    pub fn round_robin_choice(&self) -> ThreadId {
        debug_assert!(!self.enabled.is_empty());
        let start = match self.last {
            Some(t) if self.last_enabled => return t,
            Some(t) => t.index(),
            None => 0,
        };
        let n = self.num_threads.max(1);
        for offset in 0..n {
            let candidate = ThreadId((start + offset) % n);
            if self.is_enabled(candidate) {
                return candidate;
            }
        }
        // Fall back to the lowest-id enabled thread (unreachable when
        // `enabled ⊆ 0..num_threads`, which the runtime guarantees).
        self.enabled[0]
    }

    /// The number of *delays* needed to schedule `t` at this point: the
    /// number of enabled threads that are skipped when walking round-robin
    /// from the previous thread to `t` (definition of `delays(α, t)` in §2).
    pub fn delays_for(&self, t: ThreadId) -> u32 {
        debug_assert!(self.is_enabled(t));
        let n = self.num_threads.max(1);
        let start = match self.last {
            // At the very first scheduling point the deterministic scheduler
            // is at thread 0, so scheduling thread 0 costs no delay.
            None => 0,
            Some(last) => last.index(),
        };
        let distance = (t.index() + n - start) % n;
        let mut delays = 0;
        for x in 0..distance {
            let skipped = ThreadId((start + x) % n);
            let skipped_enabled = if Some(skipped) == self.last {
                self.last_enabled
            } else {
                self.is_enabled(skipped)
            };
            if skipped_enabled {
                delays += 1;
            }
        }
        delays
    }

    /// The preemption cost of choosing `t` at this point: 1 when the previous
    /// thread is still enabled and a different thread is chosen, 0 otherwise
    /// (definition of the preemption count `PC` in §2).
    pub fn preemptions_for(&self, t: ThreadId) -> u32 {
        match self.last {
            Some(last) if self.last_enabled && last != t => 1,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::TemplateId;

    fn point(
        enabled: &[usize],
        last: Option<usize>,
        last_enabled: bool,
        num_threads: usize,
    ) -> SchedulingPoint {
        SchedulingPoint {
            enabled: enabled.iter().map(|&i| ThreadId(i)).collect(),
            last: last.map(ThreadId),
            last_enabled,
            num_threads,
            step_index: 0,
            pending: enabled
                .iter()
                .map(|&i| PendingOp {
                    thread: ThreadId(i),
                    loc: Loc {
                        template: TemplateId(0),
                        pc: 0,
                    },
                    addr: None,
                    is_write: false,
                })
                .collect(),
        }
    }

    #[test]
    fn round_robin_keeps_running_the_last_thread() {
        let p = point(&[0, 1, 2], Some(1), true, 3);
        assert_eq!(p.round_robin_choice(), ThreadId(1));
    }

    #[test]
    fn round_robin_moves_to_next_enabled_when_last_blocked() {
        let p = point(&[0, 2], Some(1), false, 3);
        assert_eq!(p.round_robin_choice(), ThreadId(2));
        let p = point(&[0], Some(2), false, 3);
        assert_eq!(p.round_robin_choice(), ThreadId(0));
    }

    #[test]
    fn preemption_cost_matches_definition() {
        let p = point(&[0, 1], Some(0), true, 2);
        assert_eq!(p.preemptions_for(ThreadId(0)), 0);
        assert_eq!(p.preemptions_for(ThreadId(1)), 1);
        // A non-preemptive context switch (last thread disabled) costs nothing.
        let p = point(&[1], Some(0), false, 2);
        assert_eq!(p.preemptions_for(ThreadId(1)), 0);
    }

    #[test]
    fn delay_cost_matches_paper_example() {
        // Paper §2: last(α) = 3, enabled = {0, 2, 3, 4}, N = 5.
        // delays(α, 2) = 3 because threads 3, 4 and 0 are skipped.
        let p = point(&[0, 2, 3, 4], Some(3), true, 5);
        assert_eq!(p.delays_for(ThreadId(2)), 3);
        assert_eq!(p.delays_for(ThreadId(3)), 0);
        assert_eq!(p.delays_for(ThreadId(4)), 1);
        assert_eq!(p.delays_for(ThreadId(0)), 2);
    }

    #[test]
    fn delay_cost_when_last_thread_is_disabled() {
        // Continuing past a disabled thread costs nothing extra.
        let p = point(&[1, 2], Some(0), false, 3);
        assert_eq!(p.delays_for(ThreadId(1)), 0);
        assert_eq!(p.delays_for(ThreadId(2)), 1);
    }

    #[test]
    fn first_point_charges_delays_from_thread_zero() {
        let p = point(&[0], None, false, 1);
        assert_eq!(p.delays_for(ThreadId(0)), 0);
        assert_eq!(p.preemptions_for(ThreadId(0)), 0);
    }

    #[test]
    fn pending_op_independence_matches_the_dependence_relation() {
        let op = |thread: usize, addr: Option<usize>, is_write: bool| PendingOp {
            thread: ThreadId(thread),
            loc: Loc {
                template: TemplateId(0),
                pc: 0,
            },
            addr,
            is_write,
        };
        // Reads of different cells, and of the same cell, commute.
        assert!(op(0, Some(1), false).independent_of(&op(1, Some(2), false)));
        assert!(op(0, Some(1), false).independent_of(&op(1, Some(1), false)));
        // Writes commute only across different cells.
        assert!(op(0, Some(1), true).independent_of(&op(1, Some(2), true)));
        assert!(!op(0, Some(1), true).independent_of(&op(1, Some(1), false)));
        assert!(!op(0, Some(1), false).independent_of(&op(1, Some(1), true)));
        // Address-less operations (sync objects, spawn, join, yield) are
        // dependent on everything, in both argument positions.
        assert!(!op(0, None, false).independent_of(&op(1, Some(1), false)));
        assert!(!op(0, Some(1), false).independent_of(&op(1, None, false)));
        assert!(!op(0, None, false).independent_of(&op(1, None, false)));
    }

    #[test]
    fn has_choice_requires_two_enabled_threads() {
        assert!(!point(&[0], Some(0), true, 1).has_choice());
        assert!(point(&[0, 1], Some(0), true, 2).has_choice());
    }
}

//! # sct-runtime
//!
//! A controlled, deterministic execution runtime for multi-threaded test
//! programs expressed in the [`sct_ir`] intermediate representation.
//!
//! This crate is the substrate that plays the role of Maple/PIN in the
//! PPoPP'14 study "Concurrency Testing Using Schedule Bounding: an Empirical
//! Study": it serialises execution, emulating concurrency by interleaving
//! *visible operations* from different threads, and hands every scheduling
//! decision to a caller-provided function. The only source of nondeterminism
//! is the scheduler, so replaying a schedule always reproduces the same
//! program state — the core assumption behind systematic concurrency testing.
//!
//! Key concepts (matching §2 of the paper):
//!
//! * a **step** is a visible operation followed by the invisible (thread
//!   local) operations up to, but not including, the next visible operation;
//! * a **scheduling point** is the state just before a visible operation,
//!   where the scheduler picks the next thread among the *enabled* threads;
//! * a **terminal schedule** is one that reaches a state with no enabled
//!   threads; a schedule that triggers a bug is also terminal;
//! * which memory accesses count as visible operations is configurable
//!   ([`VisibilityMode`]): always for synchronisation operations and atomics,
//!   and — following the study's methodology — for the set of *racy
//!   locations* identified by a prior race-detection phase.
//!
//! The runtime detects deadlocks, assertion failures, explicit failure
//! statements, misuse of synchronisation objects (unlocking a mutex that is
//! not held, operations on destroyed mutexes) and out-of-bounds accesses to
//! modelled arrays.

pub mod bug;
pub mod config;
pub mod exec;
pub mod objects;
pub mod observer;
pub mod outcome;
pub mod point;
pub mod thread;
pub mod threadset;

pub use bug::Bug;
pub use config::{ExecConfig, VisibilityMode};
pub use exec::Execution;
pub use observer::{ExecObserver, NoopObserver, SyncObjectId};
pub use outcome::{ExecutionOutcome, StepRecord};
pub use point::{PendingOp, SchedulingPoint};
pub use thread::{ThreadId, ThreadStatus};
pub use threadset::ThreadSet;

use sct_ir::Program;

/// Run `program` once, calling `choose` at every scheduling point, and return
/// the outcome. This is the simplest entry point; explorers that need
/// observers or custom configuration construct an [`Execution`] directly.
pub fn run_once(
    program: &Program,
    config: &ExecConfig,
    mut choose: impl FnMut(&SchedulingPoint) -> ThreadId,
) -> ExecutionOutcome {
    let mut exec = Execution::new_shared(program, config);
    exec.run(&mut choose, &mut NoopObserver)
}

//! Bug classification. The study counts deadlocks, crashes and assertion
//! failures (including incorrect-output checks) as bugs; our runtime adds
//! the memory-safety and synchronisation-misuse checks the paper discusses in
//! §4.2 ("Memory safety", "Bugs may not be detected without additional
//! checks").

use crate::thread::ThreadId;
use sct_ir::Loc;
use std::fmt;

/// A bug detected during execution. Detecting any bug makes the current
/// schedule terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bug {
    /// An `assert` statement evaluated to false.
    AssertionFailure {
        thread: ThreadId,
        loc: Loc,
        msg: String,
    },
    /// A `fail` statement was reached (models crashes / detected corruption).
    ExplicitFailure {
        thread: ThreadId,
        loc: Loc,
        msg: String,
    },
    /// No thread is enabled but at least one thread has not finished.
    Deadlock { blocked: Vec<ThreadId> },
    /// A thread released a mutex it did not hold (double unlock or unlock of
    /// a never-acquired mutex).
    UnlockNotHeld { thread: ThreadId, loc: Loc },
    /// A mutex, or a condition wait's mutex, was used after being destroyed.
    UseAfterDestroy { thread: ThreadId, loc: Loc },
    /// A mutex was destroyed while held or while threads were waiting on it.
    DestroyBusy { thread: ThreadId, loc: Loc },
    /// An indexed access fell outside the bounds of its array declaration.
    OutOfBounds {
        thread: ThreadId,
        loc: Loc,
        index: i64,
        len: u32,
    },
    /// `join` was called on a thread id that does not exist.
    InvalidJoin {
        thread: ThreadId,
        loc: Loc,
        target: i64,
    },
    /// `wait` was called on a mutex the thread does not hold.
    WaitWithoutMutex { thread: ThreadId, loc: Loc },
    /// The execution exceeded the configured step budget; with the
    /// terminating benchmarks in SCTBench this indicates a livelock
    /// (e.g. a spin loop whose exit flag is never set by the schedule).
    StepLimitExceeded { limit: usize },
}

impl Bug {
    /// Short machine-readable kind, used in experiment CSV output.
    pub fn kind(&self) -> &'static str {
        match self {
            Bug::AssertionFailure { .. } => "assert",
            Bug::ExplicitFailure { .. } => "crash",
            Bug::Deadlock { .. } => "deadlock",
            Bug::UnlockNotHeld { .. } => "unlock-not-held",
            Bug::UseAfterDestroy { .. } => "use-after-destroy",
            Bug::DestroyBusy { .. } => "destroy-busy",
            Bug::OutOfBounds { .. } => "out-of-bounds",
            Bug::InvalidJoin { .. } => "invalid-join",
            Bug::WaitWithoutMutex { .. } => "wait-without-mutex",
            Bug::StepLimitExceeded { .. } => "step-limit",
        }
    }

    /// Whether this bug should be counted as a concurrency bug for the
    /// purposes of the study. Step-limit exhaustion is a divergence signal,
    /// not a bug.
    pub fn counts_as_bug(&self) -> bool {
        !matches!(self, Bug::StepLimitExceeded { .. })
    }
}

impl fmt::Display for Bug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bug::AssertionFailure { thread, loc, msg } => {
                write!(f, "assertion failure in {thread} at {loc}: {msg}")
            }
            Bug::ExplicitFailure { thread, loc, msg } => {
                write!(f, "failure in {thread} at {loc}: {msg}")
            }
            Bug::Deadlock { blocked } => {
                write!(f, "deadlock; blocked threads: ")?;
                for (i, t) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            Bug::UnlockNotHeld { thread, loc } => {
                write!(f, "{thread} released a mutex it does not hold at {loc}")
            }
            Bug::UseAfterDestroy { thread, loc } => {
                write!(f, "{thread} used a destroyed mutex at {loc}")
            }
            Bug::DestroyBusy { thread, loc } => {
                write!(f, "{thread} destroyed a busy mutex at {loc}")
            }
            Bug::OutOfBounds {
                thread,
                loc,
                index,
                len,
            } => write!(
                f,
                "{thread} accessed index {index} of an array of length {len} at {loc}"
            ),
            Bug::InvalidJoin {
                thread,
                loc,
                target,
            } => {
                write!(f, "{thread} joined non-existent thread {target} at {loc}")
            }
            Bug::WaitWithoutMutex { thread, loc } => {
                write!(
                    f,
                    "{thread} waited on a condvar without holding the mutex at {loc}"
                )
            }
            Bug::StepLimitExceeded { limit } => {
                write!(f, "execution exceeded the step limit of {limit}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::TemplateId;

    fn loc() -> Loc {
        Loc {
            template: TemplateId(0),
            pc: 3,
        }
    }

    #[test]
    fn kinds_are_stable_strings() {
        let b = Bug::AssertionFailure {
            thread: ThreadId(1),
            loc: loc(),
            msg: "x".into(),
        };
        assert_eq!(b.kind(), "assert");
        assert!(b.counts_as_bug());
        let d = Bug::Deadlock {
            blocked: vec![ThreadId(0), ThreadId(1)],
        };
        assert_eq!(d.kind(), "deadlock");
        let s = Bug::StepLimitExceeded { limit: 10 };
        assert!(!s.counts_as_bug());
    }

    #[test]
    fn display_is_informative() {
        let b = Bug::OutOfBounds {
            thread: ThreadId(2),
            loc: loc(),
            index: 9,
            len: 4,
        };
        let text = b.to_string();
        assert!(text.contains("t2"));
        assert!(text.contains('9'));
        assert!(text.contains('4'));
        let d = Bug::Deadlock {
            blocked: vec![ThreadId(0), ThreadId(3)],
        };
        assert!(d.to_string().contains("t0, t3"));
    }

    #[test]
    fn deadlock_display_preserves_blocked_thread_order() {
        // The runtime builds the blocked list by scanning thread ids in
        // ascending order, and Display renders it verbatim — so equivalent
        // deadlocks format identically and bug-set differentials can compare
        // the strings. A single blocked thread gets no trailing separator.
        let d = Bug::Deadlock {
            blocked: vec![ThreadId(0), ThreadId(2), ThreadId(5)],
        };
        assert_eq!(d.to_string(), "deadlock; blocked threads: t0, t2, t5");
        let single = Bug::Deadlock {
            blocked: vec![ThreadId(4)],
        };
        assert_eq!(single.to_string(), "deadlock; blocked threads: t4");
        // Order is not normalised at display time: the constructor's
        // ascending scan is the canonical form, and Display must not hide a
        // constructor that stops producing it.
        let reversed = Bug::Deadlock {
            blocked: vec![ThreadId(5), ThreadId(2)],
        };
        assert_eq!(reversed.to_string(), "deadlock; blocked threads: t5, t2");
    }
}

//! Execution observers: hooks through which analyses (notably the dynamic
//! data-race detector in `sct-race`) watch an execution without being coupled
//! to the interpreter.

use crate::thread::ThreadId;
use sct_ir::Loc;

/// Identity of a synchronisation object for happens-before purposes.
///
/// Atomic memory cells are included because sequentially consistent atomics
/// order accesses to the same cell, which is exactly the edge a race detector
/// needs to avoid reporting races between atomics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncObjectId {
    /// A mutex instance (flattened index).
    Mutex(usize),
    /// A condition-variable instance.
    Condvar(usize),
    /// A semaphore instance.
    Sem(usize),
    /// A barrier instance.
    Barrier(usize),
    /// An atomic memory cell (flattened global cell index).
    AtomicCell(usize),
}

/// Observer of runtime events. All methods have default empty implementations
/// so observers only override what they need.
pub trait ExecObserver {
    /// A new thread `child` was created by `parent`.
    fn on_thread_created(&mut self, parent: ThreadId, child: ThreadId) {
        let _ = (parent, child);
    }
    /// Thread `thread` finished executing.
    fn on_thread_finished(&mut self, thread: ThreadId) {
        let _ = thread;
    }
    /// Thread `joiner` observed the termination of `joined`.
    fn on_join(&mut self, joiner: ThreadId, joined: ThreadId) {
        let _ = (joiner, joined);
    }
    /// Thread `thread` performed an acquire-style operation on `object`
    /// (mutex lock, semaphore wait, barrier exit, atomic access).
    fn on_acquire(&mut self, thread: ThreadId, object: SyncObjectId) {
        let _ = (thread, object);
    }
    /// Thread `thread` performed a release-style operation on `object`
    /// (mutex unlock, semaphore post, barrier entry, condvar signal, atomic
    /// access).
    fn on_release(&mut self, thread: ThreadId, object: SyncObjectId) {
        let _ = (thread, object);
    }
    /// Thread `thread` accessed shared cell `addr` (flattened index) from the
    /// static location `loc`.
    fn on_access(&mut self, thread: ThreadId, loc: Loc, addr: usize, is_write: bool, atomic: bool) {
        let _ = (thread, loc, addr, is_write, atomic);
    }
}

/// Observer that ignores all events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl ExecObserver for NoopObserver {}

/// Observer that counts events; useful in tests and as an example of the
/// observer interface.
#[derive(Debug, Default, Clone)]
pub struct CountingObserver {
    /// Number of threads created (excluding the initial thread).
    pub threads_created: usize,
    /// Number of thread terminations observed.
    pub threads_finished: usize,
    /// Number of acquire events.
    pub acquires: usize,
    /// Number of release events.
    pub releases: usize,
    /// Number of shared-memory accesses.
    pub accesses: usize,
    /// Number of write accesses.
    pub writes: usize,
    /// Number of join edges.
    pub joins: usize,
}

impl ExecObserver for CountingObserver {
    fn on_thread_created(&mut self, _parent: ThreadId, _child: ThreadId) {
        self.threads_created += 1;
    }
    fn on_thread_finished(&mut self, _thread: ThreadId) {
        self.threads_finished += 1;
    }
    fn on_join(&mut self, _joiner: ThreadId, _joined: ThreadId) {
        self.joins += 1;
    }
    fn on_acquire(&mut self, _thread: ThreadId, _object: SyncObjectId) {
        self.acquires += 1;
    }
    fn on_release(&mut self, _thread: ThreadId, _object: SyncObjectId) {
        self.releases += 1;
    }
    fn on_access(
        &mut self,
        _thread: ThreadId,
        _loc: Loc,
        _addr: usize,
        is_write: bool,
        _atomic: bool,
    ) {
        self.accesses += 1;
        if is_write {
            self.writes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_ir::TemplateId;

    #[test]
    fn noop_observer_accepts_all_events() {
        let mut o = NoopObserver;
        o.on_thread_created(ThreadId(0), ThreadId(1));
        o.on_acquire(ThreadId(1), SyncObjectId::Mutex(0));
        o.on_access(
            ThreadId(1),
            Loc {
                template: TemplateId(0),
                pc: 0,
            },
            0,
            true,
            false,
        );
    }

    #[test]
    fn counting_observer_counts() {
        let mut o = CountingObserver::default();
        o.on_thread_created(ThreadId(0), ThreadId(1));
        o.on_thread_finished(ThreadId(1));
        o.on_join(ThreadId(0), ThreadId(1));
        o.on_acquire(ThreadId(0), SyncObjectId::Sem(0));
        o.on_release(ThreadId(0), SyncObjectId::Sem(0));
        o.on_access(
            ThreadId(0),
            Loc {
                template: TemplateId(0),
                pc: 1,
            },
            3,
            true,
            false,
        );
        assert_eq!(o.threads_created, 1);
        assert_eq!(o.threads_finished, 1);
        assert_eq!(o.joins, 1);
        assert_eq!(o.acquires, 1);
        assert_eq!(o.releases, 1);
        assert_eq!(o.accesses, 1);
        assert_eq!(o.writes, 1);
    }
}
